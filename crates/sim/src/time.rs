//! Microsecond-resolution simulation clock.
//!
//! All timing in the platform — IO arrival, NAND program latency, PSU
//! discharge thresholds, journal-commit intervals — is expressed in
//! [`SimTime`] (an absolute instant) and [`SimDuration`] (a span). Both wrap
//! a `u64` count of microseconds, which covers ~584 000 years of simulated
//! time: overflow is unreachable in practice, but arithmetic still saturates
//! rather than wrapping so that a mis-configured experiment fails loudly in
//! assertions instead of silently travelling back in time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use pfault_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(40);
/// assert_eq!(t.as_micros(), 40_000);
/// assert!(t < t + SimDuration::from_micros(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use pfault_sim::SimDuration;
///
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(300);
/// assert_eq!(d.as_micros(), 1_300);
/// assert_eq!(d.as_millis_f64(), 1.3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// A sentinel far in the future, usable as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds (for reports).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration elapsed since `earlier`, or
    /// [`SimDuration::ZERO`] if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A sentinel "infinite" span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from a raw microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 || !ms.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns `true` for the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative factor, saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        let scaled = self.0 as f64 * factor.max(0.0);
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_round_trips() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(500);
        assert_eq!(t.as_micros(), 10_500);
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(25);
        assert_eq!(b - a, SimDuration::from_millis(15));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(25);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(15));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(4) * 3;
        assert_eq!(d, SimDuration::from_millis(12));
        assert_eq!(d / 4, SimDuration::from_millis(3));
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_millis_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(1.2345).as_micros(), 1_235);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10).mul_f64(1.5);
        assert_eq!(d, SimDuration::from_micros(15_000));
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn max_is_sentinel() {
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
        let t = SimTime::MAX + SimDuration::from_micros(1);
        assert_eq!(t, SimTime::MAX); // saturates
    }

    #[test]
    fn display_formats_as_millis() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_micros(40).to_string(), "0.040ms");
    }

    #[test]
    fn min_max_choose_correctly() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
