//! Deterministic time-ordered event queue.
//!
//! [`EventQueue`] is a min-heap keyed by [`SimTime`] with a monotonically
//! increasing sequence number as tie-breaker, so events scheduled for the
//! same instant pop in insertion order. Determinism of the whole platform
//! rests on this stable ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A single scheduled entry (internal).
#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, stable-ordered event queue.
///
/// # Example
///
/// ```
/// use pfault_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(10), 'b');
/// q.push(SimTime::from_micros(10), 'c'); // same time: FIFO
/// q.push(SimTime::from_micros(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Returns the time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event only if it is scheduled at or
    /// before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..50 {
            q.push(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(100), "later");
        q.push(SimTime::from_micros(10), "now");
        assert_eq!(
            q.pop_due(SimTime::from_micros(50)),
            Some((SimTime::from_micros(10), "now"))
        );
        assert_eq!(q.pop_due(SimTime::from_micros(50)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO + SimDuration::from_micros(1), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 'a');
        q.push(SimTime::from_micros(30), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_micros(20), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }
}
