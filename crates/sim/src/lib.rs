//! Deterministic discrete-event simulation kernel for the `pfault` platform.
//!
//! This crate is the substrate every other `pfault` crate builds on. It
//! provides:
//!
//! * [`time`] — a microsecond-resolution simulation clock ([`SimTime`],
//!   [`SimDuration`]) with saturating arithmetic;
//! * [`event`] — a deterministic, stable-ordered [`event::EventQueue`];
//! * [`rng`] — a seedable, forkable xoshiro256\*\* generator ([`rng::DetRng`])
//!   so that entire fault-injection campaigns replay bit-exactly from a
//!   single `u64` seed;
//! * [`checksum`] — the CRC-32 and FNV-1a checksums the platform uses for
//!   data-failure detection (the paper's detection mechanism, §III-B);
//! * [`stats`] — online statistics and histograms for experiment reports;
//! * [`storage`] — storage-domain base types ([`Lba`], sector sizing) shared
//!   by the workload generator, tracer, FTL and device model.
//!
//! # Example
//!
//! ```
//! use pfault_sim::{SimTime, SimDuration, event::EventQueue};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_millis(5), "flush");
//! queue.push(SimTime::ZERO + SimDuration::from_millis(1), "program");
//! let (t, what) = queue.pop().expect("queue is non-empty");
//! assert_eq!(what, "program");
//! assert_eq!(t.as_micros(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod event;
pub mod hash;
pub mod rng;
pub mod stats;
pub mod storage;
pub mod time;

pub use event::EventQueue;
pub use hash::{DetHashMap, DetHashSet};
pub use rng::DetRng;
pub use storage::{Lba, SectorCount, SECTOR_BYTES};
pub use time::{SimDuration, SimTime};
