//! Deterministic fast hashing for hot simulator maps.
//!
//! The standard library's `HashMap` defaults to SipHash with a
//! per-instance random seed. That is the wrong trade for the simulator
//! twice over: the random seed makes iteration order differ between
//! process runs (so nothing behavioral may ever depend on it), and
//! SipHash costs tens of nanoseconds per lookup on the 8-byte keys that
//! dominate the hot paths (LBAs, block ids, physical page addresses).
//! Campaign trials perform millions of such lookups — the mapping table
//! alone does two or three per programmed sector.
//!
//! [`DetHashMap`]/[`DetHashSet`] swap in a fixed-seed multiply-xor
//! hasher (splitmix64 finalization) that is an order of magnitude
//! cheaper on integer keys and — being seed-free — gives the *same*
//! iteration order for the same insertion history in every run. Code
//! must still not let iteration order leak into results (the collision
//! structure is arbitrary), but determinism bugs become reproducible
//! instead of run-dependent.
//!
//! These tables hold simulated device state and are never exposed to
//! untrusted keys, so HashDoS resistance is irrelevant here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// `HashMap` with the deterministic fast hasher.
pub type DetHashMap<K, V> = HashMap<K, V, DetHashState>;

/// `HashSet` with the deterministic fast hasher.
pub type DetHashSet<K> = HashSet<K, DetHashState>;

/// Fixed-seed `BuildHasher` for [`DetHasher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetHashState;

impl BuildHasher for DetHashState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher {
            h: 0x243F_6A88_85A3_08D3, // pi fraction, fixed for all runs
        }
    }
}

/// Multiply-xor hasher with splitmix64 finalization. Quality is ample
/// for hashbrown's 7-bit control tags plus bucket index; speed on
/// integer keys is what it is built for.
#[derive(Debug, Clone)]
pub struct DetHasher {
    h: u64,
}

impl DetHasher {
    #[inline]
    fn mix_in(&mut self, v: u64) {
        self.h = (self.h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: full avalanche so both the control tag
        // (top bits) and the bucket index (low bits) are well mixed.
        let mut z = self.h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix_in(u64::from_le_bytes(buf) ^ chunk.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix_in(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix_in(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix_in(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix_in(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_u64(v: u64) -> u64 {
        let mut h = DetHashState.build_hasher();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_u64(42), hash_u64(42));
        let mut a = DetHashState.build_hasher();
        a.write(b"same bytes");
        let mut b = DetHashState.build_hasher();
        b.write(b"same bytes");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential LBAs are the common key pattern; they must spread.
        let hashes: DetHashSet<u64> = (0..10_000u64).map(hash_u64).collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on sequential keys");
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: DetHashMap<u64, u64> = DetHashMap::default();
            for i in 0..1000 {
                m.insert(i * 7, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "same insertions, same order");
    }

    #[test]
    fn length_breaks_byte_extension_ambiguity() {
        let mut a = DetHashState.build_hasher();
        a.write(b"ab");
        let mut b = DetHashState.build_hasher();
        b.write(b"ab\0\0");
        assert_ne!(a.finish(), b.finish());
    }
}
