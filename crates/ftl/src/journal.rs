//! Mapping journal: volatile buffer, batches, and the durable log.
//!
//! Every mapping update enters the volatile [`JournalBuffer`]. Point
//! entries (and *closed* extents) are committable; the currently-growing
//! extent of a sequential run is **not** — it stays volatile until the run
//! breaks or hits the configured length cap. A commit drains committable
//! entries into a [`JournalBatch`], which the device writes to a flash
//! journal page; only then does the batch enter the [`DurableLog`] that
//! power-loss recovery replays.
//!
//! The set of LBAs covered by entries still in the buffer at the instant of
//! a power fault is exactly the set that reverts to stale mappings — the
//! "data loss after request completion" population of §IV-A.

use serde::{Deserialize, Serialize};

use pfault_flash::geometry::Ppa;
use pfault_sim::{checksum, Lba};

use crate::mapping::MappingTable;

/// One mapping-journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// A single-sector mapping.
    Point {
        /// Logical sector.
        lba: Lba,
        /// Its new physical page.
        ppa: Ppa,
    },
    /// A run of `len` consecutive sectors mapped to `len` consecutive
    /// pages starting at `ppa_start` (the §IV-D "first address only"
    /// compression).
    Extent {
        /// First logical sector of the run.
        lba_start: Lba,
        /// First physical page of the run.
        ppa_start: Ppa,
        /// Run length in sectors.
        len: u64,
    },
    /// A TRIM: the sector's mapping was discarded.
    Trim {
        /// Trimmed logical sector.
        lba: Lba,
    },
}

impl JournalEntry {
    /// Number of sectors this entry maps.
    pub fn coverage(&self) -> u64 {
        match self {
            JournalEntry::Point { .. } | JournalEntry::Trim { .. } => 1,
            JournalEntry::Extent { len, .. } => *len,
        }
    }

    /// Iterates the `(lba, ppa)` pairs this entry encodes. Extents follow
    /// physical allocation order, wrapping into the next block after
    /// `pages_per_block` pages (run-compressed mapping spans blocks that
    /// were allocated consecutively).
    pub fn pairs(&self, pages_per_block: u64) -> Vec<(Lba, Ppa)> {
        match *self {
            JournalEntry::Point { lba, ppa } => vec![(lba, ppa)],
            JournalEntry::Trim { .. } => Vec::new(),
            JournalEntry::Extent {
                lba_start,
                ppa_start,
                len,
            } => (0..len)
                .map(|i| {
                    let flat = ppa_start.block * pages_per_block + ppa_start.page + i;
                    (
                        Lba::new(lba_start.index() + i),
                        Ppa::new(flat / pages_per_block, flat % pages_per_block),
                    )
                })
                .collect(),
        }
    }

    /// Appends this entry's canonical byte encoding to `buf` (the input to
    /// the batch CRC). The encoding is versioned by discriminant byte and
    /// must stay stable: the stored CRC of every durable batch depends on
    /// it.
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match *self {
            JournalEntry::Point { lba, ppa } => {
                buf.push(0);
                buf.extend_from_slice(&lba.index().to_le_bytes());
                buf.extend_from_slice(&ppa.block.to_le_bytes());
                buf.extend_from_slice(&ppa.page.to_le_bytes());
            }
            JournalEntry::Extent {
                lba_start,
                ppa_start,
                len,
            } => {
                buf.push(1);
                buf.extend_from_slice(&lba_start.index().to_le_bytes());
                buf.extend_from_slice(&ppa_start.block.to_le_bytes());
                buf.extend_from_slice(&ppa_start.page.to_le_bytes());
                buf.extend_from_slice(&len.to_le_bytes());
            }
            JournalEntry::Trim { lba } => {
                buf.push(2);
                buf.extend_from_slice(&lba.index().to_le_bytes());
            }
        }
    }
}

/// A committed (or about-to-commit) group of journal entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalBatch {
    /// Monotonic batch identifier.
    pub id: u64,
    /// Entries in commit order.
    pub entries: Vec<JournalEntry>,
}

impl JournalBatch {
    /// Total sectors mapped by this batch.
    pub fn coverage(&self) -> u64 {
        self.entries.iter().map(JournalEntry::coverage).sum()
    }

    /// CRC-32 (IEEE) over the batch id and the canonical encoding of every
    /// entry. The device stores this checksum alongside the batch when the
    /// journal page program completes; a torn program persists the full
    /// batch's CRC over a *prefix* of the entries, so recovery detects the
    /// tear by recomputing the CRC over what actually survived.
    pub fn crc(&self) -> u32 {
        let mut buf = Vec::with_capacity(8 + self.entries.len() * 25);
        buf.extend_from_slice(&self.id.to_le_bytes());
        for e in &self.entries {
            e.encode_into(&mut buf);
        }
        checksum::crc32(&buf)
    }

    /// Applies every entry of this batch to `map` in commit order: `Trim`
    /// removes the mapping, `Point`/`Extent` install their `(lba, ppa)`
    /// pairs. This is the single replay primitive shared by FTL recovery
    /// and the sweep oracle's reference replay.
    pub fn apply_to(&self, map: &mut MappingTable, pages_per_block: u64) {
        for entry in &self.entries {
            if let JournalEntry::Trim { lba } = *entry {
                map.remove(lba);
            } else {
                for (lba, ppa) in entry.pairs(pages_per_block) {
                    map.update(lba, ppa);
                }
            }
        }
    }

    /// Returns the batch truncated to its first `sectors` sectors of
    /// coverage — what survives of a torn journal write. The boundary
    /// extent is split mid-run; a zero budget yields an empty batch.
    pub fn torn_prefix(&self, sectors: u64) -> JournalBatch {
        let mut budget = sectors;
        let mut entries = Vec::new();
        for e in &self.entries {
            if budget == 0 {
                break;
            }
            let cov = e.coverage();
            if cov <= budget {
                entries.push(*e);
                budget -= cov;
            } else {
                if let JournalEntry::Extent {
                    lba_start,
                    ppa_start,
                    ..
                } = *e
                {
                    entries.push(if budget == 1 {
                        JournalEntry::Point {
                            lba: lba_start,
                            ppa: ppa_start,
                        }
                    } else {
                        JournalEntry::Extent {
                            lba_start,
                            ppa_start,
                            len: budget,
                        }
                    });
                }
                break;
            }
        }
        JournalBatch {
            id: self.id,
            entries,
        }
    }
}

/// The volatile journal buffer inside controller RAM.
#[derive(Debug, Clone, Default)]
pub struct JournalBuffer {
    pending: Vec<JournalEntry>,
    open: Option<OpenExtent>,
}

#[derive(Debug, Clone, Copy)]
struct OpenExtent {
    lba_start: Lba,
    ppa_start: Ppa,
    len: u64,
}

impl OpenExtent {
    fn entry(self) -> JournalEntry {
        if self.len == 1 {
            JournalEntry::Point {
                lba: self.lba_start,
                ppa: self.ppa_start,
            }
        } else {
            JournalEntry::Extent {
                lba_start: self.lba_start,
                ppa_start: self.ppa_start,
                len: self.len,
            }
        }
    }

    fn extends(&self, lba: Lba, ppa: Ppa, pages_per_block: u64) -> bool {
        let next_flat = self.ppa_start.block * pages_per_block + self.ppa_start.page + self.len;
        lba.index() == self.lba_start.index() + self.len
            && ppa.block * pages_per_block + ppa.page == next_flat
    }
}

impl JournalBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        JournalBuffer::default()
    }

    /// Records a mapping update.
    ///
    /// With `extent_mapping`, consecutive updates merge into a growing open
    /// extent, force-closed at `max_extent_len`. Without it, every update
    /// is an immediately-committable point entry.
    pub fn record(
        &mut self,
        lba: Lba,
        ppa: Ppa,
        extent_mapping: bool,
        max_extent_len: u64,
        pages_per_block: u64,
    ) {
        if !extent_mapping {
            self.pending.push(JournalEntry::Point { lba, ppa });
            return;
        }
        match self.open {
            Some(ref mut open) if open.extends(lba, ppa, pages_per_block) => {
                open.len += 1;
                if open.len >= max_extent_len {
                    let closed = open.entry();
                    self.pending.push(closed);
                    self.open = None;
                }
            }
            Some(open) => {
                self.pending.push(open.entry());
                self.open = Some(OpenExtent {
                    lba_start: lba,
                    ppa_start: ppa,
                    len: 1,
                });
            }
            None => {
                self.open = Some(OpenExtent {
                    lba_start: lba,
                    ppa_start: ppa,
                    len: 1,
                });
            }
        }
    }

    /// Records a TRIM of `lba`: closes any open extent (the run is
    /// broken) and queues a committable trim entry.
    pub fn record_trim(&mut self, lba: Lba) {
        self.close_open();
        self.pending.push(JournalEntry::Trim { lba });
    }

    /// Number of committable (closed) entries.
    pub fn committable_len(&self) -> usize {
        self.pending.len()
    }

    /// Total sectors covered by *all* volatile state (closed + open) —
    /// the population lost to a power fault right now.
    pub fn volatile_coverage(&self) -> u64 {
        self.pending.iter().map(JournalEntry::coverage).sum::<u64>()
            + self.open.map_or(0, |o| o.len)
    }

    /// Sectors covered by the open (uncommittable) extent only.
    pub fn open_coverage(&self) -> u64 {
        self.open.map_or(0, |o| o.len)
    }

    /// Drains the committable entries (the open extent stays behind).
    pub fn drain_committable(&mut self) -> Vec<JournalEntry> {
        std::mem::take(&mut self.pending)
    }

    /// Force-closes the open extent, making it committable (used on clean
    /// flush / brownout race).
    pub fn close_open(&mut self) {
        if let Some(open) = self.open.take() {
            self.pending.push(open.entry());
        }
    }

    /// Discards everything (power loss).
    pub fn clear(&mut self) {
        self.pending.clear();
        self.open = None;
    }

    /// Whether there is nothing volatile at all.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty() && self.open.is_none()
    }
}

/// One record of the durable journal: the entries that made it to flash,
/// the page backing them, and the CRC the device wrote with them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableBatch {
    /// Flash journal page backing this batch.
    pub page: Ppa,
    /// The entries that actually persisted (a torn program persists only a
    /// prefix of the committed batch).
    pub batch: JournalBatch,
    /// The CRC stored in the journal page — always the CRC of the *full*
    /// committed batch, so it mismatches `batch.crc()` exactly when the
    /// program was torn.
    pub stored_crc: u32,
}

impl DurableBatch {
    /// Whether the stored CRC matches the entries that survived — false
    /// exactly for torn (partially-programmed) batches.
    pub fn crc_ok(&self) -> bool {
        self.batch.crc() == self.stored_crc
    }
}

/// The durable journal: batches whose journal page program completed.
///
/// This models the *contents* of the flash journal pages; durability of
/// each batch is decided by the device layer (the batch is appended only
/// after its journal page program completes). Each batch remembers which
/// flash page backs it, so recovery can verify the page is still readable,
/// and the CRC the device stored with it, so recovery can detect torn
/// (partially-programmed) batches.
#[derive(Debug, Clone, Default)]
pub struct DurableLog {
    batches: Vec<DurableBatch>,
}

impl DurableLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        DurableLog::default()
    }

    /// Appends a fully-programmed batch backed by journal page `page`. The
    /// stored CRC is the batch's own CRC: recovery will accept it.
    pub fn append(&mut self, page: Ppa, batch: JournalBatch) {
        let crc = batch.crc();
        self.append_with_crc(page, batch, crc);
    }

    /// Appends the torn prefix of `full`: only the first `kept_sectors`
    /// sectors of coverage persisted, but the page carries the *full*
    /// batch's CRC (the checksum field is written with the header, the
    /// entries stream in behind it). Recovery recomputes the CRC over the
    /// surviving entries and sees the mismatch.
    pub fn append_torn(&mut self, page: Ppa, full: &JournalBatch, kept_sectors: u64) {
        self.append_with_crc(page, full.torn_prefix(kept_sectors), full.crc());
    }

    fn append_with_crc(&mut self, page: Ppa, batch: JournalBatch, stored_crc: u32) {
        debug_assert!(
            self.batches.last().is_none_or(|d| d.batch.id < batch.id),
            "batch ids must be monotonic"
        );
        self.batches.push(DurableBatch {
            page,
            batch,
            stored_crc,
        });
    }

    /// Iterates batches in commit order with their backing pages.
    pub fn iter(&self) -> impl Iterator<Item = (Ppa, &JournalBatch)> + '_ {
        self.batches.iter().map(|d| (d.page, &d.batch))
    }

    /// Iterates the full durable records (page, batch, stored CRC) in
    /// commit order — what CRC-aware recovery and the sweep oracle read.
    pub fn iter_records(&self) -> impl Iterator<Item = &DurableBatch> + '_ {
        self.batches.iter()
    }

    /// Number of durable batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lba(i: u64) -> Lba {
        Lba::new(i)
    }

    #[test]
    fn point_mode_entries_commit_immediately() {
        let mut b = JournalBuffer::new();
        b.record(lba(1), Ppa::new(0, 0), false, 64, 256);
        b.record(lba(2), Ppa::new(0, 1), false, 64, 256);
        assert_eq!(b.committable_len(), 2);
        assert_eq!(b.open_coverage(), 0);
    }

    #[test]
    fn sequential_run_stays_open() {
        let mut b = JournalBuffer::new();
        for i in 0..10 {
            b.record(lba(100 + i), Ppa::new(3, i), true, 64, 256);
        }
        // Whole run is one open extent: nothing committable.
        assert_eq!(b.committable_len(), 0);
        assert_eq!(b.open_coverage(), 10);
        assert_eq!(b.volatile_coverage(), 10);
    }

    #[test]
    fn run_break_closes_extent() {
        let mut b = JournalBuffer::new();
        b.record(lba(1), Ppa::new(0, 0), true, 64, 256);
        b.record(lba(2), Ppa::new(0, 1), true, 64, 256);
        b.record(lba(50), Ppa::new(0, 2), true, 64, 256); // break
        assert_eq!(b.committable_len(), 1);
        let drained = b.drain_committable();
        assert_eq!(
            drained,
            vec![JournalEntry::Extent {
                lba_start: lba(1),
                ppa_start: Ppa::new(0, 0),
                len: 2
            }]
        );
        assert_eq!(b.open_coverage(), 1); // lba 50 still open
    }

    #[test]
    fn physical_discontinuity_breaks_run() {
        let mut b = JournalBuffer::new();
        b.record(lba(1), Ppa::new(0, 0), true, 64, 256);
        // Logically consecutive but physically in another block.
        b.record(lba(2), Ppa::new(1, 0), true, 64, 256);
        assert_eq!(b.committable_len(), 1);
    }

    #[test]
    fn max_extent_len_forces_close() {
        let mut b = JournalBuffer::new();
        for i in 0..8 {
            b.record(lba(i), Ppa::new(0, i), true, 4, 256);
        }
        // Two closed extents of 4, nothing open.
        assert_eq!(b.committable_len(), 2);
        assert_eq!(b.open_coverage(), 0);
    }

    #[test]
    fn single_update_closes_as_point() {
        let mut b = JournalBuffer::new();
        b.record(lba(9), Ppa::new(2, 5), true, 64, 256);
        b.close_open();
        assert_eq!(
            b.drain_committable(),
            vec![JournalEntry::Point {
                lba: lba(9),
                ppa: Ppa::new(2, 5)
            }]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn clear_models_power_loss() {
        let mut b = JournalBuffer::new();
        b.record(lba(1), Ppa::new(0, 0), true, 64, 256);
        b.record(lba(5), Ppa::new(0, 1), true, 64, 256);
        assert!(!b.is_empty());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.volatile_coverage(), 0);
    }

    #[test]
    fn entry_pairs_expand_extents() {
        let e = JournalEntry::Extent {
            lba_start: lba(10),
            ppa_start: Ppa::new(2, 4),
            len: 3,
        };
        assert_eq!(e.coverage(), 3);
        assert_eq!(
            e.pairs(256),
            vec![
                (lba(10), Ppa::new(2, 4)),
                (lba(11), Ppa::new(2, 5)),
                (lba(12), Ppa::new(2, 6)),
            ]
        );
    }

    #[test]
    fn durable_log_appends_in_order() {
        let mut log = DurableLog::new();
        log.append(
            Ppa::new(9, 0),
            JournalBatch {
                id: 1,
                entries: vec![],
            },
        );
        log.append(
            Ppa::new(9, 1),
            JournalBatch {
                id: 2,
                entries: vec![JournalEntry::Point {
                    lba: lba(1),
                    ppa: Ppa::new(0, 0),
                }],
            },
        );
        assert_eq!(log.len(), 2);
        let ids: Vec<u64> = log.iter().map(|(_, b)| b.id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(log.iter().nth(1).unwrap().1.coverage(), 1);
    }

    #[test]
    fn crc_is_stable_and_sensitive() {
        let batch = JournalBatch {
            id: 3,
            entries: vec![
                JournalEntry::Point {
                    lba: lba(1),
                    ppa: Ppa::new(0, 0),
                },
                JournalEntry::Trim { lba: lba(2) },
            ],
        };
        assert_eq!(batch.crc(), batch.clone().crc());
        let mut truncated = batch.clone();
        truncated.entries.pop();
        assert_ne!(
            batch.crc(),
            truncated.crc(),
            "dropping an entry must change the CRC"
        );
        let mut renumbered = batch.clone();
        renumbered.id = 4;
        assert_ne!(
            batch.crc(),
            renumbered.crc(),
            "the id is covered by the CRC"
        );
    }

    #[test]
    fn torn_append_stores_full_batch_crc() {
        let full = JournalBatch {
            id: 1,
            entries: vec![JournalEntry::Extent {
                lba_start: lba(10),
                ppa_start: Ppa::new(2, 0),
                len: 8,
            }],
        };
        let mut log = DurableLog::new();
        log.append_torn(Ppa::new(9, 0), &full, 3);
        let rec = log.iter_records().next().unwrap();
        assert_eq!(rec.batch.coverage(), 3);
        assert_eq!(rec.stored_crc, full.crc());
        assert!(!rec.crc_ok(), "a torn batch must fail its CRC check");

        // A tear that happens to keep every sector is indistinguishable
        // from a complete program — and passes.
        let mut log2 = DurableLog::new();
        log2.append_torn(Ppa::new(9, 1), &full, 8);
        assert!(log2.iter_records().next().unwrap().crc_ok());
    }

    #[test]
    fn intact_append_passes_crc() {
        let mut log = DurableLog::new();
        log.append(
            Ppa::new(9, 0),
            JournalBatch {
                id: 1,
                entries: vec![JournalEntry::Point {
                    lba: lba(4),
                    ppa: Ppa::new(1, 1),
                }],
            },
        );
        assert!(log.iter_records().all(DurableBatch::crc_ok));
    }

    #[test]
    fn apply_to_handles_all_entry_kinds() {
        let mut map = MappingTable::new();
        let batch = JournalBatch {
            id: 0,
            entries: vec![
                JournalEntry::Extent {
                    lba_start: lba(10),
                    ppa_start: Ppa::new(0, 254),
                    len: 4, // wraps into block 1
                },
                JournalEntry::Point {
                    lba: lba(10),
                    ppa: Ppa::new(5, 0),
                },
                JournalEntry::Trim { lba: lba(11) },
            ],
        };
        batch.apply_to(&mut map, 256);
        assert_eq!(
            map.lookup(lba(10)),
            Some(Ppa::new(5, 0)),
            "later entries win"
        );
        assert_eq!(map.lookup(lba(11)), None, "trim removes");
        assert_eq!(
            map.lookup(lba(12)),
            Some(Ppa::new(1, 0)),
            "extent wrapped blocks"
        );
        assert_eq!(map.lookup(lba(13)), Some(Ppa::new(1, 1)));
    }

    #[test]
    fn batch_coverage_sums_entries() {
        let batch = JournalBatch {
            id: 7,
            entries: vec![
                JournalEntry::Point {
                    lba: lba(1),
                    ppa: Ppa::new(0, 0),
                },
                JournalEntry::Extent {
                    lba_start: lba(10),
                    ppa_start: Ppa::new(1, 0),
                    len: 5,
                },
            ],
        };
        assert_eq!(batch.coverage(), 6);
    }
}
