//! Mapping journal: volatile buffer, batches, and the durable log.
//!
//! Every mapping update enters the volatile [`JournalBuffer`]. Point
//! entries (and *closed* extents) are committable; the currently-growing
//! extent of a sequential run is **not** — it stays volatile until the run
//! breaks or hits the configured length cap. A commit drains committable
//! entries into a [`JournalBatch`], which the device writes to a flash
//! journal page; only then does the batch enter the [`DurableLog`] that
//! power-loss recovery replays.
//!
//! The set of LBAs covered by entries still in the buffer at the instant of
//! a power fault is exactly the set that reverts to stale mappings — the
//! "data loss after request completion" population of §IV-A.

use serde::{Deserialize, Serialize};

use pfault_flash::geometry::Ppa;
use pfault_sim::Lba;

/// One mapping-journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// A single-sector mapping.
    Point {
        /// Logical sector.
        lba: Lba,
        /// Its new physical page.
        ppa: Ppa,
    },
    /// A run of `len` consecutive sectors mapped to `len` consecutive
    /// pages starting at `ppa_start` (the §IV-D "first address only"
    /// compression).
    Extent {
        /// First logical sector of the run.
        lba_start: Lba,
        /// First physical page of the run.
        ppa_start: Ppa,
        /// Run length in sectors.
        len: u64,
    },
    /// A TRIM: the sector's mapping was discarded.
    Trim {
        /// Trimmed logical sector.
        lba: Lba,
    },
}

impl JournalEntry {
    /// Number of sectors this entry maps.
    pub fn coverage(&self) -> u64 {
        match self {
            JournalEntry::Point { .. } | JournalEntry::Trim { .. } => 1,
            JournalEntry::Extent { len, .. } => *len,
        }
    }

    /// Iterates the `(lba, ppa)` pairs this entry encodes. Extents follow
    /// physical allocation order, wrapping into the next block after
    /// `pages_per_block` pages (run-compressed mapping spans blocks that
    /// were allocated consecutively).
    pub fn pairs(&self, pages_per_block: u64) -> Vec<(Lba, Ppa)> {
        match *self {
            JournalEntry::Point { lba, ppa } => vec![(lba, ppa)],
            JournalEntry::Trim { .. } => Vec::new(),
            JournalEntry::Extent {
                lba_start,
                ppa_start,
                len,
            } => (0..len)
                .map(|i| {
                    let flat = ppa_start.block * pages_per_block + ppa_start.page + i;
                    (
                        Lba::new(lba_start.index() + i),
                        Ppa::new(flat / pages_per_block, flat % pages_per_block),
                    )
                })
                .collect(),
        }
    }
}

/// A committed (or about-to-commit) group of journal entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalBatch {
    /// Monotonic batch identifier.
    pub id: u64,
    /// Entries in commit order.
    pub entries: Vec<JournalEntry>,
}

impl JournalBatch {
    /// Total sectors mapped by this batch.
    pub fn coverage(&self) -> u64 {
        self.entries.iter().map(JournalEntry::coverage).sum()
    }

    /// Returns the batch truncated to its first `sectors` sectors of
    /// coverage — what survives of a torn journal write. The boundary
    /// extent is split mid-run; a zero budget yields an empty batch.
    pub fn torn_prefix(&self, sectors: u64) -> JournalBatch {
        let mut budget = sectors;
        let mut entries = Vec::new();
        for e in &self.entries {
            if budget == 0 {
                break;
            }
            let cov = e.coverage();
            if cov <= budget {
                entries.push(*e);
                budget -= cov;
            } else {
                if let JournalEntry::Extent {
                    lba_start,
                    ppa_start,
                    ..
                } = *e
                {
                    entries.push(if budget == 1 {
                        JournalEntry::Point {
                            lba: lba_start,
                            ppa: ppa_start,
                        }
                    } else {
                        JournalEntry::Extent {
                            lba_start,
                            ppa_start,
                            len: budget,
                        }
                    });
                }
                break;
            }
        }
        JournalBatch {
            id: self.id,
            entries,
        }
    }
}

/// The volatile journal buffer inside controller RAM.
#[derive(Debug, Clone, Default)]
pub struct JournalBuffer {
    pending: Vec<JournalEntry>,
    open: Option<OpenExtent>,
}

#[derive(Debug, Clone, Copy)]
struct OpenExtent {
    lba_start: Lba,
    ppa_start: Ppa,
    len: u64,
}

impl OpenExtent {
    fn entry(self) -> JournalEntry {
        if self.len == 1 {
            JournalEntry::Point {
                lba: self.lba_start,
                ppa: self.ppa_start,
            }
        } else {
            JournalEntry::Extent {
                lba_start: self.lba_start,
                ppa_start: self.ppa_start,
                len: self.len,
            }
        }
    }

    fn extends(&self, lba: Lba, ppa: Ppa, pages_per_block: u64) -> bool {
        let next_flat = self.ppa_start.block * pages_per_block + self.ppa_start.page + self.len;
        lba.index() == self.lba_start.index() + self.len
            && ppa.block * pages_per_block + ppa.page == next_flat
    }
}

impl JournalBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        JournalBuffer::default()
    }

    /// Records a mapping update.
    ///
    /// With `extent_mapping`, consecutive updates merge into a growing open
    /// extent, force-closed at `max_extent_len`. Without it, every update
    /// is an immediately-committable point entry.
    pub fn record(
        &mut self,
        lba: Lba,
        ppa: Ppa,
        extent_mapping: bool,
        max_extent_len: u64,
        pages_per_block: u64,
    ) {
        if !extent_mapping {
            self.pending.push(JournalEntry::Point { lba, ppa });
            return;
        }
        match self.open {
            Some(ref mut open) if open.extends(lba, ppa, pages_per_block) => {
                open.len += 1;
                if open.len >= max_extent_len {
                    let closed = open.entry();
                    self.pending.push(closed);
                    self.open = None;
                }
            }
            Some(open) => {
                self.pending.push(open.entry());
                self.open = Some(OpenExtent {
                    lba_start: lba,
                    ppa_start: ppa,
                    len: 1,
                });
            }
            None => {
                self.open = Some(OpenExtent {
                    lba_start: lba,
                    ppa_start: ppa,
                    len: 1,
                });
            }
        }
    }

    /// Records a TRIM of `lba`: closes any open extent (the run is
    /// broken) and queues a committable trim entry.
    pub fn record_trim(&mut self, lba: Lba) {
        self.close_open();
        self.pending.push(JournalEntry::Trim { lba });
    }

    /// Number of committable (closed) entries.
    pub fn committable_len(&self) -> usize {
        self.pending.len()
    }

    /// Total sectors covered by *all* volatile state (closed + open) —
    /// the population lost to a power fault right now.
    pub fn volatile_coverage(&self) -> u64 {
        self.pending.iter().map(JournalEntry::coverage).sum::<u64>()
            + self.open.map_or(0, |o| o.len)
    }

    /// Sectors covered by the open (uncommittable) extent only.
    pub fn open_coverage(&self) -> u64 {
        self.open.map_or(0, |o| o.len)
    }

    /// Drains the committable entries (the open extent stays behind).
    pub fn drain_committable(&mut self) -> Vec<JournalEntry> {
        std::mem::take(&mut self.pending)
    }

    /// Force-closes the open extent, making it committable (used on clean
    /// flush / brownout race).
    pub fn close_open(&mut self) {
        if let Some(open) = self.open.take() {
            self.pending.push(open.entry());
        }
    }

    /// Discards everything (power loss).
    pub fn clear(&mut self) {
        self.pending.clear();
        self.open = None;
    }

    /// Whether there is nothing volatile at all.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty() && self.open.is_none()
    }
}

/// The durable journal: batches whose journal page program completed.
///
/// This models the *contents* of the flash journal pages; durability of
/// each batch is decided by the device layer (the batch is appended only
/// after its journal page program completes). Each batch remembers which
/// flash page backs it, so recovery can verify the page is still readable.
#[derive(Debug, Clone, Default)]
pub struct DurableLog {
    batches: Vec<(Ppa, JournalBatch)>,
}

impl DurableLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        DurableLog::default()
    }

    /// Appends a batch backed by journal page `page`.
    pub fn append(&mut self, page: Ppa, batch: JournalBatch) {
        debug_assert!(
            self.batches.last().is_none_or(|(_, b)| b.id < batch.id),
            "batch ids must be monotonic"
        );
        self.batches.push((page, batch));
    }

    /// Iterates batches in commit order with their backing pages.
    pub fn iter(&self) -> impl Iterator<Item = (Ppa, &JournalBatch)> + '_ {
        self.batches.iter().map(|(p, b)| (*p, b))
    }

    /// Number of durable batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lba(i: u64) -> Lba {
        Lba::new(i)
    }

    #[test]
    fn point_mode_entries_commit_immediately() {
        let mut b = JournalBuffer::new();
        b.record(lba(1), Ppa::new(0, 0), false, 64, 256);
        b.record(lba(2), Ppa::new(0, 1), false, 64, 256);
        assert_eq!(b.committable_len(), 2);
        assert_eq!(b.open_coverage(), 0);
    }

    #[test]
    fn sequential_run_stays_open() {
        let mut b = JournalBuffer::new();
        for i in 0..10 {
            b.record(lba(100 + i), Ppa::new(3, i), true, 64, 256);
        }
        // Whole run is one open extent: nothing committable.
        assert_eq!(b.committable_len(), 0);
        assert_eq!(b.open_coverage(), 10);
        assert_eq!(b.volatile_coverage(), 10);
    }

    #[test]
    fn run_break_closes_extent() {
        let mut b = JournalBuffer::new();
        b.record(lba(1), Ppa::new(0, 0), true, 64, 256);
        b.record(lba(2), Ppa::new(0, 1), true, 64, 256);
        b.record(lba(50), Ppa::new(0, 2), true, 64, 256); // break
        assert_eq!(b.committable_len(), 1);
        let drained = b.drain_committable();
        assert_eq!(
            drained,
            vec![JournalEntry::Extent {
                lba_start: lba(1),
                ppa_start: Ppa::new(0, 0),
                len: 2
            }]
        );
        assert_eq!(b.open_coverage(), 1); // lba 50 still open
    }

    #[test]
    fn physical_discontinuity_breaks_run() {
        let mut b = JournalBuffer::new();
        b.record(lba(1), Ppa::new(0, 0), true, 64, 256);
        // Logically consecutive but physically in another block.
        b.record(lba(2), Ppa::new(1, 0), true, 64, 256);
        assert_eq!(b.committable_len(), 1);
    }

    #[test]
    fn max_extent_len_forces_close() {
        let mut b = JournalBuffer::new();
        for i in 0..8 {
            b.record(lba(i), Ppa::new(0, i), true, 4, 256);
        }
        // Two closed extents of 4, nothing open.
        assert_eq!(b.committable_len(), 2);
        assert_eq!(b.open_coverage(), 0);
    }

    #[test]
    fn single_update_closes_as_point() {
        let mut b = JournalBuffer::new();
        b.record(lba(9), Ppa::new(2, 5), true, 64, 256);
        b.close_open();
        assert_eq!(
            b.drain_committable(),
            vec![JournalEntry::Point {
                lba: lba(9),
                ppa: Ppa::new(2, 5)
            }]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn clear_models_power_loss() {
        let mut b = JournalBuffer::new();
        b.record(lba(1), Ppa::new(0, 0), true, 64, 256);
        b.record(lba(5), Ppa::new(0, 1), true, 64, 256);
        assert!(!b.is_empty());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.volatile_coverage(), 0);
    }

    #[test]
    fn entry_pairs_expand_extents() {
        let e = JournalEntry::Extent {
            lba_start: lba(10),
            ppa_start: Ppa::new(2, 4),
            len: 3,
        };
        assert_eq!(e.coverage(), 3);
        assert_eq!(
            e.pairs(256),
            vec![
                (lba(10), Ppa::new(2, 4)),
                (lba(11), Ppa::new(2, 5)),
                (lba(12), Ppa::new(2, 6)),
            ]
        );
    }

    #[test]
    fn durable_log_appends_in_order() {
        let mut log = DurableLog::new();
        log.append(
            Ppa::new(9, 0),
            JournalBatch {
                id: 1,
                entries: vec![],
            },
        );
        log.append(
            Ppa::new(9, 1),
            JournalBatch {
                id: 2,
                entries: vec![JournalEntry::Point {
                    lba: lba(1),
                    ppa: Ppa::new(0, 0),
                }],
            },
        );
        assert_eq!(log.len(), 2);
        let ids: Vec<u64> = log.iter().map(|(_, b)| b.id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(log.iter().nth(1).unwrap().1.coverage(), 1);
    }

    #[test]
    fn batch_coverage_sums_entries() {
        let batch = JournalBatch {
            id: 7,
            entries: vec![
                JournalEntry::Point {
                    lba: lba(1),
                    ppa: Ppa::new(0, 0),
                },
                JournalEntry::Extent {
                    lba_start: lba(10),
                    ppa_start: Ppa::new(1, 0),
                    len: 5,
                },
            ],
        };
        assert_eq!(batch.coverage(), 6);
    }
}
