//! The volatile logical-to-physical mapping table.
//!
//! This is the RAM-resident structure the paper's §IV-D worries about: it
//! exists only while the controller has power. [`MappingTable`] also tracks
//! per-block valid-page counts so garbage collection can pick victims.

use pfault_flash::geometry::Ppa;
use pfault_sim::{DetHashMap, Lba};

/// Volatile L2P map plus per-block valid-page accounting.
///
/// # Example
///
/// ```
/// use pfault_ftl::mapping::MappingTable;
/// use pfault_flash::geometry::Ppa;
/// use pfault_sim::Lba;
///
/// let mut map = MappingTable::new();
/// map.update(Lba::new(1), Ppa::new(0, 0));
/// map.update(Lba::new(1), Ppa::new(0, 1)); // overwrite invalidates 0/0
/// assert_eq!(map.lookup(Lba::new(1)), Some(Ppa::new(0, 1)));
/// assert_eq!(map.valid_pages_in(0), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MappingTable {
    l2p: DetHashMap<Lba, Ppa>,
    valid_per_block: DetHashMap<u64, u64>,
}

impl MappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MappingTable::default()
    }

    /// Creates an empty table pre-sized for `sectors` mapped sectors.
    /// Bulk rebuilds (checkpoint restore, recovery) know their size up
    /// front; pre-sizing skips the incremental rehash ladder. Contents
    /// are what matter — no caller may depend on iteration order.
    pub fn with_capacity(sectors: usize) -> Self {
        MappingTable {
            l2p: DetHashMap::with_capacity_and_hasher(sectors, Default::default()),
            valid_per_block: DetHashMap::default(),
        }
    }

    /// Current physical location of `lba`, if mapped.
    pub fn lookup(&self, lba: Lba) -> Option<Ppa> {
        self.l2p.get(&lba).copied()
    }

    /// Installs `lba → ppa`, returning the previous location (now invalid)
    /// if there was one.
    pub fn update(&mut self, lba: Lba, ppa: Ppa) -> Option<Ppa> {
        let old = self.l2p.insert(lba, ppa);
        *self.valid_per_block.entry(ppa.block).or_insert(0) += 1;
        if let Some(old_ppa) = old {
            self.decrement(old_ppa.block);
        }
        old
    }

    fn decrement(&mut self, block: u64) {
        if let Some(count) = self.valid_per_block.get_mut(&block) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.valid_per_block.remove(&block);
            }
        }
    }

    /// Removes the mapping for `lba` (TRIM-like), if present.
    pub fn remove(&mut self, lba: Lba) -> Option<Ppa> {
        let old = self.l2p.remove(&lba);
        if let Some(ppa) = old {
            self.decrement(ppa.block);
        }
        old
    }

    /// Number of valid (currently mapped) pages residing in `block`.
    pub fn valid_pages_in(&self, block: u64) -> u64 {
        self.valid_per_block.get(&block).copied().unwrap_or(0)
    }

    /// Total mapped sectors.
    pub fn len(&self) -> usize {
        self.l2p.len()
    }

    /// Whether no sector is mapped.
    pub fn is_empty(&self) -> bool {
        self.l2p.is_empty()
    }

    /// Iterates `(lba, ppa)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Lba, Ppa)> + '_ {
        self.l2p.iter().map(|(&l, &p)| (l, p))
    }

    /// All LBAs currently mapped into `block` (GC relocation set).
    pub fn lbas_in_block(&self, block: u64) -> Vec<Lba> {
        let mut v: Vec<Lba> = self
            .l2p
            .iter()
            .filter(|(_, p)| p.block == block)
            .map(|(&l, _)| l)
            .collect();
        v.sort();
        v
    }

    /// Blocks that hold at least one valid page, with their counts.
    pub fn blocks_with_valid_pages(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.valid_per_block.iter().map(|(&b, &c)| (b, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_lookup() {
        let mut m = MappingTable::new();
        assert_eq!(m.lookup(Lba::new(1)), None);
        assert_eq!(m.update(Lba::new(1), Ppa::new(2, 3)), None);
        assert_eq!(m.lookup(Lba::new(1)), Some(Ppa::new(2, 3)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn overwrite_returns_and_invalidates_old() {
        let mut m = MappingTable::new();
        m.update(Lba::new(1), Ppa::new(0, 0));
        let old = m.update(Lba::new(1), Ppa::new(1, 0));
        assert_eq!(old, Some(Ppa::new(0, 0)));
        assert_eq!(m.valid_pages_in(0), 0);
        assert_eq!(m.valid_pages_in(1), 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_clears_accounting() {
        let mut m = MappingTable::new();
        m.update(Lba::new(9), Ppa::new(4, 0));
        assert_eq!(m.remove(Lba::new(9)), Some(Ppa::new(4, 0)));
        assert_eq!(m.valid_pages_in(4), 0);
        assert!(m.is_empty());
        assert_eq!(m.remove(Lba::new(9)), None);
    }

    #[test]
    fn lbas_in_block_is_sorted_and_filtered() {
        let mut m = MappingTable::new();
        m.update(Lba::new(5), Ppa::new(7, 0));
        m.update(Lba::new(2), Ppa::new(7, 1));
        m.update(Lba::new(3), Ppa::new(8, 0));
        assert_eq!(m.lbas_in_block(7), vec![Lba::new(2), Lba::new(5)]);
        assert_eq!(m.lbas_in_block(9), Vec::<Lba>::new());
    }

    #[test]
    fn valid_counts_track_multiple_blocks() {
        let mut m = MappingTable::new();
        for i in 0..10 {
            m.update(Lba::new(i), Ppa::new(i % 2, i));
        }
        assert_eq!(m.valid_pages_in(0), 5);
        assert_eq!(m.valid_pages_in(1), 5);
        let total: u64 = m.blocks_with_valid_pages().map(|(_, c)| c).sum();
        assert_eq!(total, 10);
    }
}
