//! Mapping-table checkpoints.
//!
//! Replaying the journal from device birth is unbounded; real FTLs
//! periodically persist a full snapshot of the mapping table and truncate
//! the journal to batches newer than the snapshot. A [`Checkpoint`] is the
//! logical content of such a snapshot; [`CheckpointStore`] models the
//! flash-resident checkpoint area (contents keyed by the page that backs
//! them, so recovery can verify readability exactly as it does for journal
//! pages).
//!
//! Checkpoints interact with power faults the same way journal batches do:
//! a checkpoint whose page program was interrupted never becomes the
//! recovery base, and recovery falls back to the previous one plus a
//! longer journal replay.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use pfault_flash::geometry::Ppa;
use pfault_sim::Lba;

use crate::mapping::MappingTable;

/// A full snapshot of the logical-to-physical map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Monotonic checkpoint identifier.
    pub id: u64,
    /// Identifier of the last journal batch folded into this snapshot.
    /// Recovery replays only batches with a larger id.
    pub last_batch: Option<u64>,
    /// The mapping entries, sorted by LBA for determinism.
    pub entries: Vec<(Lba, Ppa)>,
}

impl Checkpoint {
    /// Captures a snapshot of `map`.
    pub fn capture(id: u64, last_batch: Option<u64>, map: &MappingTable) -> Self {
        let mut entries: Vec<(Lba, Ppa)> = map.iter().collect();
        entries.sort_by_key(|(l, _)| *l);
        Checkpoint {
            id,
            last_batch,
            entries,
        }
    }

    /// Rebuilds a mapping table from this snapshot.
    pub fn restore(&self) -> MappingTable {
        let mut map = MappingTable::with_capacity(self.entries.len());
        for &(lba, ppa) in &self.entries {
            map.update(lba, ppa);
        }
        map
    }

    /// Number of mapped sectors in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot maps nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Flash-resident checkpoint area: snapshots keyed by their backing page.
///
/// Checkpoints are immutable once appended, so the store holds them
/// behind [`Arc`]s: cloning a store (every copy-on-write trial clone
/// carries one) shares the snapshot payloads instead of deep-copying
/// mapping-table-sized entry vectors.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    checkpoints: Vec<(Ppa, Arc<Checkpoint>)>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Appends a durable checkpoint backed by `page`.
    ///
    /// # Panics
    ///
    /// Panics if checkpoint ids are not monotonic.
    pub fn append(&mut self, page: Ppa, checkpoint: Checkpoint) {
        assert!(
            self.checkpoints
                .last()
                .is_none_or(|(_, c)| c.id < checkpoint.id),
            "checkpoint ids must be monotonic"
        );
        self.checkpoints.push((page, Arc::new(checkpoint)));
    }

    /// The newest checkpoint and its backing page, if any.
    pub fn latest(&self) -> Option<(Ppa, &Checkpoint)> {
        self.checkpoints.last().map(|(p, c)| (*p, c.as_ref()))
    }

    /// Iterates checkpoints newest-first (recovery tries them in this
    /// order, falling back when a backing page is unreadable).
    pub fn iter_newest_first(&self) -> impl Iterator<Item = (Ppa, &Checkpoint)> + '_ {
        self.checkpoints.iter().rev().map(|(p, c)| (*p, c.as_ref()))
    }

    /// Number of checkpoints retained.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether no checkpoint exists yet.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Drops all but the newest `keep` checkpoints (space reclamation).
    pub fn prune(&mut self, keep: usize) {
        if self.checkpoints.len() > keep {
            let drop = self.checkpoints.len() - keep;
            self.checkpoints.drain(..drop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(n: u64) -> MappingTable {
        let mut m = MappingTable::new();
        for i in 0..n {
            m.update(Lba::new(i * 7), Ppa::new(i / 4, i % 4));
        }
        m
    }

    #[test]
    fn capture_restore_round_trip() {
        let map = map_with(20);
        let cp = Checkpoint::capture(1, Some(5), &map);
        assert_eq!(cp.len(), 20);
        let restored = cp.restore();
        assert_eq!(restored.len(), map.len());
        for (lba, ppa) in map.iter() {
            assert_eq!(restored.lookup(lba), Some(ppa));
        }
    }

    #[test]
    fn capture_is_deterministic() {
        let map = map_with(50);
        let a = Checkpoint::capture(1, None, &map);
        let b = Checkpoint::capture(1, None, &map);
        assert_eq!(a, b, "entry order must not depend on hash iteration");
    }

    #[test]
    fn empty_checkpoint() {
        let cp = Checkpoint::capture(0, None, &MappingTable::new());
        assert!(cp.is_empty());
        assert!(cp.restore().is_empty());
    }

    #[test]
    fn store_orders_and_prunes() {
        let mut store = CheckpointStore::new();
        for id in 1..=5 {
            store.append(
                Ppa::new(100, id),
                Checkpoint::capture(id, Some(id * 10), &map_with(id)),
            );
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.latest().map(|(_, c)| c.id), Some(5));
        let ids: Vec<u64> = store.iter_newest_first().map(|(_, c)| c.id).collect();
        assert_eq!(ids, vec![5, 4, 3, 2, 1]);
        store.prune(2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.latest().map(|(_, c)| c.id), Some(5));
    }

    #[test]
    #[should_panic(expected = "checkpoint ids must be monotonic")]
    fn store_rejects_out_of_order_ids() {
        let mut store = CheckpointStore::new();
        store.append(
            Ppa::new(0, 0),
            Checkpoint::capture(2, None, &MappingTable::new()),
        );
        store.append(
            Ppa::new(0, 1),
            Checkpoint::capture(1, None, &MappingTable::new()),
        );
    }
}
