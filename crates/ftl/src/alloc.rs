//! Flash block allocation and wear leveling.
//!
//! Blocks are handed out lazily: fresh (never used) blocks in index order,
//! then recycled blocks returned by garbage collection, lowest erase count
//! first — a simple dynamic wear-leveling policy that keeps erase counts
//! within a tight band (verified by test).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pfault_flash::geometry::FlashGeometry;

use crate::error::FtlError;

/// Lazy block allocator with wear-aware recycling.
///
/// # Example
///
/// ```
/// use pfault_ftl::alloc::BlockAllocator;
/// use pfault_flash::geometry::FlashGeometry;
///
/// let mut alloc = BlockAllocator::new(FlashGeometry::new(4, 8));
/// let a = alloc.allocate()?;
/// let b = alloc.allocate()?;
/// assert_ne!(a, b);
/// alloc.recycle(a, 1); // erased once
/// # Ok::<(), pfault_ftl::FtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    geometry: FlashGeometry,
    next_fresh: u64,
    // Min-heap of (erase_count, block): recycled blocks, least-worn first.
    recycled: BinaryHeap<Reverse<(u32, u64)>>,
    allocated: u64,
}

impl BlockAllocator {
    /// Creates an allocator over `geometry`.
    pub fn new(geometry: FlashGeometry) -> Self {
        BlockAllocator {
            geometry,
            next_fresh: 0,
            recycled: BinaryHeap::new(),
            allocated: 0,
        }
    }

    /// Allocates a block: prefers the least-worn recycled block, otherwise
    /// takes the next fresh one.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::OutOfBlocks`] when neither source has a block.
    pub fn allocate(&mut self) -> Result<u64, FtlError> {
        if let Some(Reverse((_, block))) = self.recycled.pop() {
            self.allocated += 1;
            return Ok(block);
        }
        if self.next_fresh < self.geometry.blocks() {
            let block = self.next_fresh;
            self.next_fresh += 1;
            self.allocated += 1;
            return Ok(block);
        }
        Err(FtlError::OutOfBlocks)
    }

    /// Returns an erased block to the pool with its current erase count.
    pub fn recycle(&mut self, block: u64, erase_count: u32) {
        debug_assert!(block < self.geometry.blocks());
        self.allocated = self.allocated.saturating_sub(1);
        self.recycled.push(Reverse((erase_count, block)));
    }

    /// Blocks immediately available without GC (fresh + recycled).
    pub fn available(&self) -> u64 {
        (self.geometry.blocks() - self.next_fresh) + self.recycled.len() as u64
    }

    /// Blocks currently handed out.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_blocks_in_order_then_exhaustion() {
        let mut a = BlockAllocator::new(FlashGeometry::new(3, 4));
        assert_eq!(a.allocate().unwrap(), 0);
        assert_eq!(a.allocate().unwrap(), 1);
        assert_eq!(a.allocate().unwrap(), 2);
        assert_eq!(a.allocate().unwrap_err(), FtlError::OutOfBlocks);
    }

    #[test]
    fn recycled_blocks_reused_least_worn_first() {
        let mut a = BlockAllocator::new(FlashGeometry::new(2, 4));
        let b0 = a.allocate().unwrap();
        let b1 = a.allocate().unwrap();
        a.recycle(b0, 5);
        a.recycle(b1, 2);
        // b1 has fewer erases: handed out first.
        assert_eq!(a.allocate().unwrap(), b1);
        assert_eq!(a.allocate().unwrap(), b0);
    }

    #[test]
    fn available_counts_both_sources() {
        let mut a = BlockAllocator::new(FlashGeometry::new(4, 4));
        assert_eq!(a.available(), 4);
        let b = a.allocate().unwrap();
        assert_eq!(a.available(), 3);
        a.recycle(b, 1);
        assert_eq!(a.available(), 4);
        assert_eq!(a.allocated(), 0);
    }

    #[test]
    fn wear_stays_balanced_under_churn() {
        // With all blocks cycling through the pool, least-worn-first
        // allocation keeps erase counts within one of each other.
        let mut a = BlockAllocator::new(FlashGeometry::new(8, 4));
        let mut erase_counts = std::collections::HashMap::new();
        for _ in 0..8 {
            let b = a.allocate().unwrap();
            a.recycle(b, 0);
            erase_counts.insert(b, 0u32);
        }
        for _ in 0..200 {
            let block = a.allocate().unwrap();
            let count = erase_counts.get_mut(&block).unwrap();
            *count += 1;
            a.recycle(block, *count);
        }
        let max = erase_counts.values().max().unwrap();
        let min = erase_counts.values().min().unwrap();
        assert!(max - min <= 1, "wear spread too wide: {min}..{max}");
    }
}
