//! FTL errors.

use core::fmt;

use pfault_flash::FlashError;

/// Errors returned by FTL operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// No free flash block is available for allocation (GC cannot keep up
    /// or the device is genuinely full).
    OutOfBlocks,
    /// The logical address lies beyond the exported capacity.
    LbaOutOfRange {
        /// Offending sector index.
        lba: u64,
        /// Exported capacity in sectors.
        capacity: u64,
    },
    /// An underlying flash operation failed.
    Flash(FlashError),
    /// Post-fault recovery rebuilt a mapping that consumes every block in
    /// the array: no free block remains for new writes or journal
    /// commits, so the recovered device would be unusable. Deterministic —
    /// power-cycling and retrying cannot succeed.
    RecoveryExhausted {
        /// Total blocks in the array, all consumed by recovered state.
        blocks: u64,
    },
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::OutOfBlocks => write!(f, "no free flash blocks available"),
            FtlError::LbaOutOfRange { lba, capacity } => {
                write!(
                    f,
                    "lba {lba} beyond exported capacity of {capacity} sectors"
                )
            }
            FtlError::Flash(e) => write!(f, "flash operation failed: {e}"),
            FtlError::RecoveryExhausted { blocks } => {
                write!(
                    f,
                    "recovery left no usable free block (all {blocks} consumed)"
                )
            }
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = FtlError::Flash(FlashError::PoweredOff);
        assert!(e.to_string().contains("flash operation failed"));
        assert!(e.source().is_some());
        assert!(FtlError::OutOfBlocks.source().is_none());
    }

    #[test]
    fn from_flash_error() {
        let e: FtlError = FlashError::PoweredOff.into();
        assert_eq!(e, FtlError::Flash(FlashError::PoweredOff));
    }
}
