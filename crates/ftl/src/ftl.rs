//! The FTL orchestrator.
//!
//! [`Ftl`] owns the volatile structures (mapping table, journal buffer,
//! allocation cursors) and exposes a two-phase API to the device layer:
//! `begin_*` reserves physical resources, the device performs the timed
//! flash operation, and `finish_*` publishes the result. Power loss between
//! the two phases — or before a later journal commit — is precisely where
//! the paper's failures live.
//!
//! Timing is deliberately absent here: the device model (`pfault-ssd`)
//! schedules when programs, commits, and GC happen; the FTL provides the
//! state transitions.

use pfault_flash::array::FlashArray;
use pfault_flash::geometry::Ppa;
use pfault_sim::{DetHashSet, DetRng, Lba};
use serde::{Deserialize, Serialize};

use crate::alloc::BlockAllocator;
use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::journal::{DurableLog, JournalBatch, JournalBuffer};
use crate::mapping::MappingTable;

/// Counters describing what a mapping-table recovery actually did:
/// which base it started from, how much journal it replayed, what it
/// discarded, and how big the rebuilt map ended up. Filled by
/// [`Ftl::recover_with_stats`] and surfaced to the host through the
/// device layer's `RecoveryReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Whether a readable mapping checkpoint seeded the rebuild.
    pub checkpoint_restored: bool,
    /// Mapping entries restored from that checkpoint (0 when none).
    pub checkpoint_entries: u64,
    /// Checkpoint pages skipped because the fault destroyed them.
    pub checkpoints_unreadable: u64,
    /// Journal batches replayed cleanly.
    pub batches_replayed: u64,
    /// Mapping entries applied from replayed batches.
    pub entries_replayed: u64,
    /// Torn batches discarded whole by the CRC check.
    pub batches_discarded_torn: u64,
    /// Batches never reached because replay stopped early (at an
    /// unreadable journal page or after a discarded tear).
    pub batches_truncated: u64,
    /// Pages adopted by the [`RecoveryPolicy::FullScan`] OOB scan.
    pub scan_adoptions: u64,
    /// Final size of the rebuilt logical-to-physical map.
    pub map_entries: u64,
}

/// A reserved slot for a user-data page program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSlot {
    /// Logical sector being written.
    pub lba: Lba,
    /// Physical page reserved for it.
    pub ppa: Ppa,
    /// Global write sequence number.
    pub seq: u64,
}

/// A journal commit in flight: the drained batch and its reserved page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOp {
    /// The batch being persisted.
    pub batch: JournalBatch,
    /// Journal page reserved for it.
    pub page: Ppa,
    /// Global write sequence number of the journal program.
    pub seq: u64,
}

/// A checkpoint in flight: the captured snapshot and its reserved page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOp {
    /// The snapshot being persisted.
    pub checkpoint: Checkpoint,
    /// Flash page reserved for it.
    pub page: Ppa,
    /// Global write sequence number of the checkpoint program.
    pub seq: u64,
}

/// A garbage-collection plan for one victim block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcPlan {
    /// Block to reclaim.
    pub victim: u64,
    /// Live sectors that must move first, with their current pages.
    pub relocations: Vec<(Lba, Ppa)>,
}

/// The flash translation layer. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Ftl {
    config: FtlConfig,
    map: MappingTable,
    alloc: BlockAllocator,
    buffer: JournalBuffer,
    active_user: Option<ActiveBlock>,
    active_journal: Option<ActiveBlock>,
    full_blocks: DetHashSet<u64>,
    retired: DetHashSet<u64>,
    seq: u64,
    next_batch_id: u64,
    batches_since_checkpoint: u64,
    next_checkpoint_id: u64,
}

#[derive(Debug, Clone, Copy)]
struct ActiveBlock {
    block: u64,
    next_page: u64,
}

impl Ftl {
    /// Creates a fresh FTL over an erased array.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FtlConfig::validate`]).
    pub fn new(config: FtlConfig) -> Self {
        config.validate();
        Ftl {
            alloc: BlockAllocator::new(config.geometry),
            config,
            map: MappingTable::new(),
            buffer: JournalBuffer::new(),
            active_user: None,
            active_journal: None,
            full_blocks: DetHashSet::default(),
            retired: DetHashSet::default(),
            seq: 0,
            next_batch_id: 0,
            batches_since_checkpoint: 0,
            next_checkpoint_id: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Current location of `lba`, if mapped.
    pub fn lookup(&self, lba: Lba) -> Option<Ppa> {
        self.map.lookup(lba)
    }

    /// Number of mapped sectors.
    pub fn mapped_sectors(&self) -> usize {
        self.map.len()
    }

    /// Iterates all `(lba, ppa)` mappings (media-scrub support).
    pub fn iter_mapped(&self) -> impl Iterator<Item = (Lba, Ppa)> + '_ {
        self.map.iter()
    }

    /// Committable (closed) journal entries waiting for a commit.
    pub fn committable_entries(&self) -> usize {
        self.buffer.committable_len()
    }

    /// Sectors whose mapping would be lost to a power fault right now.
    pub fn volatile_mapped_sectors(&self) -> u64 {
        self.buffer.volatile_coverage()
    }

    /// Sectors covered by the open (uncommittable) extent.
    pub fn open_extent_sectors(&self) -> u64 {
        self.buffer.open_coverage()
    }

    /// Whether a commit should be issued because the committable backlog
    /// crossed the configured threshold. (Interval-based commits are the
    /// device's job.)
    pub fn commit_due_by_count(&self) -> bool {
        self.buffer.committable_len() >= self.config.commit_threshold
    }

    fn reserve_page(
        alloc: &mut BlockAllocator,
        full_blocks: &mut DetHashSet<u64>,
        active: &mut Option<ActiveBlock>,
        pages_per_block: u64,
    ) -> Result<Ppa, FtlError> {
        loop {
            match active {
                Some(a) if a.next_page < pages_per_block => {
                    let ppa = Ppa::new(a.block, a.next_page);
                    a.next_page += 1;
                    if a.next_page == pages_per_block {
                        full_blocks.insert(a.block);
                        *active = None;
                    }
                    return Ok(ppa);
                }
                _ => {
                    let block = alloc.allocate()?;
                    *active = Some(ActiveBlock {
                        block,
                        next_page: 0,
                    });
                }
            }
        }
    }

    /// Reserves a physical page for a user write of `lba`.
    ///
    /// The mapping is **not** updated until [`Ftl::finish_user_write`] —
    /// the device calls that only after the flash program completes.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::OutOfBlocks`] if allocation fails (run GC).
    pub fn begin_user_write(&mut self, lba: Lba) -> Result<WriteSlot, FtlError> {
        let ppa = Self::reserve_page(
            &mut self.alloc,
            &mut self.full_blocks,
            &mut self.active_user,
            self.config.geometry.pages_per_block(),
        )?;
        self.seq += 1;
        Ok(WriteSlot {
            lba,
            ppa,
            seq: self.seq,
        })
    }

    /// Publishes a completed user write: updates the RAM map and records
    /// the journal entry. Returns the previously mapped page, now invalid.
    pub fn finish_user_write(&mut self, slot: &WriteSlot) -> Option<Ppa> {
        let old = self.map.update(slot.lba, slot.ppa);
        self.buffer.record(
            slot.lba,
            slot.ppa,
            self.config.extent_mapping,
            self.config.max_extent_len,
            self.config.geometry.pages_per_block(),
        );
        old
    }

    /// Discards the mapping of `lba` (TRIM). Returns the page that held
    /// it, now invalid, if one existed. The removal is journaled like any
    /// other mapping change — an untrimmed ghost may reappear if power
    /// fails before the trim commits, exactly like a lost write.
    pub fn trim(&mut self, lba: Lba) -> Option<Ppa> {
        let old = self.map.remove(lba);
        if old.is_some() {
            self.buffer.record_trim(lba);
        }
        old
    }

    /// Drains committable journal entries into a batch and reserves a
    /// journal page for it. Returns `None` when nothing is committable.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::OutOfBlocks`] if no journal page can be
    /// reserved.
    pub fn begin_journal_commit(&mut self) -> Result<Option<CommitOp>, FtlError> {
        if self.buffer.committable_len() == 0 {
            return Ok(None);
        }
        let page = Self::reserve_page(
            &mut self.alloc,
            &mut self.full_blocks,
            &mut self.active_journal,
            self.config.geometry.pages_per_block(),
        )?;
        let entries = self.buffer.drain_committable();
        let batch = JournalBatch {
            id: self.next_batch_id,
            entries,
        };
        self.next_batch_id += 1;
        self.seq += 1;
        Ok(Some(CommitOp {
            batch,
            page,
            seq: self.seq,
        }))
    }

    /// Marks a commit durable after its journal page program completed.
    pub fn finish_journal_commit(&mut self, op: CommitOp, durable: &mut DurableLog) {
        durable.append(op.page, op.batch);
        self.batches_since_checkpoint += 1;
    }

    /// Whether enough journal batches accumulated since the last
    /// checkpoint to warrant a new snapshot.
    pub fn checkpoint_due(&self) -> bool {
        self.config.checkpoint_every_batches > 0
            && self.batches_since_checkpoint >= self.config.checkpoint_every_batches
    }

    /// Captures the RAM map into a checkpoint and reserves a flash page
    /// for it. The snapshot includes *volatile* mapping state too — a
    /// completed checkpoint makes it durable.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::OutOfBlocks`] if no page can be reserved.
    pub fn begin_checkpoint(&mut self) -> Result<CheckpointOp, FtlError> {
        let page = Self::reserve_page(
            &mut self.alloc,
            &mut self.full_blocks,
            &mut self.active_journal,
            self.config.geometry.pages_per_block(),
        )?;
        let last_batch = self.next_batch_id.checked_sub(1);
        let checkpoint = Checkpoint::capture(self.next_checkpoint_id, last_batch, &self.map);
        self.next_checkpoint_id += 1;
        self.seq += 1;
        Ok(CheckpointOp {
            checkpoint,
            page,
            seq: self.seq,
        })
    }

    /// Marks a checkpoint durable after its page program completed.
    pub fn finish_checkpoint(&mut self, op: CheckpointOp, store: &mut CheckpointStore) {
        store.append(op.page, op.checkpoint);
        self.batches_since_checkpoint = 0;
    }

    /// Force-closes the open extent so a subsequent commit covers it
    /// (used by the brownout race and clean shutdown).
    pub fn close_open_extent(&mut self) {
        self.buffer.close_open();
    }

    /// Whether free blocks dropped below the GC low-water mark.
    pub fn gc_needed(&self) -> bool {
        self.alloc.available() < self.config.gc_low_water_blocks
    }

    /// Picks the full block with the fewest valid pages and lists the live
    /// sectors that must be relocated. Returns `None` if no full block is
    /// reclaimable.
    pub fn gc_plan(&self) -> Option<GcPlan> {
        let victim = self
            .full_blocks
            .iter()
            .map(|&b| (self.map.valid_pages_in(b), b))
            .min()?
            .1;
        let relocations = self
            .map
            .lbas_in_block(victim)
            .into_iter()
            .map(|lba| {
                let ppa = self.map.lookup(lba).expect("lba listed in block is mapped");
                (lba, ppa)
            })
            .collect();
        Some(GcPlan {
            victim,
            relocations,
        })
    }

    /// Completes GC of `victim` after the device erased it: returns the
    /// block to the allocator with its new erase count.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the victim still holds valid pages.
    pub fn finish_gc(&mut self, victim: u64, erase_count: u32) {
        debug_assert_eq!(
            self.map.valid_pages_in(victim),
            0,
            "GC victim still has valid pages"
        );
        self.full_blocks.remove(&victim);
        if !self.retired.contains(&victim) {
            self.alloc.recycle(victim, erase_count);
        }
    }

    /// Free blocks currently available without GC.
    pub fn available_blocks(&self) -> u64 {
        self.alloc.available()
    }

    /// Rebuilds an FTL after power loss by replaying the durable journal.
    ///
    /// Each batch's backing journal page is read back first; an
    /// unreadable page truncates the log there (later batches depended on
    /// it for ordering). Everything that was still volatile at the fault —
    /// the RAM map deltas, the journal buffer, the open extent — is gone:
    /// affected LBAs revert to their last durable mapping.
    pub fn recover(
        config: FtlConfig,
        array: &mut FlashArray,
        durable: &DurableLog,
        rng: &mut DetRng,
    ) -> Ftl {
        Ftl::recover_with_checkpoints(config, array, durable, &CheckpointStore::new(), rng)
    }

    /// Fallible recovery: like [`Ftl::recover_with_checkpoints`], but
    /// returns [`FtlError::RecoveryExhausted`] when the rebuilt state
    /// consumes every block in the array — the recovered device would
    /// have no free block for new writes or journal commits. The
    /// condition is deterministic, so retrying the mount cannot help.
    pub fn try_recover_with_checkpoints(
        config: FtlConfig,
        array: &mut FlashArray,
        durable: &DurableLog,
        checkpoints: &CheckpointStore,
        rng: &mut DetRng,
    ) -> Result<Ftl, FtlError> {
        Ftl::try_recover_with_stats(config, array, durable, checkpoints, rng).map(|(ftl, _)| ftl)
    }

    /// Fallible recovery that also reports what the rebuild did: the
    /// [`RecoveryStats`] counterpart of [`Ftl::try_recover_with_checkpoints`].
    pub fn try_recover_with_stats(
        config: FtlConfig,
        array: &mut FlashArray,
        durable: &DurableLog,
        checkpoints: &CheckpointStore,
        rng: &mut DetRng,
    ) -> Result<(Ftl, RecoveryStats), FtlError> {
        let (ftl, stats) = Ftl::recover_with_stats(config, array, durable, checkpoints, rng);
        if ftl.available_blocks() == 0 {
            return Err(FtlError::RecoveryExhausted {
                blocks: config.geometry.blocks(),
            });
        }
        Ok((ftl, stats))
    }

    /// Full recovery: start from the newest *readable* checkpoint, then
    /// replay only the journal batches newer than it. Falls back to older
    /// checkpoints (and ultimately to a full replay) when checkpoint pages
    /// were destroyed by the fault. Under
    /// [`RecoveryPolicy::FullScan`], the rebuilt map is then
    /// reconciled against an OOB scan of the whole array: the newest
    /// readable version of each sector wins, recovering cleanly-programmed
    /// data whose mapping never committed.
    pub fn recover_with_checkpoints(
        config: FtlConfig,
        array: &mut FlashArray,
        durable: &DurableLog,
        checkpoints: &CheckpointStore,
        rng: &mut DetRng,
    ) -> Ftl {
        Ftl::recover_with_stats(config, array, durable, checkpoints, rng).0
    }

    /// Like [`Ftl::recover_with_checkpoints`], additionally returning
    /// [`RecoveryStats`] describing the rebuild.
    pub fn recover_with_stats(
        config: FtlConfig,
        array: &mut FlashArray,
        durable: &DurableLog,
        checkpoints: &CheckpointStore,
        rng: &mut DetRng,
    ) -> (Ftl, RecoveryStats) {
        config.validate();
        let scan = crate::recovery::journal_scan(&config, array, durable, checkpoints, rng);
        crate::recovery::mapping_rebuild(config, array, durable, checkpoints, &scan, rng)
    }

    /// Assembles a ready FTL around a freshly rebuilt mapping: the final
    /// step of [`crate::recovery::mapping_rebuild`]. Allocation restarts
    /// on fresh blocks beyond anything touched, so post-recovery writes
    /// never collide with surviving data.
    pub(crate) fn from_rebuilt_map(
        config: FtlConfig,
        map: MappingTable,
        durable_batches: u64,
        checkpoint_count: u64,
        array: &FlashArray,
    ) -> Ftl {
        let mut alloc = BlockAllocator::new(config.geometry);
        let high_water = map
            .blocks_with_valid_pages()
            .map(|(b, _)| b + 1)
            .max()
            .unwrap_or(0)
            .max(array.touched_blocks() as u64);
        for _ in 0..high_water {
            // Consume the low blocks; they may hold stale-but-referenced data.
            let _ = alloc.allocate();
        }
        Ftl {
            config,
            map,
            alloc,
            buffer: JournalBuffer::new(),
            active_user: None,
            active_journal: None,
            full_blocks: DetHashSet::default(),
            retired: DetHashSet::default(),
            seq: high_water * config.geometry.pages_per_block(),
            next_batch_id: durable_batches,
            batches_since_checkpoint: 0,
            next_checkpoint_id: checkpoint_count,
        }
    }

    /// Takes `block` permanently out of service: it is never offered as a
    /// GC victim again and [`Ftl::finish_gc`] will refuse to recycle it.
    /// Mapped sectors still pointing into the block keep their (now
    /// marginal) mapping — relocating what is readable first is the
    /// caller's job (the device's bad-block-retirement recovery stage).
    pub fn retire_block(&mut self, block: u64) {
        self.full_blocks.remove(&block);
        self.retired.insert(block);
    }

    /// Whether `block` has been retired.
    pub fn is_retired(&self, block: u64) -> bool {
        self.retired.contains(&block)
    }

    /// Number of blocks retired so far.
    pub fn retired_blocks(&self) -> u64 {
        self.retired.len() as u64
    }

    /// Order-independent digest of the FTL's state: the full
    /// logical-to-physical mapping, journal-buffer depth, allocator
    /// cursors, and the retired/full block sets. Combined with
    /// `FlashArray::state_digest` this pins a warm-snapshot's firmware
    /// state precisely enough that capture/restore mismatches surface as
    /// digest inequalities instead of silently divergent campaigns.
    pub fn state_digest(&self) -> u64 {
        use pfault_sim::checksum::mix64;
        let mut entries: Vec<(u64, u64, u64)> = self
            .iter_mapped()
            .map(|(lba, ppa)| (lba.index(), ppa.block, ppa.page))
            .collect();
        entries.sort_unstable();
        let mut h: u64 = 0xF71C_57A7_ED16_0E57;
        for (lba, block, page) in entries {
            h = mix64(h, lba);
            h = mix64(h, block);
            h = mix64(h, page);
        }
        let mut full: Vec<u64> = self.full_blocks.iter().copied().collect();
        full.sort_unstable();
        let mut retired: Vec<u64> = self.retired.iter().copied().collect();
        retired.sort_unstable();
        for b in full.into_iter().chain(retired) {
            h = mix64(h, b);
        }
        for active in [&self.active_user, &self.active_journal] {
            match active {
                Some(a) => {
                    h = mix64(h, a.block);
                    h = mix64(h, a.next_page);
                }
                None => h = mix64(h, u64::MAX),
            }
        }
        h = mix64(h, self.buffer.committable_len() as u64);
        h = mix64(h, self.seq);
        h = mix64(h, self.next_batch_id);
        h = mix64(h, self.batches_since_checkpoint);
        mix64(h, self.next_checkpoint_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecoveryPolicy;
    use pfault_flash::array::PageData;
    use pfault_flash::geometry::FlashGeometry;
    use pfault_flash::oob::Oob;
    use pfault_flash::CellKind;

    fn setup() -> (FlashArray, Ftl, DurableLog, DetRng) {
        let geom = FlashGeometry::new(64, 16);
        let array = FlashArray::new(geom, CellKind::Mlc);
        let ftl = Ftl::new(FtlConfig::for_geometry(geom));
        (array, ftl, DurableLog::new(), DetRng::new(42))
    }

    fn write_sector(array: &mut FlashArray, ftl: &mut Ftl, lba: Lba, tag: u64) -> WriteSlot {
        let slot = ftl.begin_user_write(lba).unwrap();
        array
            .program(slot.ppa, PageData::from_tag(tag), Oob::user(lba, slot.seq))
            .unwrap();
        ftl.finish_user_write(&slot);
        slot
    }

    fn commit(array: &mut FlashArray, ftl: &mut Ftl, durable: &mut DurableLog) {
        ftl.close_open_extent();
        if let Some(op) = ftl.begin_journal_commit().unwrap() {
            array
                .program(
                    op.page,
                    PageData::from_tag(op.batch.id),
                    Oob::journal(op.batch.id, op.seq),
                )
                .unwrap();
            ftl.finish_journal_commit(op, durable);
        }
    }

    #[test]
    fn write_then_lookup() {
        let (mut array, mut ftl, _d, _r) = setup();
        let slot = write_sector(&mut array, &mut ftl, Lba::new(5), 99);
        assert_eq!(ftl.lookup(Lba::new(5)), Some(slot.ppa));
        assert_eq!(ftl.mapped_sectors(), 1);
    }

    #[test]
    fn fallible_recovery_matches_infallible_on_healthy_device() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        let slot = write_sector(&mut array, &mut ftl, Lba::new(7), 3);
        commit(&mut array, &mut ftl, &mut durable);
        let recovered = Ftl::try_recover_with_checkpoints(
            ftl.config,
            &mut array,
            &durable,
            &CheckpointStore::new(),
            &mut rng,
        )
        .expect("healthy device recovers");
        assert_eq!(recovered.lookup(Lba::new(7)), Some(slot.ppa));
    }

    #[test]
    fn exhausted_array_fails_fallible_recovery() {
        let (mut array, mut ftl, durable, mut rng) = setup();
        // Touch every block so recovery's allocation high-water mark
        // consumes the whole array.
        let mut lba = 0u64;
        while let Ok(slot) = ftl.begin_user_write(Lba::new(lba)) {
            array
                .program(
                    slot.ppa,
                    PageData::from_tag(lba),
                    Oob::user(Lba::new(lba), slot.seq),
                )
                .unwrap();
            ftl.finish_user_write(&slot);
            lba += 1;
        }
        let err = Ftl::try_recover_with_checkpoints(
            ftl.config,
            &mut array,
            &durable,
            &CheckpointStore::new(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, FtlError::RecoveryExhausted { .. }));
    }

    #[test]
    fn overwrite_invalidates_old_page() {
        let (mut array, mut ftl, _d, _r) = setup();
        let s1 = write_sector(&mut array, &mut ftl, Lba::new(5), 1);
        let s2 = ftl.begin_user_write(Lba::new(5)).unwrap();
        array
            .program(
                s2.ppa,
                PageData::from_tag(2),
                Oob::user(Lba::new(5), s2.seq),
            )
            .unwrap();
        let old = ftl.finish_user_write(&s2);
        assert_eq!(old, Some(s1.ppa));
        assert_eq!(ftl.lookup(Lba::new(5)), Some(s2.ppa));
    }

    #[test]
    fn committed_mapping_survives_recovery() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        let slot = write_sector(&mut array, &mut ftl, Lba::new(7), 3);
        commit(&mut array, &mut ftl, &mut durable);
        // Power loss: drop the FTL, recover from flash + durable log.
        let recovered = Ftl::recover(*ftl.config(), &mut array, &durable, &mut rng);
        assert_eq!(recovered.lookup(Lba::new(7)), Some(slot.ppa));
    }

    #[test]
    fn uncommitted_mapping_lost_on_recovery() {
        let (mut array, mut ftl, durable, mut rng) = setup();
        write_sector(&mut array, &mut ftl, Lba::new(7), 3);
        // No commit. Power loss.
        let recovered = Ftl::recover(*ftl.config(), &mut array, &durable, &mut rng);
        assert_eq!(recovered.lookup(Lba::new(7)), None);
    }

    #[test]
    fn stale_mapping_revert_after_partial_commit() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        let s1 = write_sector(&mut array, &mut ftl, Lba::new(7), 1);
        commit(&mut array, &mut ftl, &mut durable);
        let s2 = write_sector(&mut array, &mut ftl, Lba::new(7), 2);
        assert_ne!(s1.ppa, s2.ppa);
        // Second write never committed: recovery reverts to the first.
        let recovered = Ftl::recover(*ftl.config(), &mut array, &durable, &mut rng);
        assert_eq!(recovered.lookup(Lba::new(7)), Some(s1.ppa));
    }

    #[test]
    fn open_extent_is_not_committable() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        // Sequential run: stays open, so a commit persists nothing.
        for i in 0..8 {
            write_sector(&mut array, &mut ftl, Lba::new(100 + i), i);
        }
        assert_eq!(ftl.open_extent_sectors(), 8);
        if let Some(op) = ftl.begin_journal_commit().unwrap() {
            panic!("nothing should be committable, got {op:?}");
        }
        // Without close_open_extent the whole run dies with the power.
        let recovered = Ftl::recover(*ftl.config(), &mut array, &durable, &mut rng);
        assert_eq!(recovered.mapped_sectors(), 0);
        // A proper flush-close commits everything.
        commit(&mut array, &mut ftl, &mut durable);
        let recovered = Ftl::recover(*ftl.config(), &mut array, &durable, &mut rng);
        assert_eq!(recovered.mapped_sectors(), 8);
    }

    #[test]
    fn destroyed_journal_page_truncates_replay() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        // Three commits: journal pages 0, 1, 2 in the journal block. Page 2
        // opens MLC wordline 1, so interrupting it cannot collaterally
        // damage pages 0/1 (they live on wordline 0).
        for (lba, tag) in [(1u64, 1u64), (2, 2), (3, 3)] {
            write_sector(&mut array, &mut ftl, Lba::new(lba), tag);
            commit(&mut array, &mut ftl, &mut durable);
        }
        let third_page = durable.iter().nth(2).unwrap().0;
        array.interrupt_program(third_page, 0.0, &mut rng);
        let recovered = Ftl::recover(*ftl.config(), &mut array, &durable, &mut rng);
        assert!(recovered.lookup(Lba::new(1)).is_some());
        assert!(recovered.lookup(Lba::new(2)).is_some());
        assert_eq!(recovered.lookup(Lba::new(3)), None);
    }

    #[test]
    fn commit_due_by_count_threshold() {
        let geom = FlashGeometry::new(64, 16);
        let mut config = FtlConfig::for_geometry(geom);
        config.commit_threshold = 3;
        config.extent_mapping = false;
        let mut array = FlashArray::new(geom, CellKind::Mlc);
        let mut ftl = Ftl::new(config);
        for i in 0..2 {
            write_sector(&mut array, &mut ftl, Lba::new(i * 10), i);
        }
        assert!(!ftl.commit_due_by_count());
        write_sector(&mut array, &mut ftl, Lba::new(30), 3);
        assert!(ftl.commit_due_by_count());
    }

    #[test]
    fn gc_reclaims_fullest_invalid_block() {
        let geom = FlashGeometry::new(8, 4);
        let mut config = FtlConfig::for_geometry(geom);
        config.gc_low_water_blocks = 7;
        config.extent_mapping = false;
        let mut array = FlashArray::new(geom, CellKind::Mlc);
        let mut ftl = Ftl::new(config);
        // Fill block 0 with 4 sectors, then overwrite all of them so block 0
        // is fully invalid.
        for i in 0..4 {
            write_sector(&mut array, &mut ftl, Lba::new(i), i);
        }
        for i in 0..4 {
            write_sector(&mut array, &mut ftl, Lba::new(i), 100 + i);
        }
        assert!(ftl.gc_needed());
        let plan = ftl.gc_plan().expect("a full block exists");
        assert_eq!(plan.victim, 0);
        assert!(plan.relocations.is_empty(), "block 0 has no live data");
        array.erase(plan.victim).unwrap();
        ftl.finish_gc(plan.victim, array.erase_count(plan.victim));
        assert!(ftl.available_blocks() > 0);
    }

    #[test]
    fn gc_plan_lists_live_sectors_for_relocation() {
        let geom = FlashGeometry::new(8, 4);
        let mut config = FtlConfig::for_geometry(geom);
        config.extent_mapping = false;
        let mut array = FlashArray::new(geom, CellKind::Mlc);
        let mut ftl = Ftl::new(config);
        for i in 0..4 {
            write_sector(&mut array, &mut ftl, Lba::new(i), i);
        }
        // Overwrite half: block 0 keeps 2 live sectors.
        write_sector(&mut array, &mut ftl, Lba::new(0), 50);
        write_sector(&mut array, &mut ftl, Lba::new(1), 51);
        let plan = ftl.gc_plan().unwrap();
        assert_eq!(plan.victim, 0);
        let lbas: Vec<u64> = plan.relocations.iter().map(|(l, _)| l.index()).collect();
        assert_eq!(lbas, vec![2, 3]);
    }

    #[test]
    fn out_of_blocks_surfaces() {
        let geom = FlashGeometry::new(1, 2);
        let mut config = FtlConfig::for_geometry(geom);
        config.gc_low_water_blocks = 0;
        let mut ftl = Ftl::new(config);
        ftl.begin_user_write(Lba::new(0)).unwrap();
        ftl.begin_user_write(Lba::new(1)).unwrap();
        assert_eq!(
            ftl.begin_user_write(Lba::new(2)).unwrap_err(),
            FtlError::OutOfBlocks
        );
    }

    fn checkpoint(array: &mut FlashArray, ftl: &mut Ftl, store: &mut CheckpointStore) {
        let op = ftl.begin_checkpoint().unwrap();
        array
            .program(
                op.page,
                PageData::from_tag(0xC4EC_0000 ^ op.checkpoint.id),
                Oob::checkpoint(op.checkpoint.id, op.seq),
            )
            .unwrap();
        ftl.finish_checkpoint(op, store);
    }

    #[test]
    fn checkpoint_bounds_replay_and_preserves_mappings() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        let s1 = write_sector(&mut array, &mut ftl, Lba::new(1), 1);
        commit(&mut array, &mut ftl, &mut durable);
        let mut store = CheckpointStore::new();
        checkpoint(&mut array, &mut ftl, &mut store);
        let s2 = write_sector(&mut array, &mut ftl, Lba::new(2), 2);
        commit(&mut array, &mut ftl, &mut durable);
        let recovered =
            Ftl::recover_with_checkpoints(*ftl.config(), &mut array, &durable, &store, &mut rng);
        assert_eq!(recovered.lookup(Lba::new(1)), Some(s1.ppa));
        assert_eq!(recovered.lookup(Lba::new(2)), Some(s2.ppa));
    }

    #[test]
    fn checkpoint_makes_volatile_mappings_durable() {
        let (mut array, mut ftl, durable, mut rng) = setup();
        let slot = write_sector(&mut array, &mut ftl, Lba::new(9), 9);
        // No journal commit — but a checkpoint snapshots the RAM map.
        let mut store = CheckpointStore::new();
        checkpoint(&mut array, &mut ftl, &mut store);
        let recovered =
            Ftl::recover_with_checkpoints(*ftl.config(), &mut array, &durable, &store, &mut rng);
        assert_eq!(recovered.lookup(Lba::new(9)), Some(slot.ppa));
    }

    #[test]
    fn destroyed_checkpoint_falls_back_to_journal_replay() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        // Two commits fill journal pages 0 and 1 (one MLC wordline), so
        // the checkpoint lands on page 2 — a fresh wordline whose
        // interruption cannot collaterally damage the journal pages.
        let s1 = write_sector(&mut array, &mut ftl, Lba::new(1), 1);
        commit(&mut array, &mut ftl, &mut durable);
        let s2 = write_sector(&mut array, &mut ftl, Lba::new(2), 2);
        commit(&mut array, &mut ftl, &mut durable);
        let mut store = CheckpointStore::new();
        checkpoint(&mut array, &mut ftl, &mut store);
        let cp_page = store.latest().unwrap().0;
        array.interrupt_program(cp_page, 0.0, &mut rng);
        let recovered =
            Ftl::recover_with_checkpoints(*ftl.config(), &mut array, &durable, &store, &mut rng);
        // Journal replay still covers the committed writes.
        assert_eq!(recovered.lookup(Lba::new(1)), Some(s1.ppa));
        assert_eq!(recovered.lookup(Lba::new(2)), Some(s2.ppa));
    }

    #[test]
    fn checkpoint_due_counts_batches() {
        let geom = FlashGeometry::new(64, 16);
        let mut config = FtlConfig::for_geometry(geom);
        config.checkpoint_every_batches = 2;
        config.extent_mapping = false;
        let mut array = FlashArray::new(geom, CellKind::Mlc);
        let mut ftl = Ftl::new(config);
        let mut durable = DurableLog::new();
        assert!(!ftl.checkpoint_due());
        write_sector(&mut array, &mut ftl, Lba::new(1), 1);
        commit(&mut array, &mut ftl, &mut durable);
        assert!(!ftl.checkpoint_due());
        write_sector(&mut array, &mut ftl, Lba::new(2), 2);
        commit(&mut array, &mut ftl, &mut durable);
        assert!(ftl.checkpoint_due());
        let mut store = CheckpointStore::new();
        checkpoint(&mut array, &mut ftl, &mut store);
        assert!(!ftl.checkpoint_due());
    }

    #[test]
    fn full_scan_recovers_uncommitted_but_programmed_data() {
        let (mut array, mut ftl, durable, mut rng) = setup();
        let slot = write_sector(&mut array, &mut ftl, Lba::new(7), 3);
        // No commit: journal replay would lose it…
        let mut config = *ftl.config();
        config.recovery_policy = RecoveryPolicy::JournalReplay;
        let journal_only = Ftl::recover_with_checkpoints(
            config,
            &mut array,
            &durable,
            &CheckpointStore::new(),
            &mut rng,
        );
        assert_eq!(journal_only.lookup(Lba::new(7)), None);
        // …but the OOB scan finds the cleanly-programmed page.
        config.recovery_policy = RecoveryPolicy::FullScan;
        let scanned = Ftl::recover_with_checkpoints(
            config,
            &mut array,
            &durable,
            &CheckpointStore::new(),
            &mut rng,
        );
        assert_eq!(scanned.lookup(Lba::new(7)), Some(slot.ppa));
    }

    #[test]
    fn full_scan_skips_interrupted_pages_and_keeps_newest() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        let s1 = write_sector(&mut array, &mut ftl, Lba::new(7), 1);
        commit(&mut array, &mut ftl, &mut durable);
        // A newer version whose program was interrupted: garbage on media.
        let s2 = ftl.begin_user_write(Lba::new(7)).unwrap();
        array.interrupt_program(s2.ppa, 0.0, &mut rng);
        let mut config = *ftl.config();
        config.recovery_policy = RecoveryPolicy::FullScan;
        let recovered = Ftl::recover_with_checkpoints(
            config,
            &mut array,
            &durable,
            &CheckpointStore::new(),
            &mut rng,
        );
        // The interrupted page is unreadable; the committed older version
        // must win.
        assert_eq!(recovered.lookup(Lba::new(7)), Some(s1.ppa));
    }

    #[test]
    fn torn_batch_is_discarded_whole_not_half_applied() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        // First commit is intact; the second lands torn: only 1 of its 2
        // point entries persisted, but the page itself reads back fine
        // (the tear hit the entry stream, not the whole page).
        let s1 = write_sector(&mut array, &mut ftl, Lba::new(1), 1);
        commit(&mut array, &mut ftl, &mut durable);
        write_sector(&mut array, &mut ftl, Lba::new(10), 2);
        write_sector(&mut array, &mut ftl, Lba::new(20), 3);
        ftl.close_open_extent();
        let op = ftl.begin_journal_commit().unwrap().expect("committable");
        assert_eq!(op.batch.coverage(), 2);
        array
            .program(
                op.page,
                PageData::from_tag(op.batch.id),
                Oob::journal(op.batch.id, op.seq),
            )
            .unwrap();
        durable.append_torn(op.page, &op.batch, 1);

        // Correct firmware verifies the stored CRC first and discards the
        // torn batch whole.
        let mut strict = *ftl.config();
        strict.verify_batch_crc = true;
        let recovered = Ftl::recover(strict, &mut array, &durable, &mut rng);
        assert_eq!(
            recovered.lookup(Lba::new(1)),
            Some(s1.ppa),
            "intact batch applies"
        );
        assert_eq!(
            recovered.lookup(Lba::new(10)),
            None,
            "torn batch must be discarded whole, not half-applied"
        );
        assert_eq!(recovered.lookup(Lba::new(20)), None);

        // The workspace default models the paper's drives: apply before
        // verify, so the surviving prefix is half-applied.
        assert!(!ftl.config().verify_batch_crc, "studied-drive default");
        let half = Ftl::recover(*ftl.config(), &mut array, &durable, &mut rng);
        assert!(half.lookup(Lba::new(10)).is_some(), "bug knob half-applies");
        assert_eq!(half.lookup(Lba::new(20)), None);
    }

    #[test]
    fn recovery_allocates_beyond_touched_blocks() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        let slot = write_sector(&mut array, &mut ftl, Lba::new(1), 1);
        commit(&mut array, &mut ftl, &mut durable);
        let mut recovered = Ftl::recover(*ftl.config(), &mut array, &durable, &mut rng);
        let new_slot = recovered.begin_user_write(Lba::new(2)).unwrap();
        assert!(new_slot.ppa.block > slot.ppa.block);
    }
}
