//! FTL configuration.

use serde::{Deserialize, Serialize};

use pfault_flash::geometry::FlashGeometry;
use pfault_sim::SimDuration;

/// How the firmware rebuilds the mapping table after power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Replay the durable checkpoint + journal only (fast boot; anything
    /// not committed reverts). This is what the consumer drives the paper
    /// studies appear to do.
    JournalReplay,
    /// Additionally scan every touched block's OOB metadata and adopt the
    /// newest readable version of each sector — slower to boot, but
    /// recovers cleanly-programmed data whose mapping never committed.
    FullScan,
}

/// Tunables of the translation layer.
///
/// The defaults are sized for the paper's consumer-class SATA drives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Array geometry the FTL manages.
    pub geometry: FlashGeometry,
    /// How often the volatile journal buffer is committed to a flash
    /// journal page, at the latest (the paper-visible "post-ACK
    /// vulnerability" is bounded by this plus the cache flush delay).
    pub commit_interval: SimDuration,
    /// Commit as soon as this many committable entries are pending, even
    /// before the interval elapses.
    pub commit_threshold: usize,
    /// Use extent-compressed mapping entries for logically+physically
    /// consecutive runs (§IV-D). When `false`, every sector is a point
    /// entry.
    pub extent_mapping: bool,
    /// Maximum pages a single extent may cover before it is force-closed
    /// and becomes committable.
    pub max_extent_len: u64,
    /// Start garbage collection when fewer fresh-or-recycled blocks than
    /// this remain available.
    pub gc_low_water_blocks: u64,
    /// Persist a full mapping-table checkpoint after this many durable
    /// journal batches (bounds recovery replay). `0` disables
    /// checkpointing.
    pub checkpoint_every_batches: u64,
    /// Post-outage mapping reconstruction strategy.
    pub recovery_policy: RecoveryPolicy,
    /// Verify each durable batch's CRC before applying it during replay; a
    /// mismatching (torn) batch is discarded whole and replay stops at the
    /// tear. With it **off** the firmware applies a batch *before*
    /// checking it — a torn commit page replays half a batch, which is
    /// where the paper's partially-applied requests (checksum-mismatch
    /// data failures) come from. The default is `false`: the consumer
    /// drives the paper studies evidently ship the apply-before-verify
    /// behaviour, and the reproduction's campaign statistics depend on
    /// it. Correct firmware — and the fault-space sweeper's baseline
    /// ([`crate::config`] consumers such as `SweepConfig::smoke`) — sets
    /// it to `true`.
    pub verify_batch_crc: bool,
    /// Retire blocks that show uncorrectable pages during the post-fault
    /// dirty-page-verify recovery stage: readable sectors are relocated
    /// and journaled, the block never serves again. Off by default — the
    /// consumer drives the paper studies show no evidence of it, and the
    /// fault-space sweeper's strict mapping oracle assumes recovery never
    /// rewrites data.
    pub retire_bad_blocks: bool,
    /// Blocks the firmware treats as a replacement pool for retirement.
    /// Once more than this many blocks have been retired the device
    /// degrades to read-only instead of bricking. Only meaningful with
    /// [`FtlConfig::retire_bad_blocks`].
    pub spare_blocks: u64,
}

impl FtlConfig {
    /// A sensible default configuration for `geometry`.
    pub fn for_geometry(geometry: FlashGeometry) -> Self {
        // commit_threshold = 1: the firmware commits closed entries as
        // soon as the control slot frees up, so the under-load mapping
        // window is just the journal-program backlog (~ms) and scales with
        // the write rate. commit_interval bounds the *idle* tail instead:
        // an open extent is only force-closed by the periodic interval
        // commit, which is where the paper's "failures up to ~700 ms after
        // completion" (§IV-A) come from.
        FtlConfig {
            geometry,
            commit_interval: SimDuration::from_millis(700),
            commit_threshold: 1,
            extent_mapping: true,
            max_extent_len: 320,
            gc_low_water_blocks: 4,
            checkpoint_every_batches: 512,
            recovery_policy: RecoveryPolicy::JournalReplay,
            verify_batch_crc: false,
            retire_bad_blocks: false,
            spare_blocks: 0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are degenerate (zero).
    pub fn validate(&self) {
        assert!(
            self.commit_threshold > 0,
            "commit threshold must be positive"
        );
        assert!(
            self.max_extent_len > 0,
            "max extent length must be positive"
        );
        assert!(
            self.gc_low_water_blocks < self.geometry.blocks(),
            "gc low-water mark exceeds geometry"
        );
        assert!(
            self.spare_blocks < self.geometry.blocks(),
            "spare pool exceeds geometry"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = FtlConfig::for_geometry(FlashGeometry::new(128, 64));
        c.validate();
        assert!(c.extent_mapping);
        assert_eq!(c.commit_interval, SimDuration::from_millis(700));
    }

    #[test]
    #[should_panic(expected = "commit threshold must be positive")]
    fn zero_threshold_rejected() {
        let mut c = FtlConfig::for_geometry(FlashGeometry::new(128, 64));
        c.commit_threshold = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "gc low-water mark exceeds geometry")]
    fn gc_watermark_bounded_by_geometry() {
        let mut c = FtlConfig::for_geometry(FlashGeometry::new(8, 64));
        c.gc_low_water_blocks = 8;
        c.validate();
    }
}
