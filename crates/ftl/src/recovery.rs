//! Staged mapping recovery.
//!
//! The monolithic `Ftl::recover_with_stats` is decomposed into two
//! explicit stages so the device layer can run them on simulated time and
//! survive a power cut *between* them:
//!
//! 1. [`journal_scan`] — find the newest readable mapping checkpoint and
//!    read back every durable journal page, deciding which batches are
//!    applicable (readable and, when `verify_batch_crc` is set,
//!    CRC-accepted). The result is a pure value: a device that holds on
//!    to a [`JournalScanOutcome`] across a power cut models firmware that
//!    checkpoints its recovery progress at a stage boundary.
//! 2. [`mapping_rebuild`] — apply the accepted batches over the
//!    checkpoint base, reconcile with the
//!    [`RecoveryPolicy::FullScan`] OOB sweep when configured, and
//!    rebuild the allocator high-water mark into a ready [`Ftl`].
//!
//! Running the two stages back to back performs exactly the same flash
//! reads, in exactly the same order, as the old monolith — same rebuilt
//! mapping, same RNG draw count. `Ftl::recover_with_stats` is now
//! implemented on top of these stages, so the equivalence is structural,
//! not merely tested.

use pfault_flash::array::{FlashArray, ReadOutcome};
use pfault_flash::geometry::Ppa;
use pfault_sim::{DetRng, Lba};

use crate::checkpoint::CheckpointStore;
use crate::config::{FtlConfig, RecoveryPolicy};
use crate::ftl::{Ftl, RecoveryStats};
use crate::journal::{DurableLog, JournalBatch};
use crate::mapping::MappingTable;

/// What the journal-scan stage decided: the checkpoint base to rebuild
/// over and the journal batches that survived readability + CRC triage.
///
/// This is the stage-boundary artifact the device persists (in modeled
/// firmware scratch space) so a second mount after a mid-recovery power
/// cut can *resume* at [`mapping_rebuild`] instead of re-scanning.
#[derive(Debug, Clone)]
pub struct JournalScanOutcome {
    /// Mapping restored from the newest readable checkpoint (empty when
    /// none was readable).
    pub map: MappingTable,
    /// Id of the last batch already folded into the checkpoint base.
    pub replay_after: Option<u64>,
    /// Batches to apply over the base, oldest first — already filtered
    /// to the readable, untorn prefix of the durable log.
    pub batches: Vec<JournalBatch>,
    /// Checkpoint/triage counters filled so far ([`mapping_rebuild`]
    /// completes the rest).
    pub stats: RecoveryStats,
}

/// Stage 1: checkpoint selection and journal triage.
///
/// Reads checkpoint pages newest-first until one decodes intact, then
/// reads every durable journal page in commit order. An unreadable page
/// truncates the log there; with `verify_batch_crc`, a CRC-mismatching
/// (torn) batch is discarded whole and also stops replay.
pub fn journal_scan(
    config: &FtlConfig,
    array: &mut FlashArray,
    durable: &DurableLog,
    checkpoints: &CheckpointStore,
    rng: &mut DetRng,
) -> JournalScanOutcome {
    let mut stats = RecoveryStats::default();
    let mut map = MappingTable::new();
    let mut replay_after: Option<u64> = None;
    for (page, checkpoint) in checkpoints.iter_newest_first() {
        let readable =
            matches!(array.read(page, rng), ReadOutcome::Ok { data, .. } if data.is_intact());
        if readable {
            map = checkpoint.restore();
            replay_after = checkpoint.last_batch;
            stats.checkpoint_restored = true;
            stats.checkpoint_entries = map.len() as u64;
            break;
        }
        stats.checkpoints_unreadable += 1;
    }
    let records: Vec<_> = durable.iter_records().collect();
    let mut batches = Vec::new();
    for (i, record) in records.iter().enumerate() {
        if replay_after.is_some_and(|last| record.batch.id <= last) {
            continue; // already folded into the checkpoint base
        }
        let readable = matches!(
            array.read(record.page, rng),
            ReadOutcome::Ok { data, .. } if data.is_intact()
        );
        if !readable {
            // Journal page destroyed by the fault: replay stops here.
            stats.batches_truncated += (records.len() - i) as u64;
            break;
        }
        if config.verify_batch_crc && !record.crc_ok() {
            // Torn batch: the stored CRC covers the full committed
            // batch, but only a prefix of its entries persisted.
            // Discard it whole — never half-apply — and stop replay:
            // every later batch was ordered after the tear.
            stats.batches_discarded_torn += 1;
            stats.batches_truncated += (records.len() - i - 1) as u64;
            break;
        }
        batches.push(record.batch.clone());
    }
    JournalScanOutcome {
        map,
        replay_after,
        batches,
        stats,
    }
}

/// Stage 2: apply the scan's accepted batches, reconcile via FullScan
/// when configured, and assemble a ready [`Ftl`].
///
/// Borrows the scan outcome: an interrupted rebuild retries against the
/// same checkpointed scan, so the caller keeps ownership and the rebuild
/// copies only the mapping base it mutates.
pub fn mapping_rebuild(
    config: FtlConfig,
    array: &mut FlashArray,
    durable: &DurableLog,
    checkpoints: &CheckpointStore,
    scan: &JournalScanOutcome,
    rng: &mut DetRng,
) -> (Ftl, RecoveryStats) {
    let mut map = scan.map.clone();
    let batches = &scan.batches;
    let mut stats = scan.stats;
    for batch in batches {
        batch.apply_to(&mut map, config.geometry.pages_per_block());
        stats.batches_replayed += 1;
        stats.entries_replayed += batch.entries.len() as u64;
    }
    if config.recovery_policy == RecoveryPolicy::FullScan {
        // OOB scan: adopt the newest readable user page per sector.
        // Pages must actually decode (the scan reads them back), so
        // interrupted programs and paired-corrupted pages stay out.
        let mut newest: pfault_sim::DetHashMap<Lba, (u64, Ppa)> =
            pfault_sim::DetHashMap::default();
        let candidates: Vec<(Ppa, u64, Lba)> = array
            .scan()
            .filter_map(|(ppa, data, oob, _)| {
                oob.lba()
                    .filter(|_| data.is_intact())
                    .map(|l| (ppa, oob.seq, l))
            })
            .collect();
        for (ppa, seq, lba) in candidates {
            let readable = matches!(
                array.read(ppa, rng),
                ReadOutcome::Ok { data, .. } if data.is_intact()
            );
            if !readable {
                continue;
            }
            let entry = newest.entry(lba).or_insert((seq, ppa));
            if seq > entry.0 {
                *entry = (seq, ppa);
            }
        }
        for (lba, (scan_seq, ppa)) in newest {
            // Adopt the scan winner only if it is at least as new as
            // whatever the journal base already maps (global seq
            // ordering; the journal page itself may be newer when the
            // scan's newest copy was destroyed).
            let base_seq = map
                .lookup(lba)
                .and_then(|base_ppa| match array.read(base_ppa, rng) {
                    ReadOutcome::Ok { oob, .. } => Some(oob.seq),
                    _ => None,
                });
            if base_seq.is_none_or(|b| scan_seq >= b) {
                map.update(lba, ppa);
                stats.scan_adoptions += 1;
            }
        }
    }
    stats.map_entries = map.len() as u64;
    let ftl = Ftl::from_rebuilt_map(config, map, durable.len() as u64, checkpoints.len() as u64, array);
    (ftl, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_flash::array::PageData;
    use pfault_flash::geometry::FlashGeometry;
    use pfault_flash::oob::Oob;
    use pfault_flash::CellKind;

    fn setup() -> (FlashArray, Ftl, DurableLog, DetRng) {
        let geom = FlashGeometry::new(64, 16);
        let array = FlashArray::new(geom, CellKind::Mlc);
        let ftl = Ftl::new(FtlConfig::for_geometry(geom));
        (array, ftl, DurableLog::new(), DetRng::new(42))
    }

    fn write_and_commit(
        array: &mut FlashArray,
        ftl: &mut Ftl,
        durable: &mut DurableLog,
        lba: u64,
        tag: u64,
    ) -> Ppa {
        let slot = ftl.begin_user_write(Lba::new(lba)).unwrap();
        array
            .program(
                slot.ppa,
                PageData::from_tag(tag),
                Oob::user(Lba::new(lba), slot.seq),
            )
            .unwrap();
        ftl.finish_user_write(&slot);
        ftl.close_open_extent();
        if let Some(op) = ftl.begin_journal_commit().unwrap() {
            array
                .program(
                    op.page,
                    PageData::from_tag(op.batch.id),
                    Oob::journal(op.batch.id, op.seq),
                )
                .unwrap();
            ftl.finish_journal_commit(op, durable);
        }
        slot.ppa
    }

    #[test]
    fn staged_recovery_equals_monolithic_recovery() {
        // Byte-for-byte: the two-stage pipeline must rebuild the same
        // mapping, report the same stats, and consume the same number of
        // RNG draws as `Ftl::recover_with_stats` (which now delegates to
        // it — this guards the delegation against drift).
        let (mut array, mut ftl, mut durable, _) = setup();
        for (lba, tag) in [(1u64, 1u64), (9, 2), (3, 3)] {
            write_and_commit(&mut array, &mut ftl, &mut durable, lba, tag);
        }
        let store = CheckpointStore::new();
        let config = *ftl.config();

        let mut array_a = array.clone();
        let mut rng_a = DetRng::new(77);
        let (mono, mono_stats) =
            Ftl::recover_with_stats(config, &mut array_a, &durable, &store, &mut rng_a);

        let mut array_b = array.clone();
        let mut rng_b = DetRng::new(77);
        let scan = journal_scan(&config, &mut array_b, &durable, &store, &mut rng_b);
        let (staged, staged_stats) =
            mapping_rebuild(config, &mut array_b, &durable, &store, &scan, &mut rng_b);

        assert_eq!(mono_stats, staged_stats);
        let a: Vec<_> = {
            let mut v: Vec<_> = mono.iter_mapped().collect();
            v.sort();
            v
        };
        let b: Vec<_> = {
            let mut v: Vec<_> = staged.iter_mapped().collect();
            v.sort();
            v
        };
        assert_eq!(a, b);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "same RNG draw count");
        assert_eq!(array_a.stats(), array_b.stats(), "same flash reads");
    }

    #[test]
    fn scan_outcome_survives_a_simulated_cut_between_stages() {
        // Model a power cut after stage 1: clone the outcome ("firmware
        // scratch checkpoint"), rebuild later from the clone, and get the
        // same mapping a straight-through recovery produces.
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        let p1 = write_and_commit(&mut array, &mut ftl, &mut durable, 5, 1);
        let config = *ftl.config();
        let store = CheckpointStore::new();
        let scan = journal_scan(&config, &mut array, &durable, &store, &mut rng);
        let persisted = scan.clone();
        drop(scan); // the cut: in-flight stage state is gone
        let (rebuilt, stats) =
            mapping_rebuild(config, &mut array, &durable, &store, &persisted, &mut rng);
        assert_eq!(rebuilt.lookup(Lba::new(5)), Some(p1));
        assert_eq!(stats.batches_replayed, 1);
    }

    #[test]
    fn scan_triage_filters_unreadable_tail() {
        let (mut array, mut ftl, mut durable, mut rng) = setup();
        for (lba, tag) in [(1u64, 1u64), (2, 2), (3, 3)] {
            write_and_commit(&mut array, &mut ftl, &mut durable, lba, tag);
        }
        let third_page = durable.iter().nth(2).unwrap().0;
        array.interrupt_program(third_page, 0.0, &mut rng);
        let config = *ftl.config();
        let scan = journal_scan(
            &config,
            &mut array,
            &durable,
            &CheckpointStore::new(),
            &mut rng,
        );
        assert_eq!(scan.batches.len(), 2, "unreadable third batch dropped");
        assert_eq!(scan.stats.batches_truncated, 1);
    }
}
