//! Flash Translation Layer (FTL).
//!
//! The FTL implements the three responsibilities the paper lists (§I):
//! address mapping, garbage collection, and wear leveling — plus the piece
//! that matters most for power-fault behaviour: **mapping-table
//! persistence**.
//!
//! The logical-to-physical map lives in volatile controller RAM
//! ([`mapping::MappingTable`]). Updates accumulate in a volatile journal
//! buffer ([`journal::JournalBuffer`]) and become durable only when a
//! journal batch is written to a flash journal page. Anything still
//! volatile at power loss is gone: after recovery, affected LBAs revert to
//! their last durably-mapped (stale) pages. This is the mechanism behind
//! data loss *after* a request has been acknowledged (paper §IV-A) — and,
//! because sequential runs are compressed into **extent** entries that stay
//! open (uncommittable) while the run keeps growing (§IV-D: "FTL only keeps
//! the first address"), sequential workloads expose a larger window of
//! already-acknowledged mappings than random workloads do.
//!
//! # Example
//!
//! ```
//! use pfault_flash::{array::FlashArray, geometry::FlashGeometry, CellKind};
//! use pfault_ftl::{Ftl, FtlConfig};
//! use pfault_sim::Lba;
//!
//! # fn main() -> Result<(), pfault_ftl::FtlError> {
//! let geom = FlashGeometry::new(64, 32);
//! let mut array = FlashArray::new(geom, CellKind::Mlc);
//! let mut ftl = Ftl::new(FtlConfig::for_geometry(geom));
//!
//! // Place a write, program the flash, then publish the mapping.
//! let slot = ftl.begin_user_write(Lba::new(10))?;
//! array.program(slot.ppa, pfault_flash::array::PageData::from_tag(1),
//!               pfault_flash::oob::Oob::user(Lba::new(10), slot.seq))?;
//! ftl.finish_user_write(&slot);
//! assert_eq!(ftl.lookup(Lba::new(10)), Some(slot.ppa));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod ftl;
pub mod journal;
pub mod mapping;
pub mod recovery;

pub use checkpoint::{Checkpoint, CheckpointStore};
pub use config::{FtlConfig, RecoveryPolicy};
pub use error::FtlError;
pub use ftl::{CheckpointOp, CommitOp, Ftl, GcPlan, RecoveryStats, WriteSlot};
pub use journal::{DurableBatch, DurableLog, JournalBatch, JournalEntry};
pub use recovery::{journal_scan, mapping_rebuild, JournalScanOutcome};
