//! Workload generation for the power-fault platform.
//!
//! The paper's IO Generator produces "data packets" — requests whose
//! header carries size, destination address, issue/queue time, and three
//! checksums (Fig 2) — under workload knobs that §IV sweeps one at a time:
//!
//! * working-set size (WSS), 1–90 GB (§IV-C / Fig 6);
//! * request size, 4 KiB–1 MiB, random or fixed (§IV-E / Fig 7);
//! * request type mix, 0–100 % write (§IV-B / Fig 5);
//! * access pattern, uniform random vs sequential (§IV-D);
//! * access sequences RAR / RAW / WAR / WAW (§IV-G / Fig 9);
//! * requested IOPS (§IV-F / Fig 8).
//!
//! [`spec::WorkloadSpec`] captures those knobs (builder-style), and
//! [`generator::WorkloadGenerator`] turns a spec plus a seed into a
//! deterministic stream of [`packet::DataPacket`]s.
//!
//! # Example
//!
//! ```
//! use pfault_workload::spec::{AccessPattern, WorkloadSpec};
//! use pfault_workload::generator::WorkloadGenerator;
//! use pfault_sim::{storage::GIB, DetRng};
//!
//! let spec = WorkloadSpec::builder()
//!     .wss_bytes(4 * GIB)
//!     .write_fraction(1.0)
//!     .pattern(AccessPattern::UniformRandom)
//!     .build();
//! let mut generator = WorkloadGenerator::new(spec, DetRng::new(7));
//! let packet = generator.next_packet();
//! assert!(packet.is_write);
//! assert!(packet.sectors.bytes() >= 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod packet;
pub mod replay;
pub mod spec;

pub use generator::WorkloadGenerator;
pub use packet::DataPacket;
pub use replay::{parse_trace, ReplayGenerator, TraceOp};
pub use spec::{AccessPattern, ArrivalModel, SequenceMode, SizeSpec, WorkloadSpec};
