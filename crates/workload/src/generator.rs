//! The workload generator.
//!
//! Turns a [`WorkloadSpec`] plus a seed into a deterministic stream of
//! [`DataPacket`]s. Arrival times are produced for open-loop specs
//! (requested-IOPS pacing, §IV-F); closed-loop specs leave pacing to the
//! platform, which submits on completions.

use pfault_sim::storage::SECTOR_BYTES;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration, SimTime};

use crate::packet::DataPacket;
use crate::spec::{AccessPattern, ArrivalModel, SizeSpec, WorkloadSpec};

/// Number of Zipf buckets the working set is quantised into: the bucket
/// is drawn Zipf-distributed, the address uniformly within the bucket.
const ZIPF_BUCKETS: usize = 1024;

/// Deterministic request stream.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    rng: DetRng,
    next_id: u64,
    clock: SimTime,
    sequential_cursor: u64,
    /// Cumulative Zipf bucket weights (lazily built on first use).
    zipf_cdf: Option<Vec<f64>>,
    /// For sequence modes: address and pending second-half of the pair.
    pending_second: Option<(Lba, SectorCount, bool)>,
    last_address: Option<(Lba, SectorCount)>,
}

impl WorkloadGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn new(spec: WorkloadSpec, rng: DetRng) -> Self {
        spec.validate();
        WorkloadGenerator {
            spec,
            rng,
            next_id: 0,
            clock: SimTime::ZERO,
            sequential_cursor: 0,
            zipf_cdf: None,
            pending_second: None,
            last_address: None,
        }
    }

    /// The spec this generator follows.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn draw_sectors(&mut self) -> SectorCount {
        match self.spec.size {
            SizeSpec::FixedBytes(bytes) => SectorCount::from_bytes(bytes),
            SizeSpec::UniformBytes {
                min_bytes,
                max_bytes,
            } => {
                let min_s = min_bytes.div_ceil(SECTOR_BYTES).max(1);
                let max_s = max_bytes / SECTOR_BYTES;
                SectorCount::new(self.rng.between(min_s, max_s.max(min_s)))
            }
        }
    }

    fn zipf_bucket(&mut self, theta: f64) -> usize {
        let cdf = self.zipf_cdf.get_or_insert_with(|| {
            // Harmonic weights w_i = 1/(i+1)^theta over the buckets,
            // accumulated into a CDF.
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(ZIPF_BUCKETS);
            for i in 0..ZIPF_BUCKETS {
                acc += 1.0 / ((i + 1) as f64).powf(theta);
                cdf.push(acc);
            }
            let total = acc;
            for w in &mut cdf {
                *w /= total;
            }
            cdf
        });
        let u = self.rng.unit_f64();
        cdf.partition_point(|&c| c < u).min(ZIPF_BUCKETS - 1)
    }

    fn draw_address(&mut self, sectors: SectorCount) -> Lba {
        let wss = self.spec.wss_sectors();
        let span = wss - sectors.get();
        match self.spec.pattern {
            AccessPattern::UniformRandom => Lba::new(self.rng.below(span + 1)),
            AccessPattern::Sequential => {
                if self.sequential_cursor + sectors.get() > wss {
                    self.sequential_cursor = 0;
                }
                let lba = Lba::new(self.sequential_cursor);
                self.sequential_cursor += sectors.get();
                lba
            }
            AccessPattern::Zipf { theta } => {
                // Draw a bucket Zipf-distributed, then a uniform address
                // inside it (clamped so the request fits the working set).
                let bucket = self.zipf_bucket(theta) as u64;
                let bucket_span = (span + 1).div_ceil(ZIPF_BUCKETS as u64).max(1);
                let base = (bucket * bucket_span).min(span);
                let hi = (base + bucket_span - 1).min(span);
                Lba::new(self.rng.between(base, hi))
            }
        }
    }

    fn advance_clock(&mut self) -> SimTime {
        match self.spec.arrival {
            ArrivalModel::ClosedLoop { .. } => self.clock, // platform-paced
            ArrivalModel::OpenLoop { iops } => {
                let t = self.clock;
                let interval = SimDuration::from_micros((1_000_000.0 / iops).round() as u64);
                self.clock += interval;
                t
            }
            ArrivalModel::OpenLoopPoisson { iops } => {
                let t = self.clock;
                // Exponential inter-arrival via inverse transform.
                let u = self.rng.unit_f64().max(1e-12);
                let gap_us = -(u.ln()) * 1_000_000.0 / iops;
                self.clock += SimDuration::from_micros(gap_us.round().max(1.0) as u64);
                t
            }
        }
    }

    /// Produces the next request.
    pub fn next_packet(&mut self) -> DataPacket {
        let id = self.next_id;
        self.next_id += 1;
        let payload_tag = self.rng.next_u64();

        let (lba, sectors, is_write) = if let Some(mode) = self.spec.sequence {
            if let Some((lba, sectors, second_is_write)) = self.pending_second.take() {
                (lba, sectors, second_is_write)
            } else {
                let (first, second) = mode.pair();
                // "each request is submitted on the address of the
                // previously completed request": the pair's address is
                // where the previous pair landed; the very first pair draws
                // a fresh address.
                let (lba, sectors) = match self.last_address {
                    Some(addr) => addr,
                    None => {
                        let s = self.draw_sectors();
                        (self.draw_address(s), s)
                    }
                };
                self.last_address = {
                    let s = self.draw_sectors();
                    Some((self.draw_address(s), s))
                };
                self.pending_second = Some((lba, sectors, second));
                (lba, sectors, first)
            }
        } else {
            let sectors = self.draw_sectors();
            let lba = self.draw_address(sectors);
            let is_write = self.rng.chance(self.spec.write_fraction);
            (lba, sectors, is_write)
        };

        DataPacket {
            id,
            lba,
            sectors,
            is_write,
            arrival: self.advance_clock(),
            payload_tag,
        }
    }

    /// Produces the next `n` requests.
    pub fn take_packets(&mut self, n: usize) -> Vec<DataPacket> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SequenceMode;
    use pfault_sim::storage::{GIB, KIB, MIB};

    fn gen_with(spec: WorkloadSpec) -> WorkloadGenerator {
        WorkloadGenerator::new(spec, DetRng::new(11))
    }

    #[test]
    fn ids_are_monotonic_and_deterministic() {
        let spec = WorkloadSpec::builder().wss_bytes(GIB).build();
        let mut a = gen_with(spec);
        let mut b = gen_with(spec);
        for i in 0..50 {
            let pa = a.next_packet();
            let pb = b.next_packet();
            assert_eq!(pa.id, i);
            assert_eq!(pa, pb, "same seed must give same stream");
        }
    }

    #[test]
    fn sizes_respect_uniform_range() {
        let spec = WorkloadSpec::builder().wss_bytes(4 * GIB).build();
        let mut g = gen_with(spec);
        for _ in 0..500 {
            let p = g.next_packet();
            let bytes = p.sectors.bytes();
            assert!((4 * KIB..=MIB).contains(&bytes), "size {bytes}");
        }
    }

    #[test]
    fn fixed_size_is_constant() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .size(SizeSpec::FixedBytes(16 * KIB))
            .build();
        let mut g = gen_with(spec);
        for _ in 0..50 {
            assert_eq!(g.next_packet().sectors, SectorCount::new(4));
        }
    }

    #[test]
    fn addresses_stay_inside_wss() {
        let spec = WorkloadSpec::builder().wss_bytes(GIB).build();
        let wss_sectors = spec.wss_sectors();
        let mut g = gen_with(spec);
        for _ in 0..500 {
            let p = g.next_packet();
            assert!(p.lba.index() + p.sectors.get() <= wss_sectors);
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .write_fraction(0.2)
            .build();
        let mut g = gen_with(spec);
        let writes = (0..5_000).filter(|_| g.next_packet().is_write).count();
        let frac = writes as f64 / 5_000.0;
        assert!((frac - 0.2).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn sequential_addresses_are_consecutive_and_wrap() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .pattern(AccessPattern::Sequential)
            .size(SizeSpec::FixedBytes(256 * KIB))
            .build();
        let mut g = gen_with(spec);
        let mut expected = 0u64;
        for _ in 0..10 {
            let p = g.next_packet();
            assert_eq!(p.lba.index(), expected);
            expected += p.sectors.get();
        }
        // Exhaust the working set to observe the wrap.
        let per_req = 256 * KIB / 4096;
        let reqs_to_wrap = spec.wss_sectors() / per_req;
        for _ in 10..reqs_to_wrap {
            g.next_packet();
        }
        assert_eq!(g.next_packet().lba.index(), 0);
    }

    #[test]
    fn open_loop_paces_arrivals() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .arrival(ArrivalModel::OpenLoop { iops: 1000.0 })
            .build();
        let mut g = gen_with(spec);
        let a = g.next_packet().arrival;
        let b = g.next_packet().arrival;
        let c = g.next_packet().arrival;
        assert_eq!((b - a).as_micros(), 1_000);
        assert_eq!((c - b).as_micros(), 1_000);
    }

    #[test]
    fn poisson_arrivals_average_the_requested_rate() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .arrival(ArrivalModel::OpenLoopPoisson { iops: 2_000.0 })
            .build();
        let mut g = gen_with(spec);
        let n = 4_000;
        let mut last = SimTime::ZERO;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let t = g.next_packet().arrival;
            gaps.push((t - last).as_micros() as f64);
            last = t;
        }
        let mean_gap = gaps.iter().sum::<f64>() / n as f64;
        assert!((mean_gap - 500.0).abs() < 30.0, "mean gap {mean_gap}µs");
        // Exponential gaps are bursty: the variance is on the order of
        // the squared mean (coefficient of variation ≈ 1).
        let var = gaps.iter().map(|g| (g - mean_gap).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean_gap;
        assert!((0.8..1.2).contains(&cv), "cv {cv}");
    }

    #[test]
    fn closed_loop_leaves_arrival_at_zero() {
        let spec = WorkloadSpec::builder().wss_bytes(GIB).build();
        let mut g = gen_with(spec);
        assert_eq!(g.next_packet().arrival, SimTime::ZERO);
        assert_eq!(g.next_packet().arrival, SimTime::ZERO);
    }

    #[test]
    fn zipf_skews_toward_low_addresses() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .pattern(AccessPattern::Zipf { theta: 0.99 })
            .size(SizeSpec::FixedBytes(4 * KIB))
            .build();
        let wss = spec.wss_sectors();
        let mut g = gen_with(spec);
        let n = 4_000;
        let in_first_tenth = (0..n)
            .filter(|_| g.next_packet().lba.index() < wss / 10)
            .count();
        // Under uniform this would be ~10%; heavy Zipf concentrates most
        // accesses in the first buckets.
        assert!(
            in_first_tenth as f64 / n as f64 > 0.5,
            "only {in_first_tenth}/{n} accesses hit the hot tenth"
        );
    }

    #[test]
    fn zipf_addresses_stay_in_bounds() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .pattern(AccessPattern::Zipf { theta: 0.6 })
            .build();
        let wss = spec.wss_sectors();
        let mut g = gen_with(spec);
        for _ in 0..1_000 {
            let p = g.next_packet();
            assert!(p.lba.index() + p.sectors.get() <= wss);
        }
    }

    #[test]
    #[should_panic(expected = "zipf theta must be in [0, 1)")]
    fn zipf_theta_validated() {
        WorkloadSpec::builder()
            .wss_bytes(GIB)
            .pattern(AccessPattern::Zipf { theta: 1.5 })
            .build();
    }

    #[test]
    fn waw_pairs_share_address_and_are_writes() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .sequence(SequenceMode::Waw)
            .build();
        let mut g = gen_with(spec);
        for _ in 0..20 {
            let first = g.next_packet();
            let second = g.next_packet();
            assert!(first.is_write && second.is_write);
            assert_eq!(first.lba, second.lba);
            assert_eq!(first.sectors, second.sectors);
            assert_ne!(first.payload_tag, second.payload_tag);
        }
    }

    #[test]
    fn raw_pair_is_write_then_read() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .sequence(SequenceMode::Raw)
            .build();
        let mut g = gen_with(spec);
        let first = g.next_packet();
        let second = g.next_packet();
        assert!(first.is_write);
        assert!(!second.is_write);
    }

    #[test]
    fn sequence_pairs_move_between_addresses() {
        let spec = WorkloadSpec::builder()
            .wss_bytes(GIB)
            .sequence(SequenceMode::Waw)
            .build();
        let mut g = gen_with(spec);
        let mut addresses = std::collections::HashSet::new();
        for _ in 0..20 {
            let first = g.next_packet();
            let _ = g.next_packet();
            addresses.insert(first.lba);
        }
        assert!(addresses.len() > 10, "pairs should roam the working set");
    }
}
