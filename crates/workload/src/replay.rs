//! Trace replay: drive the platform from a recorded IO trace instead of a
//! synthetic distribution.
//!
//! The text format is one operation per line, comma-separated:
//!
//! ```text
//! # time_us, op, lba, sectors
//! 0,W,2048,8
//! 150,R,2048,8
//! 400,W,90112,256
//! ```
//!
//! `op` is `R` or `W`; `lba`/`sectors` are in 4 KiB units; blank lines and
//! `#` comments are ignored. Arrival times must be non-decreasing.
//!
//! # Example
//!
//! ```
//! use pfault_workload::replay::{parse_trace, ReplayGenerator};
//! use pfault_sim::DetRng;
//!
//! # fn main() -> Result<(), pfault_workload::replay::ParseTraceError> {
//! let ops = parse_trace("0,W,100,8\n250,R,100,8\n")?;
//! let mut replay = ReplayGenerator::new(ops, DetRng::new(1));
//! let first = replay.next_packet().expect("two ops recorded");
//! assert!(first.is_write);
//! assert_eq!(first.lba.index(), 100);
//! # Ok(())
//! # }
//! ```

use core::fmt;

use pfault_sim::{DetRng, Lba, SectorCount, SimTime};

use crate::packet::DataPacket;

/// One recorded IO operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Arrival instant.
    pub arrival: SimTime,
    /// Write or read.
    pub is_write: bool,
    /// Starting sector.
    pub lba: Lba,
    /// Length.
    pub sectors: SectorCount,
}

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the replay text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the offending line for malformed
/// fields, unknown ops, zero-length requests, or time going backwards.
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, ParseTraceError> {
    let mut ops = Vec::new();
    let mut last_arrival = SimTime::ZERO;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let err = |reason: &str| ParseTraceError {
            line,
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(err("expected 4 comma-separated fields"));
        }
        let time_us: u64 = fields[0].parse().map_err(|_| err("bad time_us"))?;
        let is_write = match fields[1] {
            "W" | "w" => true,
            "R" | "r" => false,
            _ => return Err(err("op must be R or W")),
        };
        let lba: u64 = fields[2].parse().map_err(|_| err("bad lba"))?;
        let sectors: u64 = fields[3].parse().map_err(|_| err("bad sectors"))?;
        if sectors == 0 {
            return Err(err("sectors must be positive"));
        }
        let arrival = SimTime::from_micros(time_us);
        if arrival < last_arrival {
            return Err(err("time goes backwards"));
        }
        last_arrival = arrival;
        ops.push(TraceOp {
            arrival,
            is_write,
            lba: Lba::new(lba),
            sectors: SectorCount::new(sectors),
        });
    }
    Ok(ops)
}

/// Replays a parsed trace as a packet stream (payload identities are drawn
/// from the seeded RNG, so replays stay deterministic).
#[derive(Debug, Clone)]
pub struct ReplayGenerator {
    ops: Vec<TraceOp>,
    cursor: usize,
    rng: DetRng,
    next_id: u64,
}

impl ReplayGenerator {
    /// Creates a replay over `ops`.
    pub fn new(ops: Vec<TraceOp>, rng: DetRng) -> Self {
        ReplayGenerator {
            ops,
            cursor: 0,
            rng,
            next_id: 0,
        }
    }

    /// Operations remaining.
    pub fn remaining(&self) -> usize {
        self.ops.len() - self.cursor
    }

    /// Total operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Produces the next packet, or `None` at end of trace.
    pub fn next_packet(&mut self) -> Option<DataPacket> {
        let op = *self.ops.get(self.cursor)?;
        self.cursor += 1;
        let id = self.next_id;
        self.next_id += 1;
        Some(DataPacket {
            id,
            lba: op.lba,
            sectors: op.sectors,
            is_write: op.is_write,
            arrival: op.arrival,
            payload_tag: self.rng.next_u64(),
        })
    }

    /// Rewinds to the start of the trace (ids keep counting up so packet
    /// identities stay unique across loops).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
0,W,2048,8

150,R,2048,8
400,w,90112,256
";

    #[test]
    fn parses_comments_blanks_and_case() {
        let ops = parse_trace(SAMPLE).expect("valid trace");
        assert_eq!(ops.len(), 3);
        assert!(ops[0].is_write);
        assert!(!ops[1].is_write);
        assert!(ops[2].is_write);
        assert_eq!(ops[2].sectors, SectorCount::new(256));
        assert_eq!(ops[1].arrival, SimTime::from_micros(150));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let cases = [
            ("0,W,10", "expected 4"),
            ("x,W,10,1", "bad time_us"),
            ("0,Q,10,1", "op must be R or W"),
            ("0,W,zz,1", "bad lba"),
            ("0,W,10,0", "sectors must be positive"),
        ];
        for (text, needle) in cases {
            let err = parse_trace(text).expect_err(text);
            assert_eq!(err.line, 1);
            assert!(err.reason.contains(needle), "{err}");
        }
    }

    #[test]
    fn rejects_time_regression() {
        let err = parse_trace("100,W,0,1\n50,W,0,1\n").expect_err("regression");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("time goes backwards"));
    }

    #[test]
    fn replay_produces_packets_in_order() {
        let ops = parse_trace(SAMPLE).expect("valid trace");
        let mut replay = ReplayGenerator::new(ops, DetRng::new(9));
        assert_eq!(replay.len(), 3);
        let mut prev = SimTime::ZERO;
        let mut ids = Vec::new();
        while let Some(p) = replay.next_packet() {
            assert!(p.arrival >= prev);
            prev = p.arrival;
            ids.push(p.id);
        }
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn rewind_replays_with_fresh_ids() {
        let ops = parse_trace("0,W,1,1\n").expect("valid");
        let mut replay = ReplayGenerator::new(ops, DetRng::new(1));
        let a = replay.next_packet().expect("one op");
        replay.rewind();
        let b = replay.next_packet().expect("one op again");
        assert_eq!(a.lba, b.lba);
        assert_ne!(a.id, b.id, "ids must stay unique across loops");
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let ops = parse_trace(SAMPLE).expect("valid");
        let mut a = ReplayGenerator::new(ops.clone(), DetRng::new(4));
        let mut b = ReplayGenerator::new(ops, DetRng::new(4));
        while let (Some(pa), Some(pb)) = (a.next_packet(), b.next_packet()) {
            assert_eq!(pa, pb);
        }
    }
}
