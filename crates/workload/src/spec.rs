//! Workload specification and builder.

use serde::{Deserialize, Serialize};

use pfault_sim::storage::{GIB, KIB, MIB, SECTOR_BYTES};

/// Spatial access pattern (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Uniform random addresses over the working set.
    UniformRandom,
    /// Consecutive addresses, wrapping at the working-set end.
    Sequential,
    /// Zipf-skewed addresses: a small hot region absorbs most accesses.
    /// `theta` ∈ [0, 1): 0 degenerates to uniform, 0.99 is heavily
    /// skewed (YCSB-style).
    Zipf {
        /// Skew parameter.
        theta: f64,
    },
}

/// Dependent access sequences (§IV-G). Requests come in pairs on the same
/// address: the second access of each pair lands on the address of the
/// previously completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SequenceMode {
    /// Read after read.
    Rar,
    /// Read after write.
    Raw,
    /// Write after read.
    War,
    /// Write after write.
    Waw,
}

impl SequenceMode {
    /// `(first, second)` of each pair as `is_write` flags.
    pub fn pair(self) -> (bool, bool) {
        match self {
            SequenceMode::Rar => (false, false),
            SequenceMode::Raw => (true, false), // read AFTER write
            SequenceMode::War => (false, true), // write AFTER read
            SequenceMode::Waw => (true, true),
        }
    }

    /// All four modes, in the paper's Fig 9 x-axis order.
    pub fn all() -> [SequenceMode; 4] {
        [
            SequenceMode::Raw,
            SequenceMode::War,
            SequenceMode::Rar,
            SequenceMode::Waw,
        ]
    }
}

/// Request size model (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeSpec {
    /// Uniform random length in `[min_bytes, max_bytes]`, rounded to
    /// sectors. The paper's default is 4 KiB–1 MiB.
    UniformBytes {
        /// Smallest request, bytes.
        min_bytes: u64,
        /// Largest request, bytes.
        max_bytes: u64,
    },
    /// Every request has exactly this many bytes.
    FixedBytes(u64),
}

impl SizeSpec {
    /// The paper's default range: 4 KiB to 1 MiB.
    pub const fn paper_default() -> Self {
        SizeSpec::UniformBytes {
            min_bytes: 4 * KIB,
            max_bytes: MIB,
        }
    }

    /// Largest possible request, in sectors.
    pub fn max_sectors(&self) -> u64 {
        let bytes = match *self {
            SizeSpec::UniformBytes { max_bytes, .. } => max_bytes,
            SizeSpec::FixedBytes(b) => b,
        };
        bytes.div_ceil(SECTOR_BYTES)
    }
}

/// How request arrivals are paced (§IV-F).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Closed loop: the platform keeps `queue_depth` requests outstanding
    /// and submits a new one on each completion.
    ClosedLoop {
        /// Outstanding-request target.
        queue_depth: u32,
    },
    /// Open loop at a fixed requested IOPS (deterministic pacing).
    OpenLoop {
        /// Requests per second submitted regardless of completions.
        iops: f64,
    },
    /// Open loop with Poisson arrivals at a mean IOPS (exponential
    /// inter-arrival times) — a burstier, more realistic arrival process
    /// than fixed pacing.
    OpenLoopPoisson {
        /// Mean requests per second.
        iops: f64,
    },
}

/// A complete workload description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Working-set size in bytes (§IV-C): addresses fall in
    /// `[0, wss_bytes)`.
    pub wss_bytes: u64,
    /// Fraction of requests that are writes, `0.0..=1.0` (§IV-B).
    pub write_fraction: f64,
    /// Request size model.
    pub size: SizeSpec,
    /// Spatial pattern.
    pub pattern: AccessPattern,
    /// Optional dependent-sequence mode (overrides `write_fraction` and
    /// `pattern` for address/type selection).
    pub sequence: Option<SequenceMode>,
    /// Arrival pacing.
    pub arrival: ArrivalModel,
}

impl WorkloadSpec {
    /// Starts a builder with the paper's §IV defaults: 64 GiB WSS, 100 %
    /// random writes of 4 KiB–1 MiB, closed loop at queue depth 1 (the
    /// paper's generator issues requests near-serially; the shallow depth
    /// also keeps in-flight-at-fault IO errors in the paper's range).
    pub fn builder() -> WorkloadSpecBuilder {
        WorkloadSpecBuilder {
            spec: WorkloadSpec {
                wss_bytes: 64 * GIB,
                write_fraction: 1.0,
                size: SizeSpec::paper_default(),
                pattern: AccessPattern::UniformRandom,
                sequence: None,
                arrival: ArrivalModel::ClosedLoop { queue_depth: 1 },
            },
        }
    }

    /// Working-set size in sectors.
    pub fn wss_sectors(&self) -> u64 {
        self.wss_bytes / SECTOR_BYTES
    }

    /// Validates the specification.
    ///
    /// # Panics
    ///
    /// Panics if the working set cannot hold the largest request, the
    /// write fraction is outside `[0, 1]`, or the arrival model is
    /// degenerate.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.write_fraction),
            "write fraction must be in [0, 1]"
        );
        assert!(
            self.wss_sectors() >= self.size.max_sectors(),
            "working set smaller than the largest request"
        );
        match self.arrival {
            ArrivalModel::ClosedLoop { queue_depth } => {
                assert!(queue_depth > 0, "queue depth must be positive");
            }
            ArrivalModel::OpenLoop { iops } | ArrivalModel::OpenLoopPoisson { iops } => {
                assert!(iops > 0.0 && iops.is_finite(), "iops must be positive");
            }
        }
        if let SizeSpec::UniformBytes {
            min_bytes,
            max_bytes,
        } = self.size
        {
            assert!(min_bytes > 0 && min_bytes <= max_bytes, "bad size range");
        }
        if let AccessPattern::Zipf { theta } = self.pattern {
            assert!((0.0..1.0).contains(&theta), "zipf theta must be in [0, 1)");
        }
    }
}

/// Builder for [`WorkloadSpec`].
#[derive(Debug, Clone)]
pub struct WorkloadSpecBuilder {
    spec: WorkloadSpec,
}

impl WorkloadSpecBuilder {
    /// Sets the working-set size in bytes.
    pub fn wss_bytes(mut self, bytes: u64) -> Self {
        self.spec.wss_bytes = bytes;
        self
    }

    /// Sets the write fraction (`1.0` = all writes).
    pub fn write_fraction(mut self, fraction: f64) -> Self {
        self.spec.write_fraction = fraction;
        self
    }

    /// Sets the request size model.
    pub fn size(mut self, size: SizeSpec) -> Self {
        self.spec.size = size;
        self
    }

    /// Sets the spatial pattern.
    pub fn pattern(mut self, pattern: AccessPattern) -> Self {
        self.spec.pattern = pattern;
        self
    }

    /// Enables a dependent-sequence mode.
    pub fn sequence(mut self, mode: SequenceMode) -> Self {
        self.spec.sequence = Some(mode);
        self
    }

    /// Sets the arrival model.
    pub fn arrival(mut self, arrival: ArrivalModel) -> Self {
        self.spec.arrival = arrival;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if the resulting spec is invalid (see
    /// [`WorkloadSpec::validate`]).
    pub fn build(self) -> WorkloadSpec {
        self.spec.validate();
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let s = WorkloadSpec::builder().build();
        assert_eq!(s.wss_bytes, 64 * GIB);
        assert_eq!(s.write_fraction, 1.0);
        assert_eq!(s.size, SizeSpec::paper_default());
        assert_eq!(s.pattern, AccessPattern::UniformRandom);
        assert!(s.sequence.is_none());
    }

    #[test]
    fn sequence_pairs_have_correct_types() {
        assert_eq!(SequenceMode::Rar.pair(), (false, false));
        assert_eq!(SequenceMode::Raw.pair(), (true, false));
        assert_eq!(SequenceMode::War.pair(), (false, true));
        assert_eq!(SequenceMode::Waw.pair(), (true, true));
        assert_eq!(SequenceMode::all().len(), 4);
    }

    #[test]
    fn size_max_sectors() {
        assert_eq!(SizeSpec::paper_default().max_sectors(), 256);
        assert_eq!(SizeSpec::FixedBytes(4 * KIB).max_sectors(), 1);
    }

    #[test]
    #[should_panic(expected = "write fraction must be in [0, 1]")]
    fn bad_write_fraction_rejected() {
        WorkloadSpec::builder().write_fraction(1.5).build();
    }

    #[test]
    #[should_panic(expected = "working set smaller than the largest request")]
    fn tiny_wss_rejected() {
        WorkloadSpec::builder().wss_bytes(512 * KIB).build();
    }

    #[test]
    #[should_panic(expected = "iops must be positive")]
    fn bad_iops_rejected() {
        WorkloadSpec::builder()
            .arrival(ArrivalModel::OpenLoop { iops: 0.0 })
            .build();
    }

    #[test]
    fn wss_sector_conversion() {
        let s = WorkloadSpec::builder().wss_bytes(GIB).build();
        assert_eq!(s.wss_sectors(), GIB / 4096);
    }
}
