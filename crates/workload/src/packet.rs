//! Data packets — the paper's Fig 2 structure.
//!
//! A packet is one IO request plus the bookkeeping the Analyzer needs:
//! identity, geometry, per-sector content tags (stand-ins for the randomly
//! generated payload), and the checksum of that payload. The remaining
//! Fig 2 header fields — initial checksum (pre-issue content of the target
//! range), final checksum (post-fault read-back), queue/complete times, and
//! the `modified` / `data failure` / `not issued` flags — are filled in by
//! the platform as the request progresses.

use serde::{Deserialize, Serialize};

use pfault_sim::checksum::mix64;
use pfault_sim::{Lba, SectorCount, SimTime};

/// One IO request with its payload identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPacket {
    /// Request identifier (monotonic per generator).
    pub id: u64,
    /// Destination address.
    pub lba: Lba,
    /// Request length.
    pub sectors: SectorCount,
    /// Write (`true`) or read.
    pub is_write: bool,
    /// Arrival instant chosen by the generator's arrival model.
    pub arrival: SimTime,
    /// Identity of the randomly generated payload (writes only; the
    /// per-sector content tag is derived via [`DataPacket::sector_tag`]).
    pub payload_tag: u64,
}

impl DataPacket {
    /// Content tag of the `index`-th sector of this request's payload.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the request.
    pub fn sector_tag(&self, index: u64) -> u64 {
        assert!(index < self.sectors.get(), "sector index out of range");
        mix64(self.payload_tag, index)
    }

    /// Checksum of the whole payload (the Fig 2 "data checksum" field).
    pub fn data_checksum(&self) -> u64 {
        let mut acc = 0u64;
        for i in 0..self.sectors.get() {
            acc = mix64(acc, self.sector_tag(i));
        }
        acc
    }

    /// The LBAs this request touches.
    pub fn lbas(&self) -> impl Iterator<Item = Lba> {
        self.lba.span(self.sectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> DataPacket {
        DataPacket {
            id: 1,
            lba: Lba::new(100),
            sectors: SectorCount::new(4),
            is_write: true,
            arrival: SimTime::from_millis(3),
            payload_tag: 0xABCD,
        }
    }

    #[test]
    fn sector_tags_are_distinct_and_stable() {
        let p = packet();
        let tags: Vec<u64> = (0..4).map(|i| p.sector_tag(i)).collect();
        let mut dedup = tags.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "sector tags must be distinct");
        assert_eq!(p.sector_tag(2), tags[2]);
    }

    #[test]
    #[should_panic(expected = "sector index out of range")]
    fn sector_tag_bounds_checked() {
        packet().sector_tag(4);
    }

    #[test]
    fn data_checksum_depends_on_every_sector() {
        let a = packet();
        let mut b = a;
        b.payload_tag ^= 1;
        assert_ne!(a.data_checksum(), b.data_checksum());
    }

    #[test]
    fn lbas_cover_the_request() {
        let p = packet();
        let v: Vec<u64> = p.lbas().map(Lba::index).collect();
        assert_eq!(v, vec![100, 101, 102, 103]);
    }
}
