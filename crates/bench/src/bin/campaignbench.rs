//! `campaignbench` — measures the campaign engine v2.
//!
//! Three questions, all against the fault-injection campaign on the
//! paper's vendor-A preset with a deterministic warm-up prefix:
//!
//! 1. **Image cloning speedup** — how much faster is a campaign when
//!    the warm-up runs once and every trial copy-on-write-clones the
//!    frozen [`pfault_ssd::DeviceImage`], versus replaying the warm-up
//!    from a cold device inside every trial?
//! 2. **Engine equality** — serial, statically striped, and
//!    work-stealing runs of the same seed must produce byte-identical
//!    reports (the scheduler is an implementation detail, never a
//!    result).
//! 3. **Scheduler health** — per-worker utilization and steal counts
//!    from the work-stealing engine, plus per-engine snapshot-cache
//!    traffic: each engine reports the hits/misses *it* caused and the
//!    memoization state it started from, so a `0` hit count on the
//!    first image-cloning engine reads as "ran the one warm-up" rather
//!    than "cache never helped".
//!
//! Writes `BENCH_campaign.json`. `--smoke` runs a small budget and
//! exits nonzero unless the image-clone speedup reaches 2x, every
//! engine/report pair is byte-identical, and the later engines start
//! from the memoized image — wired into `make bench-smoke`.
//!
//! Usage:
//!
//! ```text
//! campaignbench [--smoke] [--trials N] [--warmup N] [--threads N]
//!               [--seed N] [--out FILE]
//! ```

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use pfault_bench::DEFAULT_SEED;
use pfault_platform::campaign::{Campaign, CampaignConfig, CampaignReport};
use pfault_platform::plan::PlanSpec;
use pfault_platform::snapcache::SnapshotCacheStats;
use pfault_platform::{snapcache, SchedulerStats};

struct BenchArgs {
    trials: usize,
    warmup: usize,
    threads: usize,
    seed: u64,
    out: String,
    smoke: bool,
}

impl BenchArgs {
    fn parse() -> Result<BenchArgs, ExitCode> {
        let mut a = BenchArgs {
            trials: 160,
            warmup: 256,
            threads: 4,
            seed: DEFAULT_SEED,
            out: String::from("BENCH_campaign.json"),
            smoke: false,
        };
        let mut args = env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    a.smoke = true;
                    a.trials = 24;
                    a.warmup = 192;
                }
                "--trials" => a.trials = num(&mut args, "--trials")? as usize,
                "--warmup" => a.warmup = num(&mut args, "--warmup")? as usize,
                "--threads" => a.threads = (num(&mut args, "--threads")? as usize).max(1),
                "--seed" => a.seed = num(&mut args, "--seed")?,
                "--out" => a.out = args.next().unwrap_or_default(),
                "--help" | "-h" => {
                    println!(
                        "campaignbench [--smoke] [--trials N] [--warmup N] [--threads N] \
                         [--seed N] [--out FILE]"
                    );
                    return Err(ExitCode::SUCCESS);
                }
                other => {
                    eprintln!("unknown argument '{other}'");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
        Ok(a)
    }
}

fn num(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, ExitCode> {
    let v = args.next().unwrap_or_default();
    v.parse().map_err(|_| {
        eprintln!("bad {name} '{v}' (expected a number)");
        ExitCode::FAILURE
    })
}

/// The benchmark preset: the paper's vendor-A drive with a
/// deterministic warm-up prefix ahead of every trial.
fn bench_config(trials: usize, warmup: usize) -> CampaignConfig {
    let mut config = CampaignConfig::paper_default();
    config.trials = trials;
    config.requests_per_trial = 40;
    config.trial.warmup_requests = warmup;
    config
}

fn campaign(config: &CampaignConfig, seed: u64, threads: usize, cache: bool) -> Campaign {
    Campaign::builder(*config)
        .plan(PlanSpec::fixed(config.trials as u64))
        .seed(seed)
        .threads(threads)
        .snapshot_cache(cache)
        .build()
}

/// One engine run, bracketed by snapshot-cache counter reads so the
/// engine's own cache traffic (and the memoization state it started
/// from) is attributable to it alone.
struct EngineRun {
    report: CampaignReport,
    seconds: f64,
    started: SnapshotCacheStats,
    hits: u64,
    misses: u64,
}

impl EngineRun {
    fn measure(run: impl FnOnce() -> CampaignReport) -> EngineRun {
        let started = snapcache::stats();
        let start = Instant::now();
        let report = run();
        let seconds = start.elapsed().as_secs_f64();
        let after = snapcache::stats();
        EngineRun {
            report,
            seconds,
            started,
            hits: after.hits - started.hits,
            misses: after.misses - started.misses,
        }
    }

    fn trials_per_sec(&self, trials: usize) -> f64 {
        trials as f64 / self.seconds
    }

    fn started_memoized(&self) -> bool {
        self.started.entries > 0
    }

    fn json(&self, trials: usize) -> serde_json::Value {
        serde_json::json!({
            "seconds": self.seconds,
            "trials_per_sec": self.trials_per_sec(trials),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "started_with_entries": self.started.entries,
            "started_memoized": self.started_memoized(),
        })
    }

    fn describe(&self, label: &str, trials: usize) {
        println!(
            "{label:<17}: {:8.3} s  ({:7.1} trials/s)  cache {} hit(s) / {} miss(es), \
             started {}",
            self.seconds,
            self.trials_per_sec(trials),
            self.hits,
            self.misses,
            if self.started_memoized() {
                "memoized"
            } else {
                "cold-cache"
            }
        );
    }
}

fn report_bytes(report: &CampaignReport) -> String {
    serde_json::to_string(report).expect("reports serialize")
}

fn main() -> ExitCode {
    let a = match BenchArgs::parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let config = bench_config(a.trials, a.warmup);
    println!(
        "campaignbench: {} trials, warm-up {} requests, {} threads, seed {}",
        a.trials, a.warmup, a.threads, a.seed
    );

    // Phase 1 — replay-from-cold: snapshot cache off, so every trial
    // replays the warm-up prefix against a cold device.
    snapcache::reset();
    let cold_campaign = campaign(&config, a.seed, 1, false);
    let cold = EngineRun::measure(|| cold_campaign.run());
    let cold_tps = cold.trials_per_sec(a.trials);
    cold.describe("replay-from-cold", a.trials);

    // Phase 2 — image cloning: the warm-up runs once (a cache miss),
    // every trial copy-on-write-clones the frozen image. The engine
    // memoizes the image at campaign start, so its expected traffic is
    // exactly one miss and zero hits — the trials themselves never
    // touch the cache again.
    let snap_campaign = campaign(&config, a.seed, 1, true);
    let snap = EngineRun::measure(|| snap_campaign.run());
    let snap_tps = snap.trials_per_sec(a.trials);
    let speedup = snap_tps / cold_tps;
    snap.describe("image-clone", a.trials);
    println!("speedup          : {speedup:.2}x over replay-from-cold");

    // Phase 3 + 4 — engine equality + scheduler stats. All three
    // engines (and both warm-up strategies above) must agree
    // byte-for-byte; both parallel engines start from the image phase 2
    // memoized (one hit, zero misses each).
    let striped = EngineRun::measure(|| campaign(&config, a.seed, a.threads, true).run_parallel(a.threads));
    striped.describe("striped", a.trials);
    let mut sched = SchedulerStats {
        threads: 0,
        chunk: 0,
        trials: 0,
        workers: Vec::new(),
    };
    let stealing = EngineRun::measure(|| {
        let (report, stats) =
            campaign(&config, a.seed, a.threads, true).run_stealing_with_stats(a.threads);
        sched = stats;
        report
    });
    stealing.describe("stealing", a.trials);

    let baseline = report_bytes(&cold.report);
    let snap_equal = report_bytes(&snap.report) == baseline;
    let striped_equal = report_bytes(&striped.report) == baseline;
    let stealing_equal = report_bytes(&stealing.report) == baseline;
    println!(
        "engine equality  : image={snap_equal} striped={striped_equal} \
         stealing={stealing_equal}"
    );
    for w in &sched.workers {
        println!(
            "worker {:>2}       : {:3} trial(s), {:2} steal(s) ({:3} stolen), \
             utilization {:.2}",
            w.worker,
            w.trials_run,
            w.steals,
            w.stolen_trials,
            w.utilization()
        );
    }
    println!(
        "scheduler        : {} thread(s), {} total steal(s), mean utilization {:.2}",
        sched.threads,
        sched.total_steals(),
        sched.mean_utilization()
    );
    // Cumulative counters after all four campaigns: the one warm-up
    // miss from phase 2, then one hit per later campaign.
    let final_cache = snapcache::stats();
    println!(
        "cache cumulative : {} hit(s), {} miss(es), hit rate {:.3}",
        final_cache.hits,
        final_cache.misses,
        final_cache.hit_rate()
    );

    let doc = serde_json::json!({
        "bench": "campaignbench",
        "preset": "vendor-A paper_default",
        "trials": a.trials,
        "requests_per_trial": 40,
        "warmup_requests": a.warmup,
        "threads": a.threads,
        "seed": a.seed,
        "replay_from_cold": cold.json(a.trials),
        "snapshot_clone": snap.json(a.trials),
        "striped": striped.json(a.trials),
        "stealing": stealing.json(a.trials),
        "cache_after_all_engines": serde_json::json!({
            "hits": final_cache.hits,
            "misses": final_cache.misses,
            "hit_rate": final_cache.hit_rate(),
            "delta_images": final_cache.delta_images,
            "evictions": final_cache.evictions,
        }),
        "speedup": speedup,
        "reports_identical": serde_json::json!({
            "snapshot_vs_cold": snap_equal,
            "striped_vs_serial": striped_equal,
            "stealing_vs_serial": stealing_equal,
        }),
        "scheduler": serde_json::to_value(&sched).expect("stats serialize"),
    });
    let body = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&a.out, body) {
        eprintln!("failed to write {}: {e}", a.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", a.out);

    // Self-checking exit: equality and cache-traffic shape always,
    // speedup under --smoke (the full run reports speedup but leaves
    // judgement to the committed BENCH_campaign.json).
    let mut failed = false;
    if !(snap_equal && striped_equal && stealing_equal) {
        eprintln!("campaignbench failed: engines/strategies disagree on the report");
        failed = true;
    }
    // The ratio floor is 2x, not the raw ~10x the CoW rework delivered
    // over the old deep-copy numbers: the same PR also tripled the
    // *cold* replay path (the write cache's clean-eviction index), and
    // speedup here is clone-vs-cold on the current code, not vs the
    // historical baseline. The typical smoke-sized ratio is ~3.2x; the
    // floor sits well below the noise band of a loaded single-core runner.
    // Absolute throughput is judged against the committed
    // BENCH_campaign.json instead.
    if a.smoke && speedup < 2.0 {
        eprintln!("campaignbench failed: image-clone speedup {speedup:.2}x < 2x");
        failed = true;
    }
    if a.smoke && (snap.misses != 1 || snap.started_memoized()) {
        eprintln!(
            "campaignbench failed: the image-clone engine must run exactly one warm-up \
             from a cold cache, saw {} miss(es), started_memoized={}",
            snap.misses,
            snap.started_memoized()
        );
        failed = true;
    }
    if a.smoke
        && !(striped.started_memoized()
            && stealing.started_memoized()
            && striped.misses == 0
            && stealing.misses == 0)
    {
        eprintln!(
            "campaignbench failed: parallel engines must start from the memoized image \
             (striped: {} miss(es), memoized={}; stealing: {} miss(es), memoized={})",
            striped.misses,
            striped.started_memoized(),
            stealing.misses,
            stealing.started_memoized()
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
