//! `campaignbench` — measures the campaign engine v2.
//!
//! Three questions, all against the fault-injection campaign on the
//! paper's vendor-A preset with a deterministic warm-up prefix:
//!
//! 1. **Snapshot cloning speedup** — how much faster is a campaign when
//!    the warm-up runs once and every trial clone-restores the
//!    [`pfault_ssd::SsdSnapshot`], versus replaying the warm-up from a
//!    cold device inside every trial?
//! 2. **Engine equality** — serial, statically striped, and
//!    work-stealing runs of the same seed must produce byte-identical
//!    reports (the scheduler is an implementation detail, never a
//!    result).
//! 3. **Scheduler health** — per-worker utilization and steal counts
//!    from the work-stealing engine, plus the snapshot cache hit rate.
//!
//! Writes `BENCH_campaign.json`. `--smoke` runs a small budget and
//! exits nonzero unless the snapshot speedup reaches 1.5x and every
//! engine/report pair is byte-identical — wired into `make bench-smoke`.
//!
//! Usage:
//!
//! ```text
//! campaignbench [--smoke] [--trials N] [--warmup N] [--threads N]
//!               [--seed N] [--out FILE]
//! ```

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use pfault_bench::DEFAULT_SEED;
use pfault_platform::campaign::{Campaign, CampaignConfig, CampaignReport};
use pfault_platform::{snapcache, SchedulerStats};

struct BenchArgs {
    trials: usize,
    warmup: usize,
    threads: usize,
    seed: u64,
    out: String,
    smoke: bool,
}

impl BenchArgs {
    fn parse() -> Result<BenchArgs, ExitCode> {
        let mut a = BenchArgs {
            trials: 160,
            warmup: 256,
            threads: 4,
            seed: DEFAULT_SEED,
            out: String::from("BENCH_campaign.json"),
            smoke: false,
        };
        let mut args = env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    a.smoke = true;
                    a.trials = 24;
                    a.warmup = 192;
                }
                "--trials" => a.trials = num(&mut args, "--trials")? as usize,
                "--warmup" => a.warmup = num(&mut args, "--warmup")? as usize,
                "--threads" => a.threads = (num(&mut args, "--threads")? as usize).max(1),
                "--seed" => a.seed = num(&mut args, "--seed")?,
                "--out" => a.out = args.next().unwrap_or_default(),
                "--help" | "-h" => {
                    println!(
                        "campaignbench [--smoke] [--trials N] [--warmup N] [--threads N] \
                         [--seed N] [--out FILE]"
                    );
                    return Err(ExitCode::SUCCESS);
                }
                other => {
                    eprintln!("unknown argument '{other}'");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
        Ok(a)
    }
}

fn num(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, ExitCode> {
    let v = args.next().unwrap_or_default();
    v.parse().map_err(|_| {
        eprintln!("bad {name} '{v}' (expected a number)");
        ExitCode::FAILURE
    })
}

/// The benchmark preset: the paper's vendor-A drive with a
/// deterministic warm-up prefix ahead of every trial.
fn bench_config(trials: usize, warmup: usize) -> CampaignConfig {
    let mut config = CampaignConfig::paper_default();
    config.trials = trials;
    config.requests_per_trial = 40;
    config.trial.warmup_requests = warmup;
    config
}

fn campaign(config: &CampaignConfig, seed: u64, threads: usize, cache: bool) -> Campaign {
    Campaign::builder(*config)
        .seed(seed)
        .threads(threads)
        .snapshot_cache(cache)
        .build()
}

fn timed(run: impl FnOnce() -> CampaignReport) -> (CampaignReport, f64) {
    let start = Instant::now();
    let report = run();
    (report, start.elapsed().as_secs_f64())
}

fn report_bytes(report: &CampaignReport) -> String {
    serde_json::to_string(report).expect("reports serialize")
}

fn main() -> ExitCode {
    let a = match BenchArgs::parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let config = bench_config(a.trials, a.warmup);
    println!(
        "campaignbench: {} trials, warm-up {} requests, {} threads, seed {}",
        a.trials, a.warmup, a.threads, a.seed
    );

    // Phase 1 — replay-from-cold: snapshot cache off, so every trial
    // replays the warm-up prefix against a cold device.
    let cold_campaign = campaign(&config, a.seed, 1, false);
    let (cold_report, cold_secs) = timed(|| cold_campaign.run());
    let cold_tps = a.trials as f64 / cold_secs;
    println!("replay-from-cold : {cold_secs:8.3} s  ({cold_tps:7.1} trials/s)");

    // Phase 2 — snapshot cloning: the warm-up runs once (a cache miss),
    // every trial clone-restores the snapshot.
    snapcache::reset();
    let snap_campaign = campaign(&config, a.seed, 1, true);
    let (snap_report, snap_secs) = timed(|| snap_campaign.run());
    let snap_tps = a.trials as f64 / snap_secs;
    let cache = snapcache::stats();
    let speedup = snap_tps / cold_tps;
    println!(
        "snapshot-clone   : {snap_secs:8.3} s  ({snap_tps:7.1} trials/s)  speedup {speedup:.2}x"
    );
    println!(
        "snapshot cache   : {} hit(s), {} miss(es), hit rate {:.3}",
        cache.hits,
        cache.misses,
        cache.hit_rate()
    );

    // Phase 3 — engine equality + scheduler stats. All three engines
    // (and both warm-up strategies above) must agree byte-for-byte.
    let striped_report = campaign(&config, a.seed, a.threads, true).run_parallel(a.threads);
    let (stealing_report, sched): (CampaignReport, SchedulerStats) =
        campaign(&config, a.seed, a.threads, true).run_stealing_with_stats(a.threads);
    let baseline = report_bytes(&cold_report);
    let snap_equal = report_bytes(&snap_report) == baseline;
    let striped_equal = report_bytes(&striped_report) == baseline;
    let stealing_equal = report_bytes(&stealing_report) == baseline;
    println!(
        "engine equality  : snapshot={snap_equal} striped={striped_equal} \
         stealing={stealing_equal}"
    );
    for w in &sched.workers {
        println!(
            "worker {:>2}       : {:3} trial(s), {:2} steal(s) ({:3} stolen), \
             utilization {:.2}",
            w.worker,
            w.trials_run,
            w.steals,
            w.stolen_trials,
            w.utilization()
        );
    }
    println!(
        "scheduler        : {} thread(s), {} total steal(s), mean utilization {:.2}",
        sched.threads,
        sched.total_steals(),
        sched.mean_utilization()
    );
    // Cumulative counters after all four campaigns: the one warm-up
    // miss from phase 2, then one hit per later campaign.
    let final_cache = snapcache::stats();
    println!(
        "cache cumulative : {} hit(s), {} miss(es), hit rate {:.3}",
        final_cache.hits,
        final_cache.misses,
        final_cache.hit_rate()
    );

    let doc = serde_json::json!({
        "bench": "campaignbench",
        "preset": "vendor-A paper_default",
        "trials": a.trials,
        "requests_per_trial": 40,
        "warmup_requests": a.warmup,
        "threads": a.threads,
        "seed": a.seed,
        "replay_from_cold": serde_json::json!({
            "seconds": cold_secs,
            "trials_per_sec": cold_tps,
        }),
        "snapshot_clone": serde_json::json!({
            "seconds": snap_secs,
            "trials_per_sec": snap_tps,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_hit_rate": cache.hit_rate(),
        }),
        "cache_after_all_engines": serde_json::json!({
            "hits": final_cache.hits,
            "misses": final_cache.misses,
            "hit_rate": final_cache.hit_rate(),
        }),
        "speedup": speedup,
        "reports_identical": serde_json::json!({
            "snapshot_vs_cold": snap_equal,
            "striped_vs_serial": striped_equal,
            "stealing_vs_serial": stealing_equal,
        }),
        "scheduler": serde_json::to_value(&sched).expect("stats serialize"),
    });
    let body = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&a.out, body) {
        eprintln!("failed to write {}: {e}", a.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", a.out);

    // Self-checking exit: equality always, speedup under --smoke (the
    // full run reports speedup but leaves judgement to the committed
    // BENCH_campaign.json).
    let mut failed = false;
    if !(snap_equal && striped_equal && stealing_equal) {
        eprintln!("campaignbench failed: engines/strategies disagree on the report");
        failed = true;
    }
    if a.smoke && speedup < 1.5 {
        eprintln!("campaignbench failed: snapshot speedup {speedup:.2}x < 1.5x");
        failed = true;
    }
    if a.smoke && cache.misses != 1 {
        eprintln!(
            "campaignbench failed: expected exactly one warm-up miss, saw {}",
            cache.misses
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
