//! `blkdump` — demonstrate the tracing pipeline end to end.
//!
//! Runs a short workload into a power fault, then prints the raw
//! `blkparse`-style event stream, the reconstructed per-IO dump (the
//! paper's modified `btt --per-io-dump`), and the latency summary.
//!
//! ```text
//! blkdump [--requests N] [--seed N]
//! ```

use std::env;
use std::process::ExitCode;

use pfault_power::FaultInjector;
use pfault_sim::storage::GIB;
use pfault_sim::{DetRng, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd};
use pfault_ssd::VendorPreset;
use pfault_trace::{analyze, parse_trace_text, BlockTracer};
use pfault_workload::{WorkloadGenerator, WorkloadSpec};

fn main() -> ExitCode {
    let mut requests = 8usize;
    let mut seed = 3u64;
    let mut it = env::args().skip(1);
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--requests", Some(v)) => match v.parse() {
                Ok(n) => requests = n,
                Err(_) => {
                    eprintln!("bad --requests '{v}' (expected a number)");
                    return ExitCode::FAILURE;
                }
            },
            ("--seed", Some(v)) => match v.parse() {
                Ok(n) => seed = n,
                Err(_) => {
                    eprintln!("bad --seed '{v}' (expected a number)");
                    return ExitCode::FAILURE;
                }
            },
            _ => {
                eprintln!("blkdump [--requests N] [--seed N]");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = DetRng::new(seed);
    let mut ssd = Ssd::new(VendorPreset::SsdA.config(), root.fork("ssd"));
    let spec = WorkloadSpec::builder().wss_bytes(8 * GIB).build();
    let mut generator = WorkloadGenerator::new(spec, root.fork("workload"));
    let mut tracer = BlockTracer::new(SectorCount::new(ssd.config().max_segment_sectors));

    let mut outstanding = 0usize;
    let mut issued = 0usize;
    while issued < requests {
        for c in ssd.drain_completions() {
            outstanding -= 1;
            if c.acked() {
                tracer.complete(c.request_id, c.sub_id, c.time);
            } else {
                tracer.error(c.request_id, c.sub_id, c.time);
            }
        }
        if outstanding == 0 {
            let p = generator.next_packet();
            let subs = tracer.queue_request(p.id, p.lba, p.sectors, p.is_write, ssd.now());
            let mut offset = 0;
            for sub in subs {
                tracer.dispatch(p.id, sub.sub_id, ssd.now());
                ssd.submit(
                    HostCommand::write(p.id, sub.sub_id, sub.lba, sub.sectors, p.payload_tag)
                        .with_payload_offset(offset),
                );
                offset += sub.sectors.get();
                outstanding += 1;
            }
            issued += 1;
        }
        if let Some(t) = ssd.next_event() {
            ssd.advance_to(t.max(ssd.now() + SimDuration::from_micros(1)));
        }
    }
    // Pull the plug with the last request possibly in flight.
    let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
    ssd.power_fail(&timeline);
    for c in ssd.drain_completions() {
        if c.acked() {
            tracer.complete(c.request_id, c.sub_id, c.time);
        } else {
            tracer.error(c.request_id, c.sub_id, c.time);
        }
    }

    let text = tracer.to_text();
    println!("== raw event stream (blkparse format) ==");
    print!("{text}");
    let round_trip = match parse_trace_text(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("internal error: own trace rendering failed to parse back: {e}");
            return ExitCode::FAILURE;
        }
    };
    if round_trip.len() != tracer.events().len() {
        eprintln!(
            "internal error: trace round-trip lost events ({} of {})",
            round_trip.len(),
            tracer.events().len()
        );
        return ExitCode::FAILURE;
    }

    let analysis_at = timeline.discharged + SimDuration::from_secs(1);
    let report = analyze(tracer.events(), SimDuration::from_secs(30), analysis_at);
    println!("\n== per-IO dump (btt --per-io-dump equivalent) ==");
    print!("{}", report.per_io_dump());

    let summary = report.summary();
    println!("\n== summary ==");
    println!(
        "{} requests: {} completed, {} incomplete at the fault",
        summary.requests,
        summary.completed,
        summary.requests - summary.completed
    );
    println!(
        "q2c mean {:.3} ms, p99 {:.3} ms",
        summary.q2c_mean_ms, summary.q2c_p99_ms
    );
    ExitCode::SUCCESS
}
