//! `blkdump` — demonstrate the tracing pipeline end to end.
//!
//! Runs a short workload into a power fault, then prints the raw
//! `blkparse`-style event stream, the reconstructed per-IO dump (the
//! paper's modified `btt --per-io-dump`), and the latency summary.
//! `--jsonl` additionally prints the block trace as one JSON object per
//! line. `--obs FILE` instead consumes a probe-bus JSONL trace (written
//! by `repro --exp campaign --trace FILE`) and summarises it.
//!
//! ```text
//! blkdump [--requests N] [--seed N] [--jsonl]
//! blkdump --obs FILE
//! ```

use std::collections::BTreeMap;
use std::env;
use std::process::ExitCode;

use pfault_power::FaultInjector;
use pfault_sim::storage::GIB;
use pfault_sim::{DetRng, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd};
use pfault_ssd::VendorPreset;
use pfault_trace::{
    analyze, parse_trace_jsonl_line, parse_trace_text, render_trace_events, BlockTracer,
};
use pfault_workload::{WorkloadGenerator, WorkloadSpec};

/// Consumes a probe-bus JSONL file: parses every line, checks sequence
/// density, and prints per-layer and per-kind event counts.
fn consume_obs(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut by_layer: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut span_us = 0u64;
    let mut lines = 0u64;
    for (i, line) in text.lines().enumerate() {
        let parsed = match pfault_obs::parse_jsonl_line(line) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{path}:{}: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        // Sequence numbers are the authoritative order: emission order.
        // Timestamps may interleave inside one pipeline drain (programs
        // on different lanes retire with different latencies), so only
        // density is checked.
        if parsed.seq != i as u64 {
            eprintln!(
                "{path}:{}: sequence hole (seq {} at line {})",
                i + 1,
                parsed.seq,
                i
            );
            return ExitCode::FAILURE;
        }
        span_us = span_us.max(parsed.time_us);
        *by_layer.entry(parsed.layer).or_insert(0) += 1;
        *by_kind.entry(parsed.event).or_insert(0) += 1;
        lines += 1;
    }
    println!("{lines} probe events over {span_us} us of simulated time, dense sequence");
    println!("== events by layer ==");
    for (layer, n) in &by_layer {
        println!("{layer}: {n}");
    }
    println!("== events by kind ==");
    for (kind, n) in &by_kind {
        println!("{kind}: {n}");
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("blkdump [--requests N] [--seed N] [--jsonl] | blkdump --obs FILE");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut requests = 8usize;
    let mut seed = 3u64;
    let mut jsonl = false;
    let mut obs_path: Option<String> = None;
    let mut it = env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jsonl" => jsonl = true,
            "--requests" => match it.next().map(|v| (v.parse(), v)) {
                Some((Ok(n), _)) => requests = n,
                Some((Err(_), v)) => {
                    eprintln!("bad --requests '{v}' (expected a number)");
                    return ExitCode::FAILURE;
                }
                None => return usage(),
            },
            "--seed" => match it.next().map(|v| (v.parse(), v)) {
                Some((Ok(n), _)) => seed = n,
                Some((Err(_), v)) => {
                    eprintln!("bad --seed '{v}' (expected a number)");
                    return ExitCode::FAILURE;
                }
                None => return usage(),
            },
            "--obs" => match it.next() {
                Some(p) => obs_path = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if let Some(path) = obs_path {
        return consume_obs(&path);
    }

    let root = DetRng::new(seed);
    let mut ssd = Ssd::new(VendorPreset::SsdA.config(), root.fork("ssd"));
    let spec = WorkloadSpec::builder().wss_bytes(8 * GIB).build();
    let mut generator = WorkloadGenerator::new(spec, root.fork("workload"));
    let mut tracer = BlockTracer::new(SectorCount::new(ssd.config().max_segment_sectors));

    let mut outstanding = 0usize;
    let mut issued = 0usize;
    while issued < requests {
        for c in ssd.drain_completions() {
            outstanding -= 1;
            if c.acked() {
                tracer.complete(c.request_id, c.sub_id, c.time);
            } else {
                tracer.error(c.request_id, c.sub_id, c.time);
            }
        }
        if outstanding == 0 {
            let p = generator.next_packet();
            let subs = tracer.queue_request(p.id, p.lba, p.sectors, p.is_write, ssd.now());
            let mut offset = 0;
            for sub in subs {
                tracer.dispatch(p.id, sub.sub_id, ssd.now());
                ssd.submit(
                    HostCommand::write(p.id, sub.sub_id, sub.lba, sub.sectors, p.payload_tag)
                        .with_payload_offset(offset),
                );
                offset += sub.sectors.get();
                outstanding += 1;
            }
            issued += 1;
        }
        if let Some(t) = ssd.next_event() {
            ssd.advance_to(t.max(ssd.now() + SimDuration::from_micros(1)));
        }
    }
    // Pull the plug with the last request possibly in flight.
    let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
    ssd.power_fail(&timeline);
    for c in ssd.drain_completions() {
        if c.acked() {
            tracer.complete(c.request_id, c.sub_id, c.time);
        } else {
            tracer.error(c.request_id, c.sub_id, c.time);
        }
    }

    let text = tracer.to_text();
    println!("== raw event stream (blkparse format) ==");
    print!("{text}");
    let round_trip = match parse_trace_text(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("internal error: own trace rendering failed to parse back: {e}");
            return ExitCode::FAILURE;
        }
    };
    if round_trip.len() != tracer.events().len() {
        eprintln!(
            "internal error: trace round-trip lost events ({} of {})",
            round_trip.len(),
            tracer.events().len()
        );
        return ExitCode::FAILURE;
    }

    if jsonl {
        println!("\n== event stream (JSONL) ==");
        let rendered = render_trace_events(tracer.events());
        print!("{rendered}");
        for (i, line) in rendered.lines().enumerate() {
            match parse_trace_jsonl_line(line) {
                Ok(e) if e == tracer.events()[i] => {}
                Ok(_) => {
                    eprintln!("internal error: JSONL line {i} round-tripped to a different event");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("internal error: own JSONL failed to parse back: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let analysis_at = timeline.discharged + SimDuration::from_secs(1);
    let report = analyze(tracer.events(), SimDuration::from_secs(30), analysis_at);
    println!("\n== per-IO dump (btt --per-io-dump equivalent) ==");
    print!("{}", report.per_io_dump());

    let summary = report.summary();
    println!("\n== summary ==");
    println!(
        "{} requests: {} completed, {} incomplete at the fault",
        summary.requests,
        summary.completed,
        summary.requests - summary.completed
    );
    println!(
        "q2c mean {:.3} ms, p99 {:.3} ms",
        summary.q2c_mean_ms, summary.q2c_p99_ms
    );
    ExitCode::SUCCESS
}
