//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale quick|paper] [--seed N] [--exp NAME] [--json FILE]
//!       [--list-exps] [--trials N] [--plan fixed:N|ci:EPS[:CONF]|split:LEVELS]
//!       [--retries N] [--checkpoint FILE]
//!       [--checkpoint-every K] [--resume] [--watchdog-ms N]
//!       [--watchdog-events N] [--threads N]
//!       [--engine auto|serial|striped|stealing] [--warmup N]
//!       [--snapshot-cache on|off]
//! repro serve [--addr A] [--spool DIR] [--workers N] [--queue N]
//!       [--heartbeat-ms N] [--io-timeout-ms N] [--checkpoint-every K]
//! repro servectl ping|submit|attach|status|metrics|shutdown
//!       [--addr A] [--job N] [--from-seq N] [--seed N] [--trials N]
//!       [--plan SPEC] [--requests N] [--warmup N] [--profile tiny|paper]
//!       [--exp NAME] [--attempts N] [--backoff-ms N] [--io-timeout-ms N]
//! ```
//!
//! Every experiment lives in the `pfault-platform` experiment registry
//! (`pfault_platform::experiments::registry`); this binary is a thin
//! driver: parse flags, look the experiment up by name, run it, print
//! its text, and collect its JSON. `--list-exps` walks the registry.
//! `--exp all` (the default) runs every registered experiment except the
//! operational modes (`campaign`, `sweep`), which must be named
//! explicitly.
//!
//! Explicitly selected experiments are self-checking: the driver exits
//! nonzero if the experiment reports check failures (for example,
//! `--exp recovery-storm` requires interrupted, resumed, and read-only
//! outcomes; `--exp fleet` requires correlated cuts to degrade MTTDL
//! below the independent baseline with bit-identical engine reductions;
//! `--exp sweep` requires a clean baseline sweep and a caught seeded
//! bug). Under `--exp all` the same checks are informational.
//!
//! `--exp campaign` runs one raw fault-injection campaign with the
//! resilience controls: per-trial watchdog budgets, deterministic
//! retries, checkpoint/resume, engine selection (`--engine`,
//! `--threads`), and warm-snapshot cloning (`--warmup`,
//! `--snapshot-cache`). Campaigns are sized by a [`PlanSpec`]:
//! `--trials N` is shorthand for `--plan fixed:N`, and
//! `--plan ci:EPS[:CONF]` runs adaptively until the Wilson interval on
//! the data-loss rate has half-width at most EPS. `--exp plan` is the
//! planner's self-checking demonstration (Extension P).

use std::env;
use std::process::ExitCode;

use pfault_bench::{ScaleArg, DEFAULT_SEED};
use pfault_platform::experiments::{all, find, EngineArg, ExperimentCtx, ExperimentOpts};
use pfault_platform::plan::PlanSpec;
use pfault_serve::{Client, Daemon, DaemonConfig, JobSpec, Request, Response};

fn main() -> ExitCode {
    let argv: Vec<String> = env::args().skip(1).collect();
    // Subcommands: `repro serve` runs the campaign daemon in the
    // foreground, `repro servectl` is its client. Everything else is
    // the classic flag-driven experiment driver.
    match argv.first().map(String::as_str) {
        Some("serve") => return run_serve(&argv[1..]),
        Some("servectl") => return run_servectl(&argv[1..]),
        _ => {}
    }
    let mut scale = ScaleArg::Quick;
    let mut seed = DEFAULT_SEED;
    let mut exp = String::from("all");
    let mut json_path: Option<String> = None;
    let mut list_exps = false;
    let mut opts = ExperimentOpts::default();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => match num_flag(&mut args, "--trials") {
                Ok(n) => opts.plan = Some(PlanSpec::fixed(n)),
                Err(code) => return code,
            },
            "--plan" => {
                let v = args.next().unwrap_or_default();
                match PlanSpec::parse(&v) {
                    Ok(spec) => opts.plan = Some(spec),
                    Err(why) => {
                        eprintln!("bad --plan '{v}': {why}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--retries" => match num_flag(&mut args, "--retries") {
                Ok(n) => opts.retries = n as u32,
                Err(code) => return code,
            },
            "--checkpoint" => opts.checkpoint = args.next().map(Into::into),
            "--checkpoint-every" => match num_flag(&mut args, "--checkpoint-every") {
                Ok(n) => opts.checkpoint_every = n,
                Err(code) => return code,
            },
            "--resume" => opts.resume = true,
            "--minimize" => opts.minimize = true,
            "--inject-crc-bug" => opts.inject_crc_bug = true,
            "--watchdog-ms" => match num_flag(&mut args, "--watchdog-ms") {
                Ok(n) => opts.watchdog_ms = Some(n),
                Err(code) => return code,
            },
            "--watchdog-events" => match num_flag(&mut args, "--watchdog-events") {
                Ok(n) => opts.watchdog_events = Some(n),
                Err(code) => return code,
            },
            "--threads" => match num_flag(&mut args, "--threads") {
                Ok(n) => opts.threads = Some(n.max(1) as usize),
                Err(code) => return code,
            },
            "--warmup" => match num_flag(&mut args, "--warmup") {
                Ok(n) => opts.warmup = Some(n as usize),
                Err(code) => return code,
            },
            "--engine" => {
                let v = args.next().unwrap_or_default();
                match EngineArg::parse(&v) {
                    Some(e) => opts.engine = e,
                    None => {
                        eprintln!("unknown engine '{v}' (auto|serial|striped|stealing)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--snapshot-cache" => {
                let v = args.next().unwrap_or_default();
                match v.as_str() {
                    "on" => opts.snapshot_cache = true,
                    "off" => opts.snapshot_cache = false,
                    _ => {
                        eprintln!("bad --snapshot-cache '{v}' (on|off)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--scale" => {
                let v = args.next().unwrap_or_default();
                match ScaleArg::parse(&v) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{v}' (quick|paper)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("bad seed '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--exp" => exp = args.next().unwrap_or_default(),
            "--json" => json_path = args.next(),
            "--metrics" => opts.metrics_path = args.next().map(Into::into),
            "--trace" => opts.trace_path = args.next().map(Into::into),
            "--list-exps" => list_exps = true,
            "--help" | "-h" => {
                println!(
                    "repro [--scale quick|paper] [--seed N] [--exp NAME] [--json FILE] \
                     [--list-exps]\n\
                     \x20     [--trials N] [--plan fixed:N|ci:EPS[:CONF]|split:LEVELS] \
                     [--retries N]\n\
                     \x20     [--checkpoint FILE] [--checkpoint-every K]\n\
                     \x20     [--resume] [--watchdog-ms N] [--watchdog-events N]\n\
                     \x20     [--minimize] [--inject-crc-bug] [--metrics FILE] [--trace FILE]\n\
                     \x20     [--threads N] [--engine auto|serial|striped|stealing] \
                     [--warmup N] [--snapshot-cache on|off]\n\
                     experiments: fig4 interval interval-nocache fig5 fig6 pattern \
                     fig7 fig8 fig9 table1 ablation-injector ablation-cache \
                     brownout wear flush recovery repeated recovery-storm fleet kv \
                     plan all campaign sweep\n\
                     fleet mode (--exp fleet, part of 'all') sweeps PSU-group size, \
                     parity depth, and outage\n\
                     correlation over an erasure-coded fleet, reporting availability, \
                     durability, and MTTDL\n\
                     kv mode (--exp kv, part of 'all') stacks a WAL'd KV store on \
                     the device and classifies every\n\
                     post-outage divergence as surfaced, masked, or silent poison, \
                     pairing CRC-verifying and\n\
                     half-applying firmware at equal seeds; the run self-checks its \
                     own class coverage\n\
                     plan mode (--exp plan, part of 'all') self-checks the adaptive \
                     planner: confidence-driven\n\
                     stopping must match a fixed-N campaign's band at >=10x fewer \
                     trials, byte-identical across\n\
                     engines and checkpoint/resume\n\
                     campaign mode (--exp campaign, not part of 'all') runs one raw \
                     campaign with watchdog budgets,\n\
                     deterministic retries, checkpoint/resume, --engine/--threads \
                     selection, and --warmup snapshot cloning;\n\
                     sized by --plan fixed:N|ci:EPS[:CONF] (--trials N = --plan \
                     fixed:N)\n\
                     sweep mode (--exp sweep, not part of 'all') cuts power at every \
                     recorded fault site and checks\n\
                     recovery invariants; --inject-crc-bug seeds the apply-before-\
                     verify bug, --minimize shrinks the repro\n\
                     serve mode (--exp serve, not part of 'all') self-checks the \
                     campaign daemon end to end:\n\
                     kill/restart resume, exactly-once streams, backpressure, and \
                     graceful drain\n\
                     subcommands: 'repro serve' runs the daemon in the foreground \
                     (--addr --spool --workers\n\
                     --queue --heartbeat-ms --io-timeout-ms --checkpoint-every); \
                     'repro servectl' drives it\n\
                     (ping|submit|attach|status|metrics|shutdown, with --addr --job \
                     --from-seq --seed --trials\n\
                     --requests --warmup --profile --attempts --backoff-ms)\n\
                     --list-exps prints every registered experiment with a one-line \
                     description"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if list_exps {
        for e in all() {
            let suffix = if e.in_all() { "" } else { "  (not part of 'all')" };
            println!("{:<18} {}{suffix}", e.name(), e.describe());
        }
        // Lives in pfault-serve (which depends on the platform, so it
        // cannot register in the platform's static registry).
        let serve = pfault_serve::experiment();
        println!(
            "{:<18} {}  (not part of 'all')",
            serve.name(),
            serve.describe()
        );
        return ExitCode::SUCCESS;
    }
    let ctx = ExperimentCtx {
        scale: scale.scale(),
        seed,
        opts,
    };
    let mut json = serde_json::Map::new();
    if exp == "all" {
        for e in all().iter().filter(|e| e.in_all()) {
            match e.run(&ctx) {
                Ok(report) => {
                    print!("{}", report.text);
                    json.insert(report.json_key.to_string(), report.json);
                    // Self-checks are informational under `all`; an
                    // explicit `--exp NAME` run enforces them below.
                }
                Err(err) => {
                    eprintln!("{} failed: {err}", e.name());
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        let e = match find(&exp) {
            Some(e) => e,
            None if exp == "serve" => pfault_serve::experiment(),
            None => {
                eprintln!("unknown experiment '{exp}'");
                return ExitCode::FAILURE;
            }
        };
        match e.run(&ctx) {
            Ok(report) => {
                print!("{}", report.text);
                if !report.check_failures.is_empty() {
                    for failure in &report.check_failures {
                        eprintln!("{failure}");
                    }
                    return ExitCode::FAILURE;
                }
                json.insert(report.json_key.to_string(), report.json);
            }
            Err(err) => {
                eprintln!("{} failed: {err}", e.name());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json_path {
        let doc = serde_json::json!({
            "paper": "Investigating Power Outage Effects on Reliability of SSDs (DATE 2018)",
            "seed": seed,
            "scale": format!("{scale:?}"),
            "reports": serde_json::Value::Object(json),
        });
        match std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serializable"),
        ) {
            Ok(()) => println!("wrote JSON reports to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Parses the numeric value of `name` from the argument stream, printing
/// a usage error (and yielding the exit code) when missing or malformed.
fn num_flag(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, ExitCode> {
    let v = args.next().unwrap_or_default();
    v.parse().map_err(|_| {
        eprintln!("bad {name} '{v}' (expected a number)");
        ExitCode::FAILURE
    })
}

/// `repro serve`: the campaign daemon in the foreground. Runs until a
/// client sends `shutdown`, then drains (in-flight jobs checkpoint, the
/// queue stays spooled, the socket closes last) and exits.
fn run_serve(argv: &[String]) -> ExitCode {
    let mut config = DaemonConfig::new("serve-spool");
    config.addr = "127.0.0.1:7077".to_string();
    let mut args = argv.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = args.next().unwrap_or_default(),
            "--spool" => config.spool_dir = args.next().unwrap_or_default().into(),
            "--workers" => match num_flag(&mut args, "--workers") {
                Ok(n) => config.workers = n.max(1) as usize,
                Err(code) => return code,
            },
            "--queue" => match num_flag(&mut args, "--queue") {
                Ok(n) => config.queue_capacity = n.max(1) as usize,
                Err(code) => return code,
            },
            "--heartbeat-ms" => match num_flag(&mut args, "--heartbeat-ms") {
                Ok(n) => config.heartbeat_ms = n,
                Err(code) => return code,
            },
            "--io-timeout-ms" => match num_flag(&mut args, "--io-timeout-ms") {
                Ok(n) => config.io_timeout_ms = n,
                Err(code) => return code,
            },
            "--checkpoint-every" => match num_flag(&mut args, "--checkpoint-every") {
                Ok(n) => config.checkpoint_every = n.max(1),
                Err(code) => return code,
            },
            other => {
                eprintln!("unknown serve argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let spool = config.spool_dir.display().to_string();
    match Daemon::start(config) {
        Ok(daemon) => {
            println!(
                "pfault-serve listening on {} (spool: {spool})",
                daemon.local_addr()
            );
            daemon.join();
            println!("drained; spool retained at {spool}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("daemon failed to start: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro servectl ACTION`: client for a running daemon, with
/// exponential backoff + deterministic jitter on connect and on a
/// `Busy` queue.
fn run_servectl(argv: &[String]) -> ExitCode {
    let Some(action) = argv.first().cloned() else {
        eprintln!("servectl needs an action: ping|submit|attach|status|metrics|shutdown");
        return ExitCode::FAILURE;
    };
    let mut addr = "127.0.0.1:7077".to_string();
    let mut job = 0u64;
    let mut from_seq = 0u64;
    let mut attempts = 5u32;
    let mut backoff_ms = 50u64;
    let mut io_timeout_ms = 5_000u64;
    let mut spec = JobSpec::tiny_campaign(DEFAULT_SEED);
    let mut args = argv[1..].iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_default(),
            "--job" => match num_flag(&mut args, "--job") {
                Ok(n) => job = n,
                Err(code) => return code,
            },
            "--from-seq" => match num_flag(&mut args, "--from-seq") {
                Ok(n) => from_seq = n,
                Err(code) => return code,
            },
            "--attempts" => match num_flag(&mut args, "--attempts") {
                Ok(n) => attempts = n.max(1) as u32,
                Err(code) => return code,
            },
            "--backoff-ms" => match num_flag(&mut args, "--backoff-ms") {
                Ok(n) => backoff_ms = n.max(1),
                Err(code) => return code,
            },
            "--io-timeout-ms" => match num_flag(&mut args, "--io-timeout-ms") {
                Ok(n) => io_timeout_ms = n,
                Err(code) => return code,
            },
            "--seed" => match num_flag(&mut args, "--seed") {
                Ok(n) => spec.seed = n,
                Err(code) => return code,
            },
            "--trials" => match num_flag(&mut args, "--trials") {
                Ok(n) => spec.trials = n,
                Err(code) => return code,
            },
            "--plan" => {
                let v = args.next().unwrap_or_default();
                match PlanSpec::parse(&v) {
                    Ok(plan) => spec.plan = Some(plan),
                    Err(why) => {
                        eprintln!("bad --plan '{v}': {why}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--requests" => match num_flag(&mut args, "--requests") {
                Ok(n) => spec.requests_per_trial = n,
                Err(code) => return code,
            },
            "--warmup" => match num_flag(&mut args, "--warmup") {
                Ok(n) => spec.warmup = n,
                Err(code) => return code,
            },
            "--checkpoint-every" => match num_flag(&mut args, "--checkpoint-every") {
                Ok(n) => spec.checkpoint_every = n,
                Err(code) => return code,
            },
            "--profile" => spec.profile = args.next().unwrap_or_default(),
            "--exp" => spec.exp = args.next().unwrap_or_default(),
            other => {
                eprintln!("unknown servectl argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let client = Client::connect_backoff(&addr, io_timeout_ms, attempts, backoff_ms, spec.seed);
    let mut client = match client {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match action.as_str() {
        "ping" => client.call(&Request::Ping).map(|r| {
            println!("{r:?}");
        }),
        "submit" => client
            .submit_backoff(&spec, attempts, backoff_ms, spec.seed)
            .map(|id| {
                println!("accepted job {id}");
            }),
        "attach" => client.attach(job, from_seq).map(|stream| {
            use std::io::Write as _;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for event in stream {
                match event {
                    Ok(e) => match serde_json::to_string(&e) {
                        Ok(line) => {
                            // A closed downstream pipe (`| head`) ends
                            // the stream, it doesn't crash the client.
                            if writeln!(out, "{line}").is_err() {
                                break;
                            }
                        }
                        Err(err) => eprintln!("unserializable event: {err}"),
                    },
                    Err(e) => {
                        eprintln!("stream broke: {e}");
                        break;
                    }
                }
            }
        }),
        "status" => client.call(&Request::Status).map(|r| {
            if let Response::JobList { jobs } = r {
                println!("job  state            completed/trials  events  cache hit/miss");
                for j in jobs {
                    println!(
                        "{:<4} {:<16} {:>9}/{:<6} {:>6}  {}/{}{}",
                        j.job,
                        j.state,
                        j.completed,
                        j.trials,
                        j.events,
                        j.cache_hits,
                        j.cache_misses,
                        if j.convergence.is_empty() {
                            String::new()
                        } else {
                            format!("  [{}]", j.convergence)
                        }
                    );
                }
            } else {
                println!("{r:?}");
            }
        }),
        "metrics" => client.call(&Request::Metrics { job }).map(|r| {
            if let Response::MetricsSnapshot { jsonl, .. } = r {
                print!("{jsonl}");
            } else {
                println!("{r:?}");
            }
        }),
        "shutdown" => client.call(&Request::Shutdown).map(|r| {
            println!("{r:?}");
        }),
        other => {
            eprintln!("unknown action '{other}' (ping|submit|attach|status|metrics|shutdown)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
