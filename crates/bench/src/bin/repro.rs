//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale quick|paper] [--seed N] [--exp NAME] [--json FILE]
//! ```
//!
//! Experiments: `fig4` `interval` `interval-nocache` `fig5` `fig6`
//! `pattern` `fig7` `fig8` `fig9` `table1` `ablation-injector`
//! `ablation-cache` `brownout`, or `all` (default). `--json FILE` also
//! writes every produced report as machine-readable JSON.

use std::env;
use std::process::ExitCode;

use pfault_bench::{ScaleArg, DEFAULT_SEED};
use pfault_platform::experiments::wss;
use pfault_platform::experiments::{
    access_pattern, brownout, cache_ablation, flush, injector_ablation, interval, iops, psu,
    recovery, repeated, request_size, request_type, sequence, vendors, wear,
};

fn main() -> ExitCode {
    let mut scale = ScaleArg::Quick;
    let mut seed = DEFAULT_SEED;
    let mut exp = String::from("all");
    let mut json_path: Option<String> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                match ScaleArg::parse(&v) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{v}' (quick|paper)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("bad seed '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--exp" => exp = args.next().unwrap_or_default(),
            "--json" => json_path = args.next(),
            "--help" | "-h" => {
                println!(
                    "repro [--scale quick|paper] [--seed N] [--exp NAME] [--json FILE]\n\
                     experiments: fig4 interval interval-nocache fig5 fig6 pattern \
                     fig7 fig8 fig9 table1 ablation-injector ablation-cache \
                     brownout wear flush recovery repeated all"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let s = scale.scale();
    let all = exp == "all";
    let mut matched = false;
    let mut json = serde_json::Map::new();
    let record = |json: &mut serde_json::Map<String, serde_json::Value>,
                  key: &str,
                  value: serde_json::Value| {
        json.insert(key.to_string(), value);
    };

    if all || exp == "fig4" {
        matched = true;
        let report = psu::run();
        record(
            &mut json,
            "fig4",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("== Fig 4: PSU discharge ==");
        println!("{}", report.table().render());
        println!("Fig 4a series (no load):");
        println!("{}", psu::PsuReport::curve_table(&report.unloaded).render());
        println!("Fig 4b series (one SSD):");
        println!("{}", psu::PsuReport::curve_table(&report.loaded).render());
    }
    if all || exp == "interval" {
        matched = true;
        let report = interval::run(s, seed, true);
        record(
            &mut json,
            "interval",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("== §IV-A: interval after completion (cache enabled) ==");
        println!("{}", report.table().render());
        if let Some(max) = report.max_delay_with_failure_ms() {
            println!("max delay with observed failure: {max} ms (paper: ~700 ms)\n");
        }
    }
    if all || exp == "interval-nocache" {
        matched = true;
        let report = interval::run(s, seed ^ 1, false);
        record(
            &mut json,
            "interval_nocache",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("== §IV-A: interval after completion (cache DISABLED) ==");
        println!("{}", report.table().render());
        if let Some(max) = report.max_delay_with_failure_ms() {
            println!(
                "max delay with observed failure: {max} ms (failures persist without cache)\n"
            );
        }
    }
    if all || exp == "fig5" {
        matched = true;
        println!("== Fig 5: request type (read %) ==");
        let report = request_type::run(s, seed);
        record(
            &mut json,
            "fig5",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!("{}", report.chart().render(50));
    }
    if all || exp == "fig6" {
        matched = true;
        println!("== Fig 6: working-set size ==");
        let points: Option<&[u64]> = if scale == ScaleArg::Paper {
            None
        } else {
            Some(&[1, 20, 50, 90])
        };
        let report = wss::run(s, seed, points);
        record(
            &mut json,
            "fig6",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "max/min per-fault spread: {:.2} (paper: flat)\n",
            report.spread_ratio()
        );
    }
    if all || exp == "pattern" {
        matched = true;
        println!("== §IV-D: access pattern ==");
        let report = access_pattern::run(s, seed);
        record(
            &mut json,
            "pattern",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "sequential excess: {:+.1}% (paper: ~+14%)\n",
            report.sequential_excess_pct()
        );
    }
    if all || exp == "fig7" {
        matched = true;
        println!("== Fig 7: request size ==");
        let report = request_size::run(s, seed);
        record(
            &mut json,
            "fig7",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!("{}", report.chart().render(50));
    }
    if all || exp == "fig8" {
        matched = true;
        println!("== Fig 8: requested IOPS ==");
        let report = iops::run(s, seed);
        record(
            &mut json,
            "fig8",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "saturation: {:.0} responded IOPS (paper: ~6900)\n",
            report.saturation_iops()
        );
    }
    if all || exp == "fig9" {
        matched = true;
        println!("== Fig 9: access sequences ==");
        let report = sequence::run(s, seed);
        record(
            &mut json,
            "fig9",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!("{}", report.chart().render(50));
    }
    if all || exp == "table1" {
        matched = true;
        println!("== Table I: vendor drives ==");
        let report = vendors::run(s, seed);
        record(
            &mut json,
            "table1",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }
    if all || exp == "ablation-injector" {
        matched = true;
        println!("== Ablation: discharge ramp vs transistor cut ==");
        let report = injector_ablation::run(s, seed);
        record(
            &mut json,
            "ablation_injector",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }
    if all || exp == "ablation-cache" {
        matched = true;
        println!("== Ablation: cache on/off/supercap ==");
        let report = cache_ablation::run(s, seed);
        record(
            &mut json,
            "ablation_cache",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }

    if all || exp == "brownout" {
        matched = true;
        println!("== Extension: transient sag (brownout) depth sweep ==");
        let report = brownout::run(s, seed);
        record(
            &mut json,
            "brownout",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }

    if all || exp == "wear" {
        matched = true;
        println!("== Extension: device age (P/E cycles) vs fault damage ==");
        let report = wear::run(s, seed);
        record(
            &mut json,
            "wear",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }

    if all || exp == "flush" {
        matched = true;
        println!("== Extension: FLUSH barrier frequency ==");
        let report = flush::run(s, seed);
        record(
            &mut json,
            "flush",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }

    if all || exp == "recovery" {
        matched = true;
        println!("== Extension: recovery policy (journal replay vs full scan) ==");
        let report = recovery::run(s, seed);
        record(
            &mut json,
            "recovery",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "full-scan recovery reduces loss by {:.0}%\n",
            report.scan_reduction_pct()
        );
    }

    if all || exp == "repeated" {
        matched = true;
        println!("== Extension: consecutive outages on one device ==");
        let report = repeated::run(s, seed);
        record(
            &mut json,
            "repeated",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "mean fresh loss per cycle {:.1}; requests that had survived an \
             earlier outage and were newly lost later: {}\n",
            report.mean_fresh_lost(),
            report.total_old_newly_lost()
        );
    }

    if !matched {
        eprintln!("unknown experiment '{exp}'");
        return ExitCode::FAILURE;
    }
    if let Some(path) = json_path {
        let doc = serde_json::json!({
            "paper": "Investigating Power Outage Effects on Reliability of SSDs (DATE 2018)",
            "seed": seed,
            "scale": format!("{scale:?}"),
            "reports": serde_json::Value::Object(json),
        });
        match std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serializable"),
        ) {
            Ok(()) => println!("wrote JSON reports to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
