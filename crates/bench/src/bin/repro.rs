//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale quick|paper] [--seed N] [--exp NAME] [--json FILE]
//!       [--trials N] [--retries N] [--checkpoint FILE]
//!       [--checkpoint-every K] [--resume] [--watchdog-ms N]
//!       [--watchdog-events N]
//! ```
//!
//! Experiments: `fig4` `interval` `interval-nocache` `fig5` `fig6`
//! `pattern` `fig7` `fig8` `fig9` `table1` `ablation-injector`
//! `ablation-cache` `brownout` `recovery-storm`, or `all` (default).
//! `--json FILE` also writes every produced report as machine-readable
//! JSON. An explicit `--exp recovery-storm` run is self-checking: it
//! exits nonzero unless the storm interrupted at least one recovery
//! stage, resumed at least one interrupted session, and degraded at
//! least one device to read-only.
//!
//! `--exp campaign` (not part of `all`) runs one raw fault-injection
//! campaign with the resilience controls: per-trial watchdog budgets,
//! deterministic retries of failing trials, and checkpoint/resume.
//!
//! `--exp sweep` (not part of `all`) runs the systematic fault-space
//! sweep: a fault-free census enumerates every named fault site, then one
//! trial per (site, occurrence, phase) cuts power at that exact instant
//! and checks the recovery invariants. `--inject-crc-bug` disables the
//! firmware's batch-CRC verification (the apply-before-verify bug) so the
//! sweeper has something to find; `--minimize` shrinks the first
//! violation's workload to a minimal reproducer.

use std::env;
use std::process::ExitCode;

use pfault_bench::{ScaleArg, DEFAULT_SEED};
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::experiments::wss;
use pfault_platform::experiments::{
    access_pattern, brownout, cache_ablation, flush, injector_ablation, interval, iops, psu,
    recovery, repeated, request_size, request_type, sequence, storm, vendors, wear,
};
use pfault_platform::platform::TestPlatform;
use pfault_platform::{SweepConfig, Sweeper, ViolationKind, Watchdog};

fn main() -> ExitCode {
    let mut scale = ScaleArg::Quick;
    let mut seed = DEFAULT_SEED;
    let mut exp = String::from("all");
    let mut json_path: Option<String> = None;
    let mut trials: Option<usize> = None;
    let mut retries: u32 = 0;
    let mut checkpoint: Option<String> = None;
    let mut checkpoint_every: u64 = 25;
    let mut resume = false;
    let mut watchdog_ms: Option<u64> = None;
    let mut watchdog_events: Option<u64> = None;
    let mut minimize = false;
    let mut inject_crc_bug = false;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => match num_flag(&mut args, "--trials") {
                Ok(n) => trials = Some(n as usize),
                Err(code) => return code,
            },
            "--retries" => match num_flag(&mut args, "--retries") {
                Ok(n) => retries = n as u32,
                Err(code) => return code,
            },
            "--checkpoint" => checkpoint = args.next(),
            "--checkpoint-every" => match num_flag(&mut args, "--checkpoint-every") {
                Ok(n) => checkpoint_every = n,
                Err(code) => return code,
            },
            "--resume" => resume = true,
            "--minimize" => minimize = true,
            "--inject-crc-bug" => inject_crc_bug = true,
            "--watchdog-ms" => match num_flag(&mut args, "--watchdog-ms") {
                Ok(n) => watchdog_ms = Some(n),
                Err(code) => return code,
            },
            "--watchdog-events" => match num_flag(&mut args, "--watchdog-events") {
                Ok(n) => watchdog_events = Some(n),
                Err(code) => return code,
            },
            "--scale" => {
                let v = args.next().unwrap_or_default();
                match ScaleArg::parse(&v) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{v}' (quick|paper)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("bad seed '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--exp" => exp = args.next().unwrap_or_default(),
            "--json" => json_path = args.next(),
            "--metrics" => metrics_path = args.next(),
            "--trace" => trace_path = args.next(),
            "--help" | "-h" => {
                println!(
                    "repro [--scale quick|paper] [--seed N] [--exp NAME] [--json FILE]\n\
                     \x20     [--trials N] [--retries N] [--checkpoint FILE] \
                     [--checkpoint-every K]\n\
                     \x20     [--resume] [--watchdog-ms N] [--watchdog-events N]\n\
                     \x20     [--minimize] [--inject-crc-bug] [--metrics FILE] [--trace FILE]\n\
                     experiments: fig4 interval interval-nocache fig5 fig6 pattern \
                     fig7 fig8 fig9 table1 ablation-injector ablation-cache \
                     brownout wear flush recovery repeated recovery-storm all \
                     campaign sweep\n\
                     campaign mode (--exp campaign, not part of 'all') runs one raw \
                     campaign with watchdog budgets,\n\
                     deterministic retries, and checkpoint/resume; the other flags \
                     only apply there\n\
                     sweep mode (--exp sweep, not part of 'all') cuts power at every \
                     recorded fault site and checks\n\
                     recovery invariants; --inject-crc-bug seeds the apply-before-\
                     verify bug, --minimize shrinks the repro"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let s = scale.scale();
    let all = exp == "all";
    let mut matched = false;
    let mut json = serde_json::Map::new();
    let record = |json: &mut serde_json::Map<String, serde_json::Value>,
                  key: &str,
                  value: serde_json::Value| {
        json.insert(key.to_string(), value);
    };

    if all || exp == "fig4" {
        matched = true;
        let report = psu::run();
        record(
            &mut json,
            "fig4",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("== Fig 4: PSU discharge ==");
        println!("{}", report.table().render());
        println!("Fig 4a series (no load):");
        println!("{}", psu::PsuReport::curve_table(&report.unloaded).render());
        println!("Fig 4b series (one SSD):");
        println!("{}", psu::PsuReport::curve_table(&report.loaded).render());
    }
    if all || exp == "interval" {
        matched = true;
        let report = interval::run(s, seed, true);
        record(
            &mut json,
            "interval",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("== §IV-A: interval after completion (cache enabled) ==");
        println!("{}", report.table().render());
        if let Some(max) = report.max_delay_with_failure_ms() {
            println!("max delay with observed failure: {max} ms (paper: ~700 ms)\n");
        }
    }
    if all || exp == "interval-nocache" {
        matched = true;
        let report = interval::run(s, seed ^ 1, false);
        record(
            &mut json,
            "interval_nocache",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("== §IV-A: interval after completion (cache DISABLED) ==");
        println!("{}", report.table().render());
        if let Some(max) = report.max_delay_with_failure_ms() {
            println!(
                "max delay with observed failure: {max} ms (failures persist without cache)\n"
            );
        }
    }
    if all || exp == "fig5" {
        matched = true;
        println!("== Fig 5: request type (read %) ==");
        let report = request_type::run(s, seed);
        record(
            &mut json,
            "fig5",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!("{}", report.chart().render(50));
    }
    if all || exp == "fig6" {
        matched = true;
        println!("== Fig 6: working-set size ==");
        let points: Option<&[u64]> = if scale == ScaleArg::Paper {
            None
        } else {
            Some(&[1, 20, 50, 90])
        };
        let report = wss::run(s, seed, points);
        record(
            &mut json,
            "fig6",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "max/min per-fault spread: {:.2} (paper: flat)\n",
            report.spread_ratio()
        );
    }
    if all || exp == "pattern" {
        matched = true;
        println!("== §IV-D: access pattern ==");
        let report = access_pattern::run(s, seed);
        record(
            &mut json,
            "pattern",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "sequential excess: {:+.1}% (paper: ~+14%)\n",
            report.sequential_excess_pct()
        );
    }
    if all || exp == "fig7" {
        matched = true;
        println!("== Fig 7: request size ==");
        let report = request_size::run(s, seed);
        record(
            &mut json,
            "fig7",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!("{}", report.chart().render(50));
    }
    if all || exp == "fig8" {
        matched = true;
        println!("== Fig 8: requested IOPS ==");
        let report = iops::run(s, seed);
        record(
            &mut json,
            "fig8",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "saturation: {:.0} responded IOPS (paper: ~6900)\n",
            report.saturation_iops()
        );
    }
    if all || exp == "fig9" {
        matched = true;
        println!("== Fig 9: access sequences ==");
        let report = sequence::run(s, seed);
        record(
            &mut json,
            "fig9",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!("{}", report.chart().render(50));
    }
    if all || exp == "table1" {
        matched = true;
        println!("== Table I: vendor drives ==");
        let report = vendors::run(s, seed);
        record(
            &mut json,
            "table1",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }
    if all || exp == "ablation-injector" {
        matched = true;
        println!("== Ablation: discharge ramp vs transistor cut ==");
        let report = injector_ablation::run(s, seed);
        record(
            &mut json,
            "ablation_injector",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }
    if all || exp == "ablation-cache" {
        matched = true;
        println!("== Ablation: cache on/off/supercap ==");
        let report = cache_ablation::run(s, seed);
        record(
            &mut json,
            "ablation_cache",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }

    if all || exp == "brownout" {
        matched = true;
        println!("== Extension: transient sag (brownout) depth sweep ==");
        let report = brownout::run(s, seed);
        record(
            &mut json,
            "brownout",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }

    if all || exp == "wear" {
        matched = true;
        println!("== Extension: device age (P/E cycles) vs fault damage ==");
        let report = wear::run(s, seed);
        record(
            &mut json,
            "wear",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }

    if all || exp == "flush" {
        matched = true;
        println!("== Extension: FLUSH barrier frequency ==");
        let report = flush::run(s, seed);
        record(
            &mut json,
            "flush",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
    }

    if all || exp == "recovery" {
        matched = true;
        println!("== Extension: recovery policy (journal replay vs full scan) ==");
        let report = recovery::run(s, seed);
        record(
            &mut json,
            "recovery",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "full-scan recovery reduces loss by {:.0}%\n",
            report.scan_reduction_pct()
        );
    }

    if all || exp == "repeated" {
        matched = true;
        println!("== Extension: consecutive outages on one device ==");
        let report = repeated::run(s, seed);
        record(
            &mut json,
            "repeated",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "mean fresh loss per cycle {:.1}; requests that had survived an \
             earlier outage and were newly lost later: {}\n",
            report.mean_fresh_lost(),
            report.total_old_newly_lost()
        );
    }

    if all || exp == "recovery-storm" {
        matched = true;
        println!("== Extension J: power cuts during recovery itself ==");
        let report = storm::run(s, seed);
        record(
            &mut json,
            "recovery_storm",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("{}", report.table().render());
        println!(
            "interrupted stages {}, resumed mounts {}, read-only devices {}\n",
            report.total_interrupted(),
            report.total_resumed(),
            report.total_read_only()
        );
        if exp == "recovery-storm" {
            // Self-checking smoke: an explicit storm run must actually
            // exercise the mechanistic pipeline end to end — at least one
            // recovery cut mid-stage, at least one mount that resumed the
            // interrupted session, and at least one device that degraded
            // to read-only instead of bricking.
            if report.total_interrupted() == 0 {
                eprintln!("recovery-storm smoke failed: no recovery stage was interrupted");
                return ExitCode::FAILURE;
            }
            if report.total_resumed() == 0 {
                eprintln!("recovery-storm smoke failed: no interrupted recovery resumed");
                return ExitCode::FAILURE;
            }
            if report.total_read_only() == 0 {
                eprintln!("recovery-storm smoke failed: no device degraded to read-only");
                return ExitCode::FAILURE;
            }
            let calm = &report.rows[0];
            if calm.interrupted_stages != 0 {
                eprintln!("recovery-storm smoke failed: cut rate 0.0 must never interrupt");
                return ExitCode::FAILURE;
            }
        }
    }

    if exp == "campaign" {
        matched = true;
        let mut config = CampaignConfig::paper_default();
        config.trials = trials.unwrap_or(s.faults_per_point);
        config.requests_per_trial = s.requests_per_trial;
        if metrics_path.is_some() || trace_path.is_some() {
            config.trial.obs = true;
        }
        if watchdog_ms.is_some() || watchdog_events.is_some() {
            config.trial.watchdog = Watchdog {
                max_sim_time_us: watchdog_ms.map(|ms| ms * 1_000),
                max_events: watchdog_events,
            };
        }
        let mut campaign = Campaign::new(config, seed).with_retries(retries);
        if let Some(path) = &checkpoint {
            campaign = campaign.with_checkpoint(path, checkpoint_every);
        }
        let result = match (&checkpoint, resume) {
            (Some(path), true) => campaign.resume_from(path),
            (None, true) => {
                eprintln!("--resume needs --checkpoint FILE to resume from");
                return ExitCode::FAILURE;
            }
            _ => campaign.run_checked(),
        };
        let report = match result {
            Ok(report) => report,
            Err(e) => {
                eprintln!("campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        record(
            &mut json,
            "campaign",
            serde_json::to_value(&report).expect("serializable"),
        );
        println!("== Campaign: {} fault injections ==", report.faults);
        println!(
            "requests: {} issued, {} completed",
            report.requests_issued, report.requests_completed
        );
        println!(
            "failures: {} data, {} FWA, {} IO errors, {} bricked devices",
            report.counts.data_failures,
            report.counts.fwa,
            report.counts.io_errors,
            report.counts.bricked_devices
        );
        let f = &report.failures;
        if f.total_failed() > 0 || f.retries > 0 {
            println!(
                "trials without an outcome: panicked {:?}, watchdog {:?}, bricked {:?} \
                 ({} retry attempts spent)",
                f.panicked, f.watchdog_expired, f.bricked, f.retries
            );
        } else {
            println!("all trials produced an outcome (no retries needed)");
        }
        if let Some(path) = &metrics_path {
            // Per-failure-class probe telemetry. Self-checking: an
            // obs-enabled campaign that observed no trial, or produced an
            // unclassified aggregate, is a bug worth a nonzero exit.
            if report.obs.is_empty() || report.obs.by_class.is_empty() {
                eprintln!("obs smoke failed: campaign produced no telemetry");
                return ExitCode::FAILURE;
            }
            let doc = serde_json::to_value(&report.obs).expect("serializable");
            if let Err(e) = std::fs::write(
                path,
                serde_json::to_string_pretty(&doc).expect("serializable"),
            ) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote metrics ({} observed trials, classes: {}) to {path}",
                report.obs.trials_observed,
                report
                    .obs
                    .by_class
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        if let Some(path) = &trace_path {
            // One representative obs trial (the campaign seed itself)
            // rendered as probe JSONL. Deterministic: same seed, same
            // bytes.
            let platform = TestPlatform::new(config.trial);
            let outcome = match platform.run_trial(seed) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("trace trial failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let jsonl = pfault_obs::render_records(&outcome.probe_records);
            // Self-check: every rendered line must parse back, with dense
            // sequence numbers.
            for (i, line) in jsonl.lines().enumerate() {
                match pfault_obs::parse_jsonl_line(line) {
                    Ok(parsed) if parsed.seq == i as u64 => {}
                    Ok(parsed) => {
                        eprintln!(
                            "obs smoke failed: line {i} has seq {} (expected {i})",
                            parsed.seq
                        );
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("obs smoke failed: line {i} does not parse back: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote probe trace ({} events) to {path}",
                outcome.probe_records.len()
            );
        }
    }

    if exp == "sweep" {
        matched = true;
        let mut config = SweepConfig::smoke(seed);
        if inject_crc_bug {
            config.ssd.ftl.verify_batch_crc = false;
        }
        let sweeper = Sweeper::new(config);
        let report = match sweeper.run() {
            Ok(report) => report,
            Err(e) => {
                eprintln!("sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "== Sweep: {} site spans, {} boundary trials ==",
            report.sites_censused, report.trials
        );
        if report.violations.is_empty() {
            println!("no invariant violations (recovery is torn-write safe)");
        }
        for v in &report.violations {
            println!(
                "violation: {} at {}#{} ({}) t={}us — {}",
                v.kind.name(),
                v.site.name(),
                v.occurrence,
                v.phase.name(),
                v.cut_us,
                v.detail
            );
        }
        if report.failures.total_failed() > 0 {
            println!(
                "trials without a verdict: {} (ledger {:?})",
                report.failures.total_failed(),
                report.failures
            );
        }
        record(
            &mut json,
            "sweep",
            serde_json::json!({
                "sites_censused": report.sites_censused,
                "trials": report.trials,
                "failed_trials": report.failures.total_failed(),
                "violations": report.violations.iter().map(|v| serde_json::json!({
                    "kind": v.kind.name(),
                    "site": v.site.name(),
                    "occurrence": v.occurrence,
                    "phase": v.phase.name(),
                    "cut_us": v.cut_us,
                    "detail": v.detail,
                })).collect::<Vec<_>>(),
            }),
        );
        // Self-checking exit status: the clean sweep must BE clean, the
        // seeded bug must be caught, and nothing may go unverified.
        if report.failures.total_failed() > 0 {
            eprintln!("sweep smoke failed: some boundary trials produced no verdict");
            return ExitCode::FAILURE;
        }
        if inject_crc_bug {
            let caught = report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::TornBatchHalfApplied);
            if !caught {
                eprintln!("sweep smoke failed: seeded CRC bug was not caught");
                return ExitCode::FAILURE;
            }
        } else if !report.violations.is_empty() {
            eprintln!("sweep smoke failed: baseline firmware must sweep clean");
            return ExitCode::FAILURE;
        }
        if minimize {
            if let Some(kind) = report.violations.first().map(|v| v.kind) {
                match sweeper.minimize(kind) {
                    Ok(Some(repro)) => {
                        println!("minimal repro ({} ops):", repro.ops.len());
                        for op in &repro.ops {
                            println!("  {op:?}");
                        }
                        let v = &repro.violation;
                        println!(
                            "  fault: {} occurrence {} ({}) at t={}us -> {}",
                            v.site.name(),
                            v.occurrence,
                            v.phase.name(),
                            v.cut_us,
                            v.kind.name()
                        );
                        if inject_crc_bug && repro.ops.len() > 3 {
                            eprintln!("sweep smoke failed: repro did not shrink below 4 ops");
                            return ExitCode::FAILURE;
                        }
                    }
                    Ok(None) => {
                        eprintln!("minimizer could not reproduce the violation");
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("minimize failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                println!("nothing to minimize: sweep found no violations");
            }
        }
    }

    if !matched {
        eprintln!("unknown experiment '{exp}'");
        return ExitCode::FAILURE;
    }
    if let Some(path) = json_path {
        let doc = serde_json::json!({
            "paper": "Investigating Power Outage Effects on Reliability of SSDs (DATE 2018)",
            "seed": seed,
            "scale": format!("{scale:?}"),
            "reports": serde_json::Value::Object(json),
        });
        match std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serializable"),
        ) {
            Ok(()) => println!("wrote JSON reports to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Parses the numeric value of `name` from the argument stream, printing
/// a usage error (and yielding the exit code) when missing or malformed.
fn num_flag(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, ExitCode> {
    let v = args.next().unwrap_or_default();
    v.parse().map_err(|_| {
        eprintln!("bad {name} '{v}' (expected a number)");
        ExitCode::FAILURE
    })
}
