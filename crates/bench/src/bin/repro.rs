//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale quick|paper] [--seed N] [--exp NAME] [--json FILE]
//!       [--list-exps] [--trials N] [--retries N] [--checkpoint FILE]
//!       [--checkpoint-every K] [--resume] [--watchdog-ms N]
//!       [--watchdog-events N] [--threads N]
//!       [--engine auto|serial|striped|stealing] [--warmup N]
//!       [--snapshot-cache on|off]
//! ```
//!
//! Every experiment lives in the `pfault-platform` experiment registry
//! (`pfault_platform::experiments::registry`); this binary is a thin
//! driver: parse flags, look the experiment up by name, run it, print
//! its text, and collect its JSON. `--list-exps` walks the registry.
//! `--exp all` (the default) runs every registered experiment except the
//! operational modes (`campaign`, `sweep`), which must be named
//! explicitly.
//!
//! Explicitly selected experiments are self-checking: the driver exits
//! nonzero if the experiment reports check failures (for example,
//! `--exp recovery-storm` requires interrupted, resumed, and read-only
//! outcomes; `--exp fleet` requires correlated cuts to degrade MTTDL
//! below the independent baseline with bit-identical engine reductions;
//! `--exp sweep` requires a clean baseline sweep and a caught seeded
//! bug). Under `--exp all` the same checks are informational.
//!
//! `--exp campaign` runs one raw fault-injection campaign with the
//! resilience controls: per-trial watchdog budgets, deterministic
//! retries, checkpoint/resume, engine selection (`--engine`,
//! `--threads`), and warm-snapshot cloning (`--warmup`,
//! `--snapshot-cache`).

use std::env;
use std::process::ExitCode;

use pfault_bench::{ScaleArg, DEFAULT_SEED};
use pfault_platform::experiments::{all, find, EngineArg, ExperimentCtx, ExperimentOpts};

fn main() -> ExitCode {
    let mut scale = ScaleArg::Quick;
    let mut seed = DEFAULT_SEED;
    let mut exp = String::from("all");
    let mut json_path: Option<String> = None;
    let mut list_exps = false;
    let mut opts = ExperimentOpts::default();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => match num_flag(&mut args, "--trials") {
                Ok(n) => opts.trials = Some(n as usize),
                Err(code) => return code,
            },
            "--retries" => match num_flag(&mut args, "--retries") {
                Ok(n) => opts.retries = n as u32,
                Err(code) => return code,
            },
            "--checkpoint" => opts.checkpoint = args.next().map(Into::into),
            "--checkpoint-every" => match num_flag(&mut args, "--checkpoint-every") {
                Ok(n) => opts.checkpoint_every = n,
                Err(code) => return code,
            },
            "--resume" => opts.resume = true,
            "--minimize" => opts.minimize = true,
            "--inject-crc-bug" => opts.inject_crc_bug = true,
            "--watchdog-ms" => match num_flag(&mut args, "--watchdog-ms") {
                Ok(n) => opts.watchdog_ms = Some(n),
                Err(code) => return code,
            },
            "--watchdog-events" => match num_flag(&mut args, "--watchdog-events") {
                Ok(n) => opts.watchdog_events = Some(n),
                Err(code) => return code,
            },
            "--threads" => match num_flag(&mut args, "--threads") {
                Ok(n) => opts.threads = Some(n.max(1) as usize),
                Err(code) => return code,
            },
            "--warmup" => match num_flag(&mut args, "--warmup") {
                Ok(n) => opts.warmup = Some(n as usize),
                Err(code) => return code,
            },
            "--engine" => {
                let v = args.next().unwrap_or_default();
                match EngineArg::parse(&v) {
                    Some(e) => opts.engine = e,
                    None => {
                        eprintln!("unknown engine '{v}' (auto|serial|striped|stealing)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--snapshot-cache" => {
                let v = args.next().unwrap_or_default();
                match v.as_str() {
                    "on" => opts.snapshot_cache = true,
                    "off" => opts.snapshot_cache = false,
                    _ => {
                        eprintln!("bad --snapshot-cache '{v}' (on|off)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--scale" => {
                let v = args.next().unwrap_or_default();
                match ScaleArg::parse(&v) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{v}' (quick|paper)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("bad seed '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--exp" => exp = args.next().unwrap_or_default(),
            "--json" => json_path = args.next(),
            "--metrics" => opts.metrics_path = args.next().map(Into::into),
            "--trace" => opts.trace_path = args.next().map(Into::into),
            "--list-exps" => list_exps = true,
            "--help" | "-h" => {
                println!(
                    "repro [--scale quick|paper] [--seed N] [--exp NAME] [--json FILE] \
                     [--list-exps]\n\
                     \x20     [--trials N] [--retries N] [--checkpoint FILE] \
                     [--checkpoint-every K]\n\
                     \x20     [--resume] [--watchdog-ms N] [--watchdog-events N]\n\
                     \x20     [--minimize] [--inject-crc-bug] [--metrics FILE] [--trace FILE]\n\
                     \x20     [--threads N] [--engine auto|serial|striped|stealing] \
                     [--warmup N] [--snapshot-cache on|off]\n\
                     experiments: fig4 interval interval-nocache fig5 fig6 pattern \
                     fig7 fig8 fig9 table1 ablation-injector ablation-cache \
                     brownout wear flush recovery repeated recovery-storm fleet kv \
                     all campaign sweep\n\
                     fleet mode (--exp fleet, part of 'all') sweeps PSU-group size, \
                     parity depth, and outage\n\
                     correlation over an erasure-coded fleet, reporting availability, \
                     durability, and MTTDL\n\
                     kv mode (--exp kv, part of 'all') stacks a WAL'd KV store on \
                     the device and classifies every\n\
                     post-outage divergence as surfaced, masked, or silent poison, \
                     pairing CRC-verifying and\n\
                     half-applying firmware at equal seeds; the run self-checks its \
                     own class coverage\n\
                     campaign mode (--exp campaign, not part of 'all') runs one raw \
                     campaign with watchdog budgets,\n\
                     deterministic retries, checkpoint/resume, --engine/--threads \
                     selection, and --warmup snapshot cloning\n\
                     sweep mode (--exp sweep, not part of 'all') cuts power at every \
                     recorded fault site and checks\n\
                     recovery invariants; --inject-crc-bug seeds the apply-before-\
                     verify bug, --minimize shrinks the repro\n\
                     --list-exps prints every registered experiment with a one-line \
                     description"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if list_exps {
        for e in all() {
            let suffix = if e.in_all() { "" } else { "  (not part of 'all')" };
            println!("{:<18} {}{suffix}", e.name(), e.describe());
        }
        return ExitCode::SUCCESS;
    }
    let ctx = ExperimentCtx {
        scale: scale.scale(),
        seed,
        opts,
    };
    let mut json = serde_json::Map::new();
    if exp == "all" {
        for e in all().iter().filter(|e| e.in_all()) {
            match e.run(&ctx) {
                Ok(report) => {
                    print!("{}", report.text);
                    json.insert(report.json_key.to_string(), report.json);
                    // Self-checks are informational under `all`; an
                    // explicit `--exp NAME` run enforces them below.
                }
                Err(err) => {
                    eprintln!("{} failed: {err}", e.name());
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        let Some(e) = find(&exp) else {
            eprintln!("unknown experiment '{exp}'");
            return ExitCode::FAILURE;
        };
        match e.run(&ctx) {
            Ok(report) => {
                print!("{}", report.text);
                if !report.check_failures.is_empty() {
                    for failure in &report.check_failures {
                        eprintln!("{failure}");
                    }
                    return ExitCode::FAILURE;
                }
                json.insert(report.json_key.to_string(), report.json);
            }
            Err(err) => {
                eprintln!("{} failed: {err}", e.name());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json_path {
        let doc = serde_json::json!({
            "paper": "Investigating Power Outage Effects on Reliability of SSDs (DATE 2018)",
            "seed": seed,
            "scale": format!("{scale:?}"),
            "reports": serde_json::Value::Object(json),
        });
        match std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serializable"),
        ) {
            Ok(()) => println!("wrote JSON reports to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Parses the numeric value of `name` from the argument stream, printing
/// a usage error (and yielding the exit code) when missing or malformed.
fn num_flag(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, ExitCode> {
    let v = args.next().unwrap_or_default();
    v.parse().map_err(|_| {
        eprintln!("bad {name} '{v}' (expected a number)");
        ExitCode::FAILURE
    })
}
