//! `pfio` — a small fio-style workload runner for the simulated SSD.
//!
//! Runs a fault-free workload against a vendor preset and reports
//! throughput plus the `btt`-style latency summary. Useful for sanity-
//! checking the device model independent of fault injection.
//!
//! ```text
//! pfio [--vendor a|b|c] [--requests N] [--size-kib N] [--write-pct P]
//!      [--pattern random|sequential|zipf] [--qd N] [--seed N]
//!      [--watchdog-ms N] [--wear CYCLES] [--read-retries N]
//! ```
//!
//! `--watchdog-ms` caps the simulated runtime; if the device stalls and
//! the workload cannot finish within the budget, pfio reports the stall
//! and exits nonzero instead of spinning forever. `--wear` pre-ages
//! every block to the given P/E cycle count and `--read-retries` arms
//! the ECC read-retry ladder, so the retry/rescue behaviour of
//! end-of-life media can be sanity-checked without fault injection.

use std::env;
use std::process::ExitCode;

use pfault_obs::Metrics;
use pfault_sim::storage::{GIB, KIB};
use pfault_sim::{DetRng, SectorCount, SimDuration};
use pfault_ssd::device::{HostCommand, Ssd};
use pfault_ssd::VendorPreset;
use pfault_trace::{analyze, BlockTracer};
use pfault_workload::{AccessPattern, ArrivalModel, SizeSpec, WorkloadGenerator, WorkloadSpec};

struct Args {
    vendor: VendorPreset,
    requests: usize,
    size_kib: Option<u64>,
    write_pct: u32,
    pattern: AccessPattern,
    queue_depth: u32,
    seed: u64,
    watchdog_ms: Option<u64>,
    obs: bool,
    wear: u32,
    read_retries: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        vendor: VendorPreset::SsdA,
        requests: 2_000,
        size_kib: Some(4),
        write_pct: 100,
        pattern: AccessPattern::UniformRandom,
        queue_depth: 1,
        seed: 1,
        watchdog_ms: None,
        obs: false,
        wear: 0,
        read_retries: 0,
    };
    let mut it = env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--vendor" => {
                args.vendor = match value()?.as_str() {
                    "a" | "A" => VendorPreset::SsdA,
                    "b" | "B" => VendorPreset::SsdB,
                    "c" | "C" => VendorPreset::SsdC,
                    other => return Err(format!("unknown vendor '{other}'")),
                }
            }
            "--requests" => {
                args.requests = value()?.parse().map_err(|_| "bad --requests".to_string())?
            }
            "--size-kib" => {
                args.size_kib = Some(value()?.parse().map_err(|_| "bad --size-kib".to_string())?)
            }
            "--mixed-sizes" => args.size_kib = None,
            "--write-pct" => {
                args.write_pct = value()?
                    .parse()
                    .map_err(|_| "bad --write-pct".to_string())?;
                if args.write_pct > 100 {
                    return Err("--write-pct must be 0..=100".to_string());
                }
            }
            "--pattern" => {
                args.pattern = match value()?.as_str() {
                    "random" => AccessPattern::UniformRandom,
                    "sequential" => AccessPattern::Sequential,
                    "zipf" => AccessPattern::Zipf { theta: 0.9 },
                    other => return Err(format!("unknown pattern '{other}'")),
                }
            }
            "--qd" => args.queue_depth = value()?.parse().map_err(|_| "bad --qd".to_string())?,
            "--seed" => args.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--watchdog-ms" => {
                args.watchdog_ms = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --watchdog-ms".to_string())?,
                )
            }
            "--obs" => args.obs = true,
            "--wear" => args.wear = value()?.parse().map_err(|_| "bad --wear".to_string())?,
            "--read-retries" => {
                args.read_retries = value()?
                    .parse()
                    .map_err(|_| "bad --read-retries".to_string())?
            }
            "--help" | "-h" => {
                return Err(
                    "pfio [--vendor a|b|c] [--requests N] [--size-kib N | --mixed-sizes] \
                     [--write-pct P] [--pattern random|sequential|zipf] [--qd N] [--seed N] \
                     [--watchdog-ms N] [--obs] [--wear CYCLES] [--read-retries N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let spec = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(f64::from(args.write_pct) / 100.0)
        .size(match args.size_kib {
            Some(k) => SizeSpec::FixedBytes(k * KIB),
            None => SizeSpec::paper_default(),
        })
        .pattern(args.pattern)
        .arrival(ArrivalModel::ClosedLoop {
            queue_depth: args.queue_depth,
        })
        .build();

    let root = DetRng::new(args.seed);
    let mut config = args.vendor.config();
    config.baseline_wear = args.wear;
    config.read_retry_limit = args.read_retries;
    let mut ssd = Ssd::new(config, root.fork("ssd"));
    if args.obs {
        ssd.enable_probes();
    }
    let mut generator = WorkloadGenerator::new(spec, root.fork("workload"));
    let mut tracer = BlockTracer::new(SectorCount::new(ssd.config().max_segment_sectors));

    let deadline = args.watchdog_ms.map(SimDuration::from_millis);
    let mut issued = 0usize;
    let mut outstanding = 0usize;
    let mut bytes = 0u64;
    while issued < args.requests || outstanding > 0 {
        if let Some(cap) = deadline {
            if ssd.now().as_micros() > cap.as_micros() {
                eprintln!(
                    "watchdog: workload did not finish within {} ms of simulated time \
                     ({} of {} requests issued, {} outstanding)",
                    args.watchdog_ms.unwrap_or(0),
                    issued,
                    args.requests,
                    outstanding
                );
                return ExitCode::FAILURE;
            }
        }
        for c in ssd.drain_completions() {
            outstanding -= 1;
            if c.acked() {
                tracer.complete(c.request_id, c.sub_id, c.time);
            } else {
                tracer.error(c.request_id, c.sub_id, c.time);
            }
        }
        while outstanding < args.queue_depth as usize && issued < args.requests {
            let p = generator.next_packet();
            bytes += p.sectors.bytes();
            let subs = tracer.queue_request(p.id, p.lba, p.sectors, p.is_write, ssd.now());
            let mut offset = 0;
            for sub in subs {
                tracer.dispatch(p.id, sub.sub_id, ssd.now());
                let cmd = if p.is_write {
                    HostCommand::write(p.id, sub.sub_id, sub.lba, sub.sectors, p.payload_tag)
                        .with_payload_offset(offset)
                } else {
                    HostCommand::read(p.id, sub.sub_id, sub.lba, sub.sectors)
                };
                offset += sub.sectors.get();
                ssd.submit(cmd);
                outstanding += 1;
            }
            issued += 1;
        }
        if let Some(t) = ssd.next_event() {
            ssd.advance_to(t.max(ssd.now() + SimDuration::from_micros(1)));
        } else if outstanding > 0 {
            ssd.advance_to(ssd.now() + SimDuration::from_millis(1));
        }
    }

    let elapsed = ssd.now();
    let report = analyze(tracer.events(), SimDuration::from_secs(30), elapsed);
    let summary = report.summary();
    let secs = elapsed.as_millis_f64() / 1_000.0;

    println!("device:      {}", args.vendor.label());
    println!(
        "requests:    {} ({}% writes)",
        summary.requests, args.write_pct
    );
    println!("completed:   {}", summary.completed);
    println!("elapsed:     {:.3} s (simulated)", secs);
    println!(
        "throughput:  {:.0} IOPS, {:.1} MiB/s",
        summary.completed as f64 / secs,
        bytes as f64 / (1024.0 * 1024.0) / secs
    );
    println!(
        "latency q2c: mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
        summary.q2c_mean_ms, summary.q2c_p50_ms, summary.q2c_p99_ms
    );
    println!("latency d2c: mean {:.3} ms", summary.d2c_mean_ms);
    println!(
        "device:      {} programs, {} commits, {} GC runs",
        ssd.flash_stats().programs,
        ssd.stats().commits,
        ssd.stats().gc_collections
    );
    if args.read_retries > 0 || args.wear > 0 {
        // End-of-run scrub: reads every mapped page back through the
        // read-retry ladder, so aged media shows its retry/rescue rates
        // even when the workload itself never triggered GC.
        let scrub = match ssd.scrub() {
            Ok(report) => report,
            Err(e) => {
                eprintln!("scrub failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let fs = ssd.flash_stats();
        println!(
            "scrub:       {} scanned, {} unreadable, {} garbled",
            scrub.scanned, scrub.unreadable, scrub.garbled
        );
        println!(
            "read path:   {} uncorrectable, {} retry rungs, {} rescued",
            fs.ecc_uncorrectable_reads, fs.read_retries, fs.retry_recovered_reads
        );
    }
    if args.obs {
        let metrics = Metrics::from_records(ssd.probe_records());
        println!("== probe metrics ==");
        for (key, value) in &metrics.counters {
            println!("{key}: {value}");
        }
        for (key, hist) in &metrics.histograms {
            println!(
                "{key}: n={} p50>={} p99>={}",
                hist.count(),
                hist.percentile_lower_bound(50).unwrap_or(0),
                hist.percentile_lower_bound(99).unwrap_or(0)
            );
        }
    }
    ExitCode::SUCCESS
}
