//! Shared helpers for the benchmark harness.
//!
//! The `repro` binary regenerates every table and figure of the paper;
//! the Criterion benches under `benches/` time the same experiment
//! kernels. Both use the experiment runners from
//! [`pfault_platform::experiments`].

use pfault_platform::experiments::ExperimentScale;

/// Scales selectable from the command line / bench environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleArg {
    /// CI-sized (tens of faults per point).
    Quick,
    /// Paper-sized (hundreds of faults per point).
    Paper,
}

impl ScaleArg {
    /// Parses `quick` / `paper`.
    pub fn parse(s: &str) -> Option<ScaleArg> {
        match s {
            "quick" => Some(ScaleArg::Quick),
            "paper" => Some(ScaleArg::Paper),
            _ => None,
        }
    }

    /// The experiment scale.
    pub fn scale(self) -> ExperimentScale {
        match self {
            ScaleArg::Quick => ExperimentScale::quick(),
            ScaleArg::Paper => ExperimentScale::paper(),
        }
    }
}

/// The default seed used by the harness (reports in EXPERIMENTS.md use
/// this).
pub const DEFAULT_SEED: u64 = 20180429;

/// A micro scale for Criterion benches: each iteration runs a short but
/// complete fault-injection campaign.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        faults_per_point: 3,
        requests_per_trial: 25,
        threads: 1,
    }
} // the paper's arXiv date

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(ScaleArg::parse("quick"), Some(ScaleArg::Quick));
        assert_eq!(ScaleArg::parse("paper"), Some(ScaleArg::Paper));
        assert_eq!(ScaleArg::parse("huge"), None);
        assert!(
            ScaleArg::Paper.scale().faults_per_point > ScaleArg::Quick.scale().faults_per_point
        );
    }
}
