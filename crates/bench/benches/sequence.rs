//! Fig 9 bench: dependent-sequence campaigns (RAR vs WAW extremes).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_sim::storage::GIB;
use pfault_workload::{SequenceMode, WorkloadSpec};

fn campaign(mode: SequenceMode) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .sequence(mode)
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_sequence");
    group.sample_size(10);
    for (label, mode) in [("rar", SequenceMode::Rar), ("waw", SequenceMode::Waw)] {
        group.bench_function(label, |b| {
            let config = campaign(mode);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
