//! Brownout-extension bench: sag trials at the severity extremes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_platform::experiments::{brownout, ExperimentScale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_brownout");
    group.sample_size(10);
    let scale = ExperimentScale {
        faults_per_point: 16, // → 4 trials per floor inside run()
        requests_per_trial: 10,
        threads: 1,
    };
    group.bench_function("depth_sweep", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(brownout::run(scale, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
