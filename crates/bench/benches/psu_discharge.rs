//! Fig 4 bench: PSU discharge model — curve sampling and threshold
//! inversion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_power::psu::PsuModel;
use pfault_power::Millivolts;
use pfault_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_psu");
    group.bench_function("discharge_trace_loaded", |b| {
        let psu = PsuModel::atx_loaded();
        b.iter(|| black_box(psu.discharge_trace(SimDuration::from_millis(10))));
    });
    group.bench_function("discharge_trace_unloaded", |b| {
        let psu = PsuModel::atx_unloaded();
        b.iter(|| black_box(psu.discharge_trace(SimDuration::from_millis(10))));
    });
    group.bench_function("threshold_inversion", |b| {
        let psu = PsuModel::atx_loaded();
        b.iter(|| {
            for mv in [4500u32, 4490, 2500, 500] {
                black_box(psu.time_to_voltage(Millivolts::new(mv)));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
