//! Wear-extension bench: campaigns on fresh vs end-of-life drives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

fn campaign(baseline_wear: u32) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    trial.ssd.baseline_wear = baseline_wear;
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(1.0)
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_wear");
    group.sample_size(10);
    for cycles in [0u32, 2_800] {
        group.bench_function(format!("{cycles}_cycles"), |b| {
            let config = campaign(cycles);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
