//! Flush-extension bench: campaigns with and without fsync-style barriers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

fn campaign(flush_every: Option<u64>) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    trial.flush_every = flush_every;
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(1.0)
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_flush");
    group.sample_size(10);
    for (label, every) in [("never", None), ("every_write", Some(1u64))] {
        group.bench_function(label, |b| {
            let config = campaign(every);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
