//! Fig 8 bench: open-loop campaigns below and above the IOPS knee.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_sim::storage::{GIB, KIB};
use pfault_workload::{ArrivalModel, SizeSpec, WorkloadSpec};

fn campaign(iops: f64) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(1.0)
        .size(SizeSpec::FixedBytes(4 * KIB))
        .arrival(ArrivalModel::OpenLoop { iops })
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: 100,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_iops");
    group.sample_size(10);
    for iops in [1_200.0f64, 30_000.0] {
        group.bench_function(format!("requested_{iops}"), |b| {
            let config = campaign(iops);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
