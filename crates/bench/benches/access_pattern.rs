//! §IV-D bench: random vs sequential campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_sim::storage::GIB;
use pfault_workload::{AccessPattern, WorkloadSpec};

fn campaign(pattern: AccessPattern) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(1.0)
        .pattern(pattern)
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec4d_access_pattern");
    group.sample_size(10);
    for (label, pattern) in [
        ("random", AccessPattern::UniformRandom),
        ("sequential", AccessPattern::Sequential),
    ] {
        group.bench_function(label, |b| {
            let config = campaign(pattern);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
