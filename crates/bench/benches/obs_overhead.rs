//! Probe-bus overhead bench: the fault-free path with probes disabled
//! must be indistinguishable (≤1%) from the pre-observability baseline,
//! and the `obs-off` vs `obs-on` pair quantifies what enabling costs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_platform::platform::{TestPlatform, TrialConfig};
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

fn trial_config(obs: bool) -> TrialConfig {
    TrialConfig::paper_default()
        .with_workload(WorkloadSpec::builder().wss_bytes(8 * GIB).build())
        .with_requests(60)
        .with_obs(obs)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    for (label, obs) in [("fault-free-obs-off", false), ("fault-free-obs-on", true)] {
        group.bench_function(label, |b| {
            let platform = TestPlatform::new(trial_config(obs));
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(platform.run_fault_free(seed))
            });
        });
    }
    // The faulted path exercises every emission site (power cut, torn
    // journal, recovery narration).
    for (label, obs) in [("faulted-obs-off", false), ("faulted-obs-on", true)] {
        group.bench_function(label, |b| {
            let platform = TestPlatform::new(trial_config(obs));
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(platform.run_trial(seed).expect("trial runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
