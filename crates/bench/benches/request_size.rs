//! Fig 7 bench: campaigns at the request-size extremes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_sim::storage::{GIB, KIB};
use pfault_workload::{SizeSpec, WorkloadSpec};

fn campaign(size_kib: u64) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(1.0)
        .size(SizeSpec::FixedBytes(size_kib * KIB))
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_request_size");
    group.sample_size(10);
    for size in [4u64, 1024] {
        group.bench_function(format!("{size}kib"), |b| {
            let config = campaign(size);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
