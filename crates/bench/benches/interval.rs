//! §IV-A bench: a single marker-interval trial (write → idle → fault →
//! recover → verify).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_platform::experiments::{interval, ExperimentScale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec4a_interval");
    group.sample_size(10);
    let scale = ExperimentScale {
        faults_per_point: 32, // → 8 trials per delay point inside run()
        requests_per_trial: 10,
        threads: 1,
    };
    group.bench_function("sweep_cache_on", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(interval::run(scale, seed, true))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
