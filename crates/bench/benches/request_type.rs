//! Fig 5 bench: one campaign point per read-percentage extreme.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

fn campaign(write_fraction: f64) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(write_fraction)
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_request_type");
    group.sample_size(10);
    for (label, wf) in [("write100", 1.0), ("write50", 0.5), ("read100", 0.0)] {
        group.bench_function(label, |b| {
            let config = campaign(wf);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
