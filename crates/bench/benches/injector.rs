//! Injector-ablation bench: discharge-ramp vs transistor-cut campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_power::FaultInjector;
use pfault_sim::storage::GIB;
use pfault_workload::WorkloadSpec;

fn campaign(injector: FaultInjector) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    trial.injector = injector;
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(1.0)
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_injector");
    group.sample_size(10);
    for (label, injector) in [
        ("atx_discharge", FaultInjector::arduino_atx_loaded()),
        ("transistor_cut", FaultInjector::transistor()),
    ] {
        group.bench_function(label, |b| {
            let config = campaign(injector);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
