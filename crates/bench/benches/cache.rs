//! Cache-ablation bench: cache on / off / supercap campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pfault_bench::bench_scale;
use pfault_platform::campaign::{Campaign, CampaignConfig};
use pfault_platform::platform::TrialConfig;
use pfault_sim::storage::GIB;
use pfault_ssd::CacheConfig;
use pfault_workload::WorkloadSpec;

fn campaign(cache_enabled: bool, supercap: bool) -> CampaignConfig {
    let scale = bench_scale();
    let mut trial = TrialConfig::paper_default();
    if !cache_enabled {
        trial.ssd.cache = CacheConfig::disabled();
    }
    trial.ssd.supercap = supercap;
    trial.workload = WorkloadSpec::builder()
        .wss_bytes(16 * GIB)
        .write_fraction(1.0)
        .build();
    CampaignConfig {
        trial,
        trials: scale.faults_per_point,
        requests_per_trial: scale.requests_per_trial,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cache");
    group.sample_size(10);
    for (label, enabled, supercap) in [
        ("enabled", true, false),
        ("disabled", false, false),
        ("supercap", true, true),
    ] {
        group.bench_function(label, |b| {
            let config = campaign(enabled, supercap);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Campaign::builder(config).seed(seed).build().run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
