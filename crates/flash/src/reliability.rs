//! Endurance and disturbance reliability model.
//!
//! The paper's related work (§II) catalogues the *intrinsic* NAND failure
//! sources — write endurance (Boboila & Desnoyers \[7\]), read disturbance
//! and program interference (Cai et al. \[8\]), field failure growth with
//! wear (Meza et al. \[19\], Schroeder et al. \[22\]). This module adds those
//! to the array model so power-fault damage composes with a realistically
//! aging device:
//!
//! * **wear** — raw bit errors grow with a block's program/erase cycles
//!   (super-linearly near end of life);
//! * **read disturb** — every read of a block slightly stresses its other
//!   pages; the accumulated count adds raw errors and resets on erase;
//! * **retention** is out of scope (campaign trials span seconds, not
//!   months) — documented here so the omission is explicit.
//!
//! The model yields an *additional* raw-bit-error count per page read,
//! which the array adds before ECC decoding.

use serde::{Deserialize, Serialize};

use pfault_sim::DetRng;

use crate::cell::CellKind;

/// Reliability model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityModel {
    /// Mean raw bit errors per 4 KiB page added per 1000 P/E cycles at
    /// the technology's rated endurance slope.
    pub ber_per_kilocycle: f64,
    /// Exponent of the wear curve: errors grow as `(cycles/1000)^exp`.
    pub wear_exponent: f64,
    /// Mean raw bit errors added per 100 000 reads of the block since its
    /// last erase.
    pub ber_per_100k_reads: f64,
}

impl ReliabilityModel {
    /// Typical parameters for a cell technology (TLC wears fastest).
    pub fn for_kind(kind: CellKind) -> Self {
        match kind {
            CellKind::Slc => ReliabilityModel {
                ber_per_kilocycle: 0.5,
                wear_exponent: 1.1,
                ber_per_100k_reads: 0.5,
            },
            // MLC with BCH t=40: ~30 mean errors near the 3k-cycle budget,
            // so end-of-life pages flicker across the ECC boundary.
            CellKind::Mlc => ReliabilityModel {
                ber_per_kilocycle: 7.0,
                wear_exponent: 1.4,
                ber_per_100k_reads: 2.0,
            },
            // TLC with LDPC t=72 (soft limit 144): near EOL the mean sits
            // in the soft-retry region.
            CellKind::Tlc => ReliabilityModel {
                ber_per_kilocycle: 20.0,
                wear_exponent: 1.5,
                ber_per_100k_reads: 6.0,
            },
        }
    }

    /// Mean additional raw bit errors for a page in a block with
    /// `erase_count` P/E cycles and `reads_since_erase` reads.
    pub fn mean_extra_ber(&self, erase_count: u32, reads_since_erase: u64) -> f64 {
        let kilocycles = f64::from(erase_count) / 1000.0;
        let wear = self.ber_per_kilocycle * kilocycles.powf(self.wear_exponent);
        let disturb = self.ber_per_100k_reads * reads_since_erase as f64 / 100_000.0;
        wear + disturb
    }

    /// Samples the additional raw bit errors for one read (Poisson-ish
    /// around the mean, clamped to a geometric-style spread).
    pub fn sample_extra_ber(
        &self,
        erase_count: u32,
        reads_since_erase: u64,
        rng: &mut DetRng,
    ) -> u32 {
        let mean = self.mean_extra_ber(erase_count, reads_since_erase);
        if mean <= 0.0 {
            return 0;
        }
        // Multiplicative jitter in [0.5, 1.5): deterministic, cheap, and
        // wide enough to make marginal pages flicker across the ECC
        // boundary the way real ones do.
        let jitter = 0.5 + rng.unit_f64();
        (mean * jitter).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_adds_nothing() {
        let m = ReliabilityModel::for_kind(CellKind::Mlc);
        let mut rng = DetRng::new(1);
        assert_eq!(m.sample_extra_ber(0, 0, &mut rng), 0);
    }

    #[test]
    fn wear_grows_superlinearly() {
        let m = ReliabilityModel::for_kind(CellKind::Mlc);
        let at_1k = m.mean_extra_ber(1_000, 0);
        let at_2k = m.mean_extra_ber(2_000, 0);
        let at_3k = m.mean_extra_ber(3_000, 0);
        assert!(at_2k > at_1k * 2.0, "wear curve must be super-linear");
        assert!(at_3k - at_2k > at_2k - at_1k);
    }

    #[test]
    fn read_disturb_accumulates_and_is_linear() {
        let m = ReliabilityModel::for_kind(CellKind::Mlc);
        let base = m.mean_extra_ber(0, 0);
        let some = m.mean_extra_ber(0, 100_000);
        let more = m.mean_extra_ber(0, 200_000);
        assert_eq!(base, 0.0);
        assert!((more - some * 2.0).abs() < 1e-9);
    }

    #[test]
    fn tlc_wears_faster_than_mlc_than_slc() {
        let cycles = 2_000;
        let slc = ReliabilityModel::for_kind(CellKind::Slc).mean_extra_ber(cycles, 0);
        let mlc = ReliabilityModel::for_kind(CellKind::Mlc).mean_extra_ber(cycles, 0);
        let tlc = ReliabilityModel::for_kind(CellKind::Tlc).mean_extra_ber(cycles, 0);
        assert!(tlc > mlc);
        assert!(mlc > slc);
    }

    #[test]
    fn sampling_is_centered_on_the_mean() {
        let m = ReliabilityModel::for_kind(CellKind::Tlc);
        let mut rng = DetRng::new(5);
        let mean = m.mean_extra_ber(2_500, 50_000);
        let n = 2_000;
        let total: u64 = (0..n)
            .map(|_| u64::from(m.sample_extra_ber(2_500, 50_000, &mut rng)))
            .sum();
        let empirical = total as f64 / n as f64;
        assert!(
            (empirical - mean).abs() / mean < 0.05,
            "empirical {empirical} vs mean {mean}"
        );
    }
}
