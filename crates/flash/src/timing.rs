//! NAND operation latencies.
//!
//! Latencies matter to the failure model: the paper attributes flash's
//! power-fault vulnerability to the *length* of program and erase
//! operations (§I) — a 1.3 ms MLC page program or 3 ms erase is a wide
//! window for a fault to land in. Upper pages take longer than lower pages
//! (more ISPP steps), which also widens the paired-page exposure.

use serde::{Deserialize, Serialize};

use pfault_sim::SimDuration;

use crate::cell::CellKind;
use crate::pairing;

/// Operation latencies for one flash part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashTiming {
    /// Page read (array to register + transfer).
    pub read: SimDuration,
    /// Program of a wordline's first ("lower") page.
    pub program_lower: SimDuration,
    /// Program of subsequent ("upper") pages of a wordline.
    pub program_upper: SimDuration,
    /// Block erase.
    pub erase: SimDuration,
}

impl FlashTiming {
    /// Typical timings for a cell technology (datasheet-order values).
    pub fn for_kind(kind: CellKind) -> Self {
        match kind {
            CellKind::Slc => FlashTiming {
                read: SimDuration::from_micros(30),
                program_lower: SimDuration::from_micros(300),
                program_upper: SimDuration::from_micros(300),
                erase: SimDuration::from_micros(2_000),
            },
            CellKind::Mlc => FlashTiming {
                read: SimDuration::from_micros(60),
                program_lower: SimDuration::from_micros(500),
                program_upper: SimDuration::from_micros(1_600),
                erase: SimDuration::from_micros(3_000),
            },
            CellKind::Tlc => FlashTiming {
                read: SimDuration::from_micros(90),
                program_lower: SimDuration::from_micros(700),
                program_upper: SimDuration::from_micros(2_300),
                erase: SimDuration::from_micros(5_000),
            },
        }
    }

    /// Program latency for page `page` of a block of `kind` cells
    /// (lower pages are faster than upper pages).
    pub fn program_duration(&self, kind: CellKind, page: u64) -> SimDuration {
        if pairing::slot_of(kind, page).level_index == 0 {
            self.program_lower
        } else {
            self.program_upper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_pages_are_slower_for_mlc_tlc() {
        for kind in [CellKind::Mlc, CellKind::Tlc] {
            let t = FlashTiming::for_kind(kind);
            assert!(t.program_upper > t.program_lower, "{kind:?}");
            assert_eq!(t.program_duration(kind, 0), t.program_lower);
            assert_eq!(t.program_duration(kind, 1), t.program_upper);
        }
    }

    #[test]
    fn slc_is_uniform_and_fastest() {
        let slc = FlashTiming::for_kind(CellKind::Slc);
        let mlc = FlashTiming::for_kind(CellKind::Mlc);
        assert_eq!(slc.program_lower, slc.program_upper);
        assert!(slc.program_lower < mlc.program_lower);
        assert!(slc.erase < mlc.erase);
    }

    #[test]
    fn erase_is_the_longest_operation() {
        for kind in [CellKind::Slc, CellKind::Mlc, CellKind::Tlc] {
            let t = FlashTiming::for_kind(kind);
            assert!(t.erase > t.program_upper);
            assert!(t.program_lower > t.read);
        }
    }

    #[test]
    fn tlc_wordline_third_page_counts_as_upper() {
        let t = FlashTiming::for_kind(CellKind::Tlc);
        assert_eq!(t.program_duration(CellKind::Tlc, 2), t.program_upper);
        assert_eq!(t.program_duration(CellKind::Tlc, 3), t.program_lower);
    }
}
