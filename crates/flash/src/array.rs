//! The flash array: device-scale chip operations, including power-loss
//! interruption.
//!
//! [`FlashArray`] owns sparse block state (blocks materialise on first
//! touch), enforces NAND constraints via [`crate::block::Block`], passes
//! reads through the ECC model, and — centrally for this project — exposes
//! [`FlashArray::interrupt_program`] and [`FlashArray::interrupt_erase`],
//! which model what a supply-voltage collapse does to an operation in
//! flight.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pfault_sim::{DetRng, Lba};

use crate::block::{Block, BlockState, PageState};
use crate::cell::CellKind;
use crate::ecc::{self, EccOutcome, EccScheme};
use crate::error::FlashError;
use crate::geometry::{FlashGeometry, Ppa};
use crate::oob::Oob;
use crate::pairing;
use crate::reliability::ReliabilityModel;
use crate::timing::FlashTiming;

pub use crate::block::PageData;

/// Result of reading one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Page decoded cleanly.
    Ok {
        /// Content descriptor as stored.
        data: PageData,
        /// Spare-area metadata.
        oob: Oob,
        /// Raw bit errors the ECC repaired.
        repaired: u32,
    },
    /// Raw errors exceeded ECC strength; no data returned.
    Uncorrectable,
    /// The page is erased.
    Erased,
}

/// What a power-loss interruption did to the array.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InterruptReport {
    /// The page whose program was cut short, if it was left corrupted.
    pub target_corrupted: Option<Ppa>,
    /// Earlier wordline siblings whose data was disturbed beyond repair.
    pub paired_corrupted: Vec<Ppa>,
}

/// Cumulative operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlashStats {
    /// Completed page programs.
    pub programs: u64,
    /// Completed page reads.
    pub reads: u64,
    /// Completed block erases.
    pub erases: u64,
    /// Programs cut short by power loss.
    pub interrupted_programs: u64,
    /// Erases cut short by power loss.
    pub interrupted_erases: u64,
    /// Paired pages corrupted as collateral damage.
    pub paired_corruptions: u64,
    /// Reads that needed ECC repair (repaired at least one bit).
    pub ecc_corrected_reads: u64,
    /// Total bits repaired by ECC across all reads.
    pub ecc_corrected_bits: u64,
    /// Reads the ECC could not correct.
    pub ecc_uncorrectable_reads: u64,
    /// Read-retry ladder attempts issued after an uncorrectable nominal
    /// read (each shifted-threshold re-read counts once).
    pub read_retries: u64,
    /// Reads rescued by the retry ladder: uncorrectable at the nominal
    /// threshold but decoded at a shifted one.
    pub retry_recovered_reads: u64,
}

/// A simulated NAND flash array.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct FlashArray {
    geometry: FlashGeometry,
    kind: CellKind,
    ecc: EccScheme,
    timing: FlashTiming,
    wear_budget: u32,
    baseline_wear: u32,
    reliability: ReliabilityModel,
    blocks: HashMap<u64, Block>,
    powered: bool,
    stats: FlashStats,
}

/// Raw bit errors left in a page whose program was interrupted at
/// `progress`, per 4 KiB page. Earlier interruption → more errors; even a
/// very late interruption leaves a few (aborted final verify).
fn interrupted_ber(kind: CellKind, progress: f64, rng: &mut DetRng) -> u32 {
    let progress = progress.clamp(0.0, 1.0);
    // Scale: a 4 KiB page has 32768 bits; a fully aborted MLC program
    // scatters errors over a large fraction of cells.
    let severity = (1.0 - progress).powi(2);
    let base = match kind {
        CellKind::Slc => 600.0,
        CellKind::Mlc => 2_000.0,
        CellKind::Tlc => 5_000.0,
    };
    let mean = 20.0 + base * severity;
    // Geometric-ish spread around the mean.
    let jitter = 0.5 + rng.unit_f64();
    (mean * jitter) as u32
}

impl FlashArray {
    /// Creates a powered-on array with default ECC and timing for `kind`.
    pub fn new(geometry: FlashGeometry, kind: CellKind) -> Self {
        let ecc = match kind {
            CellKind::Slc => EccScheme::Bch { t: 8 },
            CellKind::Mlc => EccScheme::bch_mlc(),
            CellKind::Tlc => EccScheme::ldpc_tlc(),
        };
        FlashArray::with_ecc(geometry, kind, ecc)
    }

    /// Creates an array with an explicit ECC scheme.
    pub fn with_ecc(geometry: FlashGeometry, kind: CellKind, ecc: EccScheme) -> Self {
        FlashArray {
            geometry,
            kind,
            ecc,
            timing: FlashTiming::for_kind(kind),
            wear_budget: Block::DEFAULT_WEAR_BUDGET,
            baseline_wear: 0,
            reliability: ReliabilityModel::for_kind(kind),
            blocks: HashMap::new(),
            powered: true,
            stats: FlashStats::default(),
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> FlashGeometry {
        self.geometry
    }

    /// Cell technology.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// ECC scheme in use.
    pub fn ecc(&self) -> EccScheme {
        self.ecc
    }

    /// Operation timings.
    pub fn timing(&self) -> FlashTiming {
        self.timing
    }

    /// Operation counters.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// The endurance/disturb reliability model in effect.
    pub fn reliability(&self) -> ReliabilityModel {
        self.reliability
    }

    /// Overrides the reliability model (aging studies / ablations).
    pub fn set_reliability(&mut self, model: ReliabilityModel) {
        self.reliability = model;
    }

    /// Sets the wear every not-yet-touched block materialises with, as if
    /// the whole device had already served that many program/erase cycles
    /// (end-of-life campaigns). Already-materialised blocks keep their
    /// counts.
    pub fn set_baseline_wear(&mut self, erase_count: u32) {
        self.baseline_wear = erase_count;
    }

    /// Pre-ages a block to `erase_count` cycles, as if it had served that
    /// many program/erase rounds before the experiment (end-of-life
    /// studies).
    ///
    /// # Panics
    ///
    /// Panics if the block is outside the geometry.
    pub fn pre_age_block(&mut self, block: u64, erase_count: u32) {
        assert!(block < self.geometry.blocks(), "block outside geometry");
        let budget = self.wear_budget;
        let entry = self.block_entry(block);
        for _ in entry.erase_count()..erase_count.min(budget) {
            let _ = entry.erase(block, budget);
        }
    }

    /// Whether the chip currently has power.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Removes power. Subsequent operations fail with
    /// [`FlashError::PoweredOff`] until [`FlashArray::power_on`].
    pub fn power_off(&mut self) {
        self.powered = false;
    }

    /// Restores power.
    pub fn power_on(&mut self) {
        self.powered = true;
    }

    fn block_entry(&mut self, block: u64) -> &mut Block {
        let ppb = self.geometry.pages_per_block();
        let wear = self.baseline_wear;
        self.blocks
            .entry(block)
            .or_insert_with(|| Block::with_wear(ppb, wear))
    }

    /// Next page the given block expects to program (0 for untouched
    /// blocks).
    pub fn next_page_of(&self, block: u64) -> u64 {
        self.blocks.get(&block).map_or(0, Block::next_page)
    }

    /// Whether `block` is fully programmed.
    pub fn block_full(&self, block: u64) -> bool {
        self.blocks.get(&block).is_some_and(Block::is_full)
    }

    /// Lifecycle state of `block`.
    pub fn block_state(&self, block: u64) -> BlockState {
        self.blocks
            .get(&block)
            .map_or(BlockState::Open, Block::state)
    }

    /// Erase count of `block`.
    pub fn erase_count(&self, block: u64) -> u32 {
        self.blocks.get(&block).map_or(0, Block::erase_count)
    }

    /// Programs a page to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`FlashError`] for power, addressing, ordering, and wear
    /// violations.
    pub fn program(&mut self, ppa: Ppa, data: PageData, oob: Oob) -> Result<(), FlashError> {
        if !self.powered {
            return Err(FlashError::PoweredOff);
        }
        if !self.geometry.contains(ppa) {
            return Err(FlashError::BadAddress {
                block: ppa.block,
                page: ppa.page,
            });
        }
        self.block_entry(ppa.block)
            .program(ppa.block, ppa.page, data, oob)?;
        self.stats.programs += 1;
        Ok(())
    }

    /// Duration a program of `ppa` takes (depends on lower/upper page).
    pub fn program_duration(&self, ppa: Ppa) -> pfault_sim::SimDuration {
        self.timing.program_duration(self.kind, ppa.page)
    }

    /// Reads a page through the ECC stage.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::PoweredOff`] or [`FlashError::BadAddress`];
    /// data-level problems are reported in the [`ReadOutcome`], not as
    /// errors.
    pub fn read(&mut self, ppa: Ppa, rng: &mut DetRng) -> ReadOutcome {
        self.read_once(ppa, rng, 1.0)
    }

    /// Reads a page, retrying with progressively shifted read-reference
    /// voltages when the nominal read is uncorrectable — the retry ladder
    /// real controllers walk before declaring a page lost.
    ///
    /// Attempt `k` of `retries` scales the wear/retention/disturb error
    /// component by `(retries - k) / retries`: a shifted threshold tracks
    /// the drifted cell distributions, so drift-induced errors shrink
    /// while *intrinsic* damage (an interrupted program's garbled cells)
    /// stays — the ladder rescues marginal pages, never torn ones.
    ///
    /// Each rung issues a real array read (counts toward read disturb and
    /// [`FlashStats::reads`]); rungs are tallied in
    /// [`FlashStats::read_retries`] and rescues in
    /// [`FlashStats::retry_recovered_reads`].
    pub fn read_with_retries(&mut self, ppa: Ppa, retries: u32, rng: &mut DetRng) -> ReadOutcome {
        let first = self.read_once(ppa, rng, 1.0);
        if first != ReadOutcome::Uncorrectable || retries == 0 {
            return first;
        }
        for attempt in 1..=retries {
            self.stats.read_retries += 1;
            let scale = f64::from(retries - attempt) / f64::from(retries);
            let outcome = self.read_once(ppa, rng, scale);
            if outcome != ReadOutcome::Uncorrectable {
                self.stats.retry_recovered_reads += 1;
                return outcome;
            }
        }
        ReadOutcome::Uncorrectable
    }

    /// One read through the ECC stage with the extra (drift-induced) error
    /// component scaled by `extra_scale` (1.0 = nominal read reference).
    fn read_once(&mut self, ppa: Ppa, rng: &mut DetRng, extra_scale: f64) -> ReadOutcome {
        assert!(self.powered, "read attempted while powered off");
        assert!(
            self.geometry.contains(ppa),
            "read of {ppa} outside geometry"
        );
        self.stats.reads += 1;
        let Some(block) = self.blocks.get_mut(&ppa.block) else {
            return ReadOutcome::Erased;
        };
        block.note_read();
        if block.state() == BlockState::NeedsErase {
            return ReadOutcome::Uncorrectable;
        }
        let wear = block.erase_count();
        let disturb = block.reads_since_erase();
        match *block.page(ppa.page) {
            PageState::Erased => ReadOutcome::Erased,
            PageState::Programmed { data, oob, raw_ber } => {
                let extra = self.reliability.sample_extra_ber(wear, disturb, rng);
                let extra = if extra_scale >= 1.0 {
                    extra
                } else {
                    (f64::from(extra) * extra_scale) as u32
                };
                let raw_ber = raw_ber.saturating_add(extra);
                match ecc::decode(self.ecc, raw_ber, rng) {
                    EccOutcome::Corrected { repaired } => {
                        if repaired > 0 {
                            self.stats.ecc_corrected_reads += 1;
                            self.stats.ecc_corrected_bits += u64::from(repaired);
                        }
                        // A garbled payload still "succeeds" from the
                        // chip's point of view: the checksum mismatch is
                        // caught later by the Analyzer.
                        ReadOutcome::Ok {
                            data,
                            oob,
                            repaired,
                        }
                    }
                    EccOutcome::Uncorrectable => {
                        self.stats.ecc_uncorrectable_reads += 1;
                        ReadOutcome::Uncorrectable
                    }
                }
            }
        }
    }

    /// Erases a block to completion.
    ///
    /// # Errors
    ///
    /// Propagates power, addressing and wear errors.
    pub fn erase(&mut self, block: u64) -> Result<(), FlashError> {
        if !self.powered {
            return Err(FlashError::PoweredOff);
        }
        if block >= self.geometry.blocks() {
            return Err(FlashError::BadAddress { block, page: 0 });
        }
        let budget = self.wear_budget;
        self.block_entry(block).erase(block, budget)?;
        self.stats.erases += 1;
        Ok(())
    }

    /// Models a power-loss interruption of an in-flight program of `ppa` at
    /// fractional `progress`.
    ///
    /// The target page is left programmed with garbled content and a raw
    /// bit-error count drawn from the interruption model. With probability
    /// scaling in the page's wordline position, earlier sibling pages
    /// (already acknowledged data!) absorb threshold-voltage disturbance;
    /// if the disturbance exceeds the ECC strength the sibling is counted
    /// as corrupted in the report.
    ///
    /// The fault-space sweeper (`pfault_platform::sweep`) drives this
    /// with `progress` derived from its cut phase: a cut at a program
    /// span's *start* arrives with progress 0, a *mid* cut lands partway
    /// through, and a cut exactly at the span's *end* never reaches this
    /// function at all — the event kernel's left-closed boundary lets the
    /// program complete first.
    ///
    /// # Panics
    ///
    /// Panics if `ppa` is outside the geometry.
    pub fn interrupt_program(
        &mut self,
        ppa: Ppa,
        progress: f64,
        rng: &mut DetRng,
    ) -> InterruptReport {
        assert!(self.geometry.contains(ppa), "{ppa} outside geometry");
        self.stats.interrupted_programs += 1;
        let kind = self.kind;
        let ecc_limit = match self.ecc {
            EccScheme::None => 0,
            EccScheme::Bch { t } => t,
            EccScheme::Ldpc { t } => 2 * t,
        };
        let mut report = InterruptReport::default();
        let ber = interrupted_ber(kind, progress, rng);
        let noise = rng.next_u64();
        let block = self.block_entry(ppa.block);

        // The target page: record it as programmed-but-garbled so the block
        // ordering stays consistent, with the interruption BER.
        if block.next_page() == ppa.page {
            // Force the program through the normal path, then garble.
            let placeholder = PageData::from_tag(noise);
            let _ = block.program(ppa.block, ppa.page, placeholder, Oob::user(Lba::new(0), 0));
        }
        if let PageState::Programmed { data, raw_ber, .. } = block.page_mut(ppa.page) {
            *data = data.garbled(noise);
            *raw_ber = raw_ber.saturating_add(ber);
            if *raw_ber > 0 {
                report.target_corrupted = Some(ppa);
            }
        }

        // Collateral damage to earlier pages on the same wordline.
        if pairing::endangers_earlier(kind, ppa.page) {
            for sib in pairing::earlier_siblings(kind, ppa.page) {
                // Disturbance severity falls with program progress: an
                // interrupt early in the upper-page program leaves the
                // shared cells mid-transition.
                let p_disturb = 0.85 * (1.0 - progress * 0.6);
                if !rng.chance(p_disturb) {
                    continue;
                }
                let disturb_ber = interrupted_ber(kind, 0.3 + progress * 0.5, rng);
                let sib_noise = rng.next_u64();
                if let PageState::Programmed { data, raw_ber, .. } = block.page_mut(sib) {
                    *raw_ber = raw_ber.saturating_add(disturb_ber);
                    if *raw_ber > ecc_limit {
                        // Beyond ECC: content effectively destroyed.
                        *data = data.garbled(sib_noise);
                        report.paired_corrupted.push(Ppa::new(ppa.block, sib));
                    }
                }
            }
        }
        self.stats.paired_corruptions += report.paired_corrupted.len() as u64;
        report
    }

    /// Models a power-loss interruption of an in-flight erase of `block`.
    /// The block is left in [`BlockState::NeedsErase`]: all contents are
    /// indeterminate and reads fail until it is erased again.
    ///
    /// # Panics
    ///
    /// Panics if `block` is outside the geometry.
    pub fn interrupt_erase(&mut self, block: u64) {
        assert!(
            block < self.geometry.blocks(),
            "block {block} outside geometry"
        );
        self.stats.interrupted_erases += 1;
        self.block_entry(block).mark_needs_erase();
    }

    /// Iterates all programmed pages in the array (used by FTL recovery).
    pub fn scan(&self) -> impl Iterator<Item = (Ppa, PageData, Oob, u32)> + '_ {
        self.blocks.iter().flat_map(|(&b, block)| {
            block
                .programmed_pages()
                .map(move |(p, data, oob, ber)| (Ppa::new(b, p), data, oob, ber))
        })
    }

    /// Number of blocks that have been touched (materialised).
    pub fn touched_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Order-independent digest of the array's durable state: every
    /// materialised block's wear and read-disturb counters plus the
    /// content descriptor, OOB record, and raw bit-error count of each
    /// programmed page. Two arrays with equal digests behave identically
    /// under every future operation (given equal RNG streams), so
    /// warm-snapshot capture/restore can be validated cheaply without a
    /// page-by-page comparison.
    pub fn state_digest(&self) -> u64 {
        use pfault_sim::checksum::mix64;
        let mut ids: Vec<u64> = self.blocks.keys().copied().collect();
        ids.sort_unstable();
        let mut h: u64 = 0x5EED_F1A5_4A88_11D7;
        for b in ids {
            let block = &self.blocks[&b];
            h = mix64(h, b);
            h = mix64(h, u64::from(block.erase_count()));
            h = mix64(h, block.reads_since_erase());
            h = mix64(h, block.next_page());
            for (page, data, oob, raw_ber) in block.programmed_pages() {
                h = mix64(h, page);
                h = mix64(h, data.tag);
                h = mix64(h, data.checksum);
                h = mix64(h, oob.seq);
                let (kind_tag, payload) = match oob.kind {
                    crate::oob::OobKind::User { lba } => (1u64, lba.index()),
                    crate::oob::OobKind::MapJournal { batch } => (2, batch),
                    crate::oob::OobKind::Checkpoint { checkpoint } => (3, checkpoint),
                };
                h = mix64(h, kind_tag);
                h = mix64(h, payload);
                h = mix64(h, u64::from(raw_ber));
            }
        }
        mix64(h, self.blocks.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlc_array() -> FlashArray {
        FlashArray::new(FlashGeometry::small_test(), CellKind::Mlc)
    }

    #[test]
    fn program_read_round_trip() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(1);
        let ppa = Ppa::new(0, 0);
        let d = PageData::from_tag(7);
        a.program(ppa, d, Oob::user(Lba::new(3), 1)).unwrap();
        match a.read(ppa, &mut rng) {
            ReadOutcome::Ok { data, oob, .. } => {
                assert_eq!(data, d);
                assert_eq!(oob.lba(), Some(Lba::new(3)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(a.stats().programs, 1);
        assert_eq!(a.stats().reads, 1);
    }

    #[test]
    fn read_of_untouched_page_is_erased() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(2);
        assert_eq!(a.read(Ppa::new(5, 3), &mut rng), ReadOutcome::Erased);
    }

    #[test]
    fn powered_off_rejects_operations() {
        let mut a = mlc_array();
        a.power_off();
        assert!(!a.is_powered());
        assert_eq!(
            a.program(
                Ppa::new(0, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 0)
            ),
            Err(FlashError::PoweredOff)
        );
        assert_eq!(a.erase(0), Err(FlashError::PoweredOff));
        a.power_on();
        assert!(a
            .program(
                Ppa::new(0, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 0)
            )
            .is_ok());
    }

    #[test]
    fn interrupted_program_corrupts_target() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(3);
        let ppa = Ppa::new(0, 0);
        let report = a.interrupt_program(ppa, 0.2, &mut rng);
        assert_eq!(report.target_corrupted, Some(ppa));
        // With MLC BCH-40 and an early interruption, the page must be
        // uncorrectable.
        assert_eq!(a.read(ppa, &mut rng), ReadOutcome::Uncorrectable);
    }

    #[test]
    fn interruption_is_deterministic_for_a_fixed_seed() {
        // The boundary sweeper replays the same cut across census, trial,
        // and minimizer sub-sweeps; identical RNG state must yield an
        // identical damage report every time.
        let run = |seed: u64| {
            let mut a = mlc_array();
            let mut rng = DetRng::new(seed);
            for page in 0..4 {
                a.program(
                    Ppa::new(0, page),
                    PageData::from_tag(page),
                    Oob::user(Lba::new(page), page),
                )
                .unwrap();
            }
            let report = a.interrupt_program(Ppa::new(0, 4), 0.5, &mut rng);
            (report, a.stats())
        };
        assert_eq!(run(9), run(9));
        assert_eq!(run(9).1.interrupted_programs, 1);
    }

    #[test]
    fn interrupted_upper_program_can_corrupt_lower_sibling() {
        // Program lower page 0, then interrupt the upper page 1 program
        // many times across seeds; the lower page must get corrupted in a
        // substantial fraction of runs.
        let mut hit = 0;
        for seed in 0..40 {
            let mut a = mlc_array();
            let mut rng = DetRng::new(seed);
            a.program(
                Ppa::new(0, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 1),
            )
            .unwrap();
            let report = a.interrupt_program(Ppa::new(0, 1), 0.1, &mut rng);
            if !report.paired_corrupted.is_empty() {
                assert_eq!(report.paired_corrupted, vec![Ppa::new(0, 0)]);
                assert_eq!(a.read(Ppa::new(0, 0), &mut rng), ReadOutcome::Uncorrectable);
                hit += 1;
            }
        }
        assert!(hit > 10, "paired corruption too rare: {hit}/40");
    }

    #[test]
    fn lower_page_interrupt_harms_nobody_else() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(5);
        let report = a.interrupt_program(Ppa::new(0, 0), 0.5, &mut rng);
        assert!(report.paired_corrupted.is_empty());
    }

    #[test]
    fn interrupted_erase_requires_reerase() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(6);
        a.program(
            Ppa::new(1, 0),
            PageData::from_tag(2),
            Oob::user(Lba::new(9), 1),
        )
        .unwrap();
        a.interrupt_erase(1);
        assert_eq!(a.block_state(1), BlockState::NeedsErase);
        assert_eq!(a.read(Ppa::new(1, 0), &mut rng), ReadOutcome::Uncorrectable);
        assert!(matches!(
            a.program(
                Ppa::new(1, 0),
                PageData::from_tag(3),
                Oob::user(Lba::new(9), 2)
            ),
            Err(FlashError::ProgramToDirtyPage { .. })
        ));
        a.erase(1).unwrap();
        assert_eq!(a.read(Ppa::new(1, 0), &mut rng), ReadOutcome::Erased);
    }

    #[test]
    fn scan_lists_programmed_pages() {
        let mut a = mlc_array();
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(10), 1),
        )
        .unwrap();
        a.program(
            Ppa::new(0, 1),
            PageData::from_tag(2),
            Oob::user(Lba::new(11), 2),
        )
        .unwrap();
        a.program(Ppa::new(2, 0), PageData::from_tag(3), Oob::journal(1, 3))
            .unwrap();
        let mut scanned: Vec<_> = a.scan().map(|(ppa, ..)| ppa).collect();
        scanned.sort();
        assert_eq!(
            scanned,
            vec![Ppa::new(0, 0), Ppa::new(0, 1), Ppa::new(2, 0)]
        );
        assert_eq!(a.touched_blocks(), 2);
    }

    #[test]
    fn ber_model_decreases_with_progress() {
        let mut rng = DetRng::new(7);
        let early: u32 = (0..50)
            .map(|_| interrupted_ber(CellKind::Mlc, 0.05, &mut rng))
            .sum();
        let late: u32 = (0..50)
            .map(|_| interrupted_ber(CellKind::Mlc, 0.95, &mut rng))
            .sum();
        assert!(early > late * 5, "early {early} vs late {late}");
    }

    #[test]
    fn tlc_interruption_is_harsher_than_slc() {
        let mut rng = DetRng::new(8);
        let slc: u32 = (0..50)
            .map(|_| interrupted_ber(CellKind::Slc, 0.2, &mut rng))
            .sum();
        let tlc: u32 = (0..50)
            .map(|_| interrupted_ber(CellKind::Tlc, 0.2, &mut rng))
            .sum();
        assert!(tlc > slc * 2);
    }

    #[test]
    fn worn_blocks_flicker_across_the_ecc_boundary() {
        // Pre-age a block to its budget: wear-induced raw errors sit near
        // the BCH correction strength, so reads intermittently fail —
        // exactly how marginal end-of-life pages behave.
        let mut a = mlc_array();
        let mut rng = DetRng::new(11);
        a.pre_age_block(0, 2_999);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        let uncorrectable = (0..200)
            .filter(|_| a.read(Ppa::new(0, 0), &mut rng) == ReadOutcome::Uncorrectable)
            .count();
        assert!(
            uncorrectable > 10,
            "EOL pages must fail sometimes: {uncorrectable}"
        );
        assert!(uncorrectable < 190, "EOL pages must also succeed sometimes");
    }

    #[test]
    fn fresh_blocks_read_cleanly_despite_reliability_model() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(12);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        for _ in 0..100 {
            assert!(matches!(
                a.read(Ppa::new(0, 0), &mut rng),
                ReadOutcome::Ok { .. }
            ));
        }
    }

    #[test]
    fn read_disturb_counter_tracks_and_resets() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(13);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        for _ in 0..50 {
            let _ = a.read(Ppa::new(0, 0), &mut rng);
        }
        // Heavily disturbed + moderately worn: errors creep past a weak
        // ECC. Use the reliability model directly for the threshold
        // check, then confirm erase resets the counter via a clean read.
        let mean = a.reliability().mean_extra_ber(0, 50);
        assert!(mean < 1.0, "50 reads are harmless: {mean}");
        let mean_heavy = a.reliability().mean_extra_ber(0, 10_000_000);
        assert!(
            mean_heavy > 100.0,
            "ten million reads are not: {mean_heavy}"
        );
        a.erase(0).unwrap();
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(2),
            Oob::user(Lba::new(0), 2),
        )
        .unwrap();
        assert!(matches!(
            a.read(Ppa::new(0, 0), &mut rng),
            ReadOutcome::Ok { .. }
        ));
    }

    #[test]
    fn pre_age_respects_wear_budget() {
        let mut a = mlc_array();
        a.pre_age_block(1, 100);
        assert_eq!(a.erase_count(1), 100);
        // A pre-aged block still programs (ordering reset by erase).
        a.program(
            Ppa::new(1, 0),
            PageData::from_tag(5),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
    }

    #[test]
    fn program_duration_depends_on_page_parity() {
        let a = mlc_array();
        assert!(a.program_duration(Ppa::new(0, 1)) > a.program_duration(Ppa::new(0, 0)));
    }

    #[test]
    fn retry_ladder_rescues_marginal_eol_pages() {
        // Same end-of-life setup as the flicker test: wear-induced errors
        // sit at the BCH boundary. The ladder's shifted thresholds cancel
        // the drift component, so every uncorrectable nominal read must be
        // rescued within the ladder.
        let mut a = mlc_array();
        let mut rng = DetRng::new(11);
        a.pre_age_block(0, 2_999);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        for _ in 0..100 {
            assert!(matches!(
                a.read_with_retries(Ppa::new(0, 0), 4, &mut rng),
                ReadOutcome::Ok { .. }
            ));
        }
        let stats = a.stats();
        assert!(stats.read_retries > 0, "EOL pages must hit the ladder");
        assert!(stats.retry_recovered_reads > 0);
        assert!(stats.retry_recovered_reads <= stats.read_retries);
    }

    #[test]
    fn retry_ladder_is_free_on_clean_pages() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(12);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        assert!(matches!(
            a.read_with_retries(Ppa::new(0, 0), 4, &mut rng),
            ReadOutcome::Ok { .. }
        ));
        assert_eq!(a.stats().read_retries, 0);
        assert_eq!(a.stats().reads, 1, "clean read takes a single rung");
    }

    #[test]
    fn retry_ladder_cannot_rescue_torn_programs() {
        // An early-interrupted program leaves intrinsic raw errors far
        // beyond ECC strength; shifting the read reference does not help.
        let mut a = mlc_array();
        let mut rng = DetRng::new(3);
        let ppa = Ppa::new(0, 0);
        a.interrupt_program(ppa, 0.1, &mut rng);
        assert_eq!(
            a.read_with_retries(ppa, 6, &mut rng),
            ReadOutcome::Uncorrectable
        );
        assert_eq!(a.stats().read_retries, 6, "every rung must be walked");
        assert_eq!(a.stats().retry_recovered_reads, 0);
    }

    #[test]
    fn retry_ladder_is_deterministic() {
        let run = |seed: u64| {
            let mut a = mlc_array();
            let mut rng = DetRng::new(seed);
            a.pre_age_block(0, 2_999);
            a.program(
                Ppa::new(0, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 1),
            )
            .unwrap();
            let outcomes: Vec<ReadOutcome> = (0..50)
                .map(|_| a.read_with_retries(Ppa::new(0, 0), 3, &mut rng))
                .collect();
            (outcomes, a.stats())
        };
        assert_eq!(run(21), run(21));
    }
}
