//! The flash array: device-scale chip operations, including power-loss
//! interruption.
//!
//! [`FlashArray`] stores sparse block state in arena form (blocks
//! materialise on first touch into contiguous buffers — see
//! [`crate::arena::BlockArena`]), enforces NAND constraints via the shared
//! block-op logic in [`crate::block`], passes reads through the ECC model,
//! and — centrally for this project — exposes
//! [`FlashArray::interrupt_program`] and [`FlashArray::interrupt_erase`],
//! which model what a supply-voltage collapse does to an operation in
//! flight.
//!
//! # Copy-on-write images
//!
//! An array is either *live* (all state in its private overlay arena) or
//! layered over a **frozen base image**: [`FlashArray::flatten`] merges
//! the current state into an immutable [`Arc`]-shared arena and empties
//! the overlay. Cloning a flattened array is a reference-count bump plus
//! an empty overlay — this is what makes warm-snapshot trial cloning
//! cheap. Each clone then materialises only the blocks it actually
//! touches (writes *and* reads — reads advance the disturb counter) by
//! copying them up from the base; blocks never touched before stay
//! virtual. Restore = drop the clone.
//!
//! Determinism: block *materialisation order* is observable (scan order
//! drives RNG draws in FTL full-scan recovery), so the overlay scheme
//! preserves it exactly — [`FlashArray::scan`] walks base slots first
//! (overlay content substituted where a block was copied up), then
//! overlay-only blocks in their own materialisation order, which is the
//! order a cold-built array touching the same blocks in the same sequence
//! would produce.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use pfault_sim::{DetRng, Lba};

use crate::arena::BlockArena;
use crate::block::{self, Block, BlockMeta, BlockState, PageState};
use crate::cell::CellKind;
use crate::ecc::{self, EccOutcome, EccScheme};
use crate::error::FlashError;
use crate::geometry::{FlashGeometry, Ppa};
use crate::oob::Oob;
use crate::pairing;
use crate::reliability::ReliabilityModel;
use crate::timing::FlashTiming;

pub use crate::block::PageData;

/// Result of reading one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Page decoded cleanly.
    Ok {
        /// Content descriptor as stored.
        data: PageData,
        /// Spare-area metadata.
        oob: Oob,
        /// Raw bit errors the ECC repaired.
        repaired: u32,
    },
    /// Raw errors exceeded ECC strength; no data returned.
    Uncorrectable,
    /// The page is erased.
    Erased,
}

/// What a power-loss interruption did to the array.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InterruptReport {
    /// The page whose program was cut short, if it was left corrupted.
    pub target_corrupted: Option<Ppa>,
    /// Earlier wordline siblings whose data was disturbed beyond repair.
    pub paired_corrupted: Vec<Ppa>,
}

/// Cumulative operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlashStats {
    /// Completed page programs.
    pub programs: u64,
    /// Completed page reads.
    pub reads: u64,
    /// Completed block erases.
    pub erases: u64,
    /// Programs cut short by power loss.
    pub interrupted_programs: u64,
    /// Erases cut short by power loss.
    pub interrupted_erases: u64,
    /// Paired pages corrupted as collateral damage.
    pub paired_corruptions: u64,
    /// Reads that needed ECC repair (repaired at least one bit).
    pub ecc_corrected_reads: u64,
    /// Total bits repaired by ECC across all reads.
    pub ecc_corrected_bits: u64,
    /// Reads the ECC could not correct.
    pub ecc_uncorrectable_reads: u64,
    /// Read-retry ladder attempts issued after an uncorrectable nominal
    /// read (each shifted-threshold re-read counts once).
    pub read_retries: u64,
    /// Reads rescued by the retry ladder: uncorrectable at the nominal
    /// threshold but decoded at a shifted one.
    pub retry_recovered_reads: u64,
}

/// A simulated NAND flash array.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct FlashArray {
    geometry: FlashGeometry,
    kind: CellKind,
    ecc: EccScheme,
    timing: FlashTiming,
    wear_budget: u32,
    baseline_wear: u32,
    reliability: ReliabilityModel,
    /// Frozen shared image this array is layered over, if any.
    base: Option<Arc<BlockArena>>,
    /// Private overlay: blocks materialised (or copied up) by this array.
    local: BlockArena,
    /// Overlay blocks that do **not** shadow a base block.
    overlay_new: usize,
    powered: bool,
    stats: FlashStats,
}

/// Raw bit errors left in a page whose program was interrupted at
/// `progress`, per 4 KiB page. Earlier interruption → more errors; even a
/// very late interruption leaves a few (aborted final verify).
fn interrupted_ber(kind: CellKind, progress: f64, rng: &mut DetRng) -> u32 {
    let progress = progress.clamp(0.0, 1.0);
    // Scale: a 4 KiB page has 32768 bits; a fully aborted MLC program
    // scatters errors over a large fraction of cells.
    let severity = (1.0 - progress).powi(2);
    let base = match kind {
        CellKind::Slc => 600.0,
        CellKind::Mlc => 2_000.0,
        CellKind::Tlc => 5_000.0,
    };
    let mean = 20.0 + base * severity;
    // Geometric-ish spread around the mean.
    let jitter = 0.5 + rng.unit_f64();
    (mean * jitter) as u32
}

impl FlashArray {
    /// Creates a powered-on array with default ECC and timing for `kind`.
    pub fn new(geometry: FlashGeometry, kind: CellKind) -> Self {
        let ecc = match kind {
            CellKind::Slc => EccScheme::Bch { t: 8 },
            CellKind::Mlc => EccScheme::bch_mlc(),
            CellKind::Tlc => EccScheme::ldpc_tlc(),
        };
        FlashArray::with_ecc(geometry, kind, ecc)
    }

    /// Creates an array with an explicit ECC scheme.
    pub fn with_ecc(geometry: FlashGeometry, kind: CellKind, ecc: EccScheme) -> Self {
        FlashArray {
            geometry,
            kind,
            ecc,
            timing: FlashTiming::for_kind(kind),
            wear_budget: Block::DEFAULT_WEAR_BUDGET,
            baseline_wear: 0,
            reliability: ReliabilityModel::for_kind(kind),
            base: None,
            local: BlockArena::new(geometry.pages_per_block()),
            overlay_new: 0,
            powered: true,
            stats: FlashStats::default(),
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> FlashGeometry {
        self.geometry
    }

    /// Cell technology.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// ECC scheme in use.
    pub fn ecc(&self) -> EccScheme {
        self.ecc
    }

    /// Operation timings.
    pub fn timing(&self) -> FlashTiming {
        self.timing
    }

    /// Operation counters.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// The endurance/disturb reliability model in effect.
    pub fn reliability(&self) -> ReliabilityModel {
        self.reliability
    }

    /// Overrides the reliability model (aging studies / ablations).
    pub fn set_reliability(&mut self, model: ReliabilityModel) {
        self.reliability = model;
    }

    /// Sets the wear every not-yet-touched block materialises with, as if
    /// the whole device had already served that many program/erase cycles
    /// (end-of-life campaigns). Already-materialised blocks keep their
    /// counts.
    pub fn set_baseline_wear(&mut self, erase_count: u32) {
        self.baseline_wear = erase_count;
    }

    /// Pre-ages a block to `erase_count` cycles, as if it had served that
    /// many program/erase rounds before the experiment (end-of-life
    /// studies).
    ///
    /// # Panics
    ///
    /// Panics if the block is outside the geometry.
    pub fn pre_age_block(&mut self, block: u64, erase_count: u32) {
        assert!(block < self.geometry.blocks(), "block outside geometry");
        let budget = self.wear_budget;
        let slot = self.materialise(block);
        let (meta, pages) = self.local.block_mut(slot);
        for _ in meta.erase_count..erase_count.min(budget) {
            let _ = block::erase_block(meta, pages, block, budget);
        }
    }

    /// Whether the chip currently has power.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Removes power. Subsequent operations fail with
    /// [`FlashError::PoweredOff`] until [`FlashArray::power_on`].
    pub fn power_off(&mut self) {
        self.powered = false;
    }

    /// Restores power.
    pub fn power_on(&mut self) {
        self.powered = true;
    }

    /// Overlay slot for `block`, copying it up from the base image or
    /// materialising it fresh as needed.
    fn materialise(&mut self, block: u64) -> usize {
        if let Some(slot) = self.local.slot_of(block) {
            return slot;
        }
        if let Some(base) = self.base.as_deref() {
            if let Some(bs) = base.slot_of(block) {
                return self.local.push_copy(block, *base.meta(bs), base.pages(bs));
            }
        }
        self.overlay_new += 1;
        self.local.push_erased(block, self.baseline_wear)
    }

    /// Read-only view of `block`'s effective state (overlay wins over
    /// base), without materialising anything.
    fn peek(&self, block: u64) -> Option<(&BlockMeta, &[PageState])> {
        if let Some(slot) = self.local.slot_of(block) {
            return Some((self.local.meta(slot), self.local.pages(slot)));
        }
        let base = self.base.as_deref()?;
        let slot = base.slot_of(block)?;
        Some((base.meta(slot), base.pages(slot)))
    }

    /// Next page the given block expects to program (0 for untouched
    /// blocks).
    pub fn next_page_of(&self, block: u64) -> u64 {
        self.peek(block).map_or(0, |(m, _)| m.next_page)
    }

    /// Whether `block` is fully programmed.
    pub fn block_full(&self, block: u64) -> bool {
        self.peek(block)
            .is_some_and(|(m, _)| m.next_page as usize >= self.geometry.pages_per_block() as usize)
    }

    /// Lifecycle state of `block`.
    pub fn block_state(&self, block: u64) -> BlockState {
        self.peek(block).map_or(BlockState::Open, |(m, _)| m.state)
    }

    /// Erase count of `block`.
    pub fn erase_count(&self, block: u64) -> u32 {
        self.peek(block).map_or(0, |(m, _)| m.erase_count)
    }

    /// Programs a page to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`FlashError`] for power, addressing, ordering, and wear
    /// violations.
    pub fn program(&mut self, ppa: Ppa, data: PageData, oob: Oob) -> Result<(), FlashError> {
        if !self.powered {
            return Err(FlashError::PoweredOff);
        }
        if !self.geometry.contains(ppa) {
            return Err(FlashError::BadAddress {
                block: ppa.block,
                page: ppa.page,
            });
        }
        let slot = self.materialise(ppa.block);
        let (meta, pages) = self.local.block_mut(slot);
        block::program_page(meta, pages, ppa.block, ppa.page, data, oob)?;
        self.stats.programs += 1;
        Ok(())
    }

    /// Duration a program of `ppa` takes (depends on lower/upper page).
    pub fn program_duration(&self, ppa: Ppa) -> pfault_sim::SimDuration {
        self.timing.program_duration(self.kind, ppa.page)
    }

    /// Reads a page through the ECC stage.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::PoweredOff`] or [`FlashError::BadAddress`];
    /// data-level problems are reported in the [`ReadOutcome`], not as
    /// errors.
    pub fn read(&mut self, ppa: Ppa, rng: &mut DetRng) -> ReadOutcome {
        self.read_once(ppa, rng, 1.0)
    }

    /// Reads a page, retrying with progressively shifted read-reference
    /// voltages when the nominal read is uncorrectable — the retry ladder
    /// real controllers walk before declaring a page lost.
    ///
    /// Attempt `k` of `retries` scales the wear/retention/disturb error
    /// component by `(retries - k) / retries`: a shifted threshold tracks
    /// the drifted cell distributions, so drift-induced errors shrink
    /// while *intrinsic* damage (an interrupted program's garbled cells)
    /// stays — the ladder rescues marginal pages, never torn ones.
    ///
    /// Each rung issues a real array read (counts toward read disturb and
    /// [`FlashStats::reads`]); rungs are tallied in
    /// [`FlashStats::read_retries`] and rescues in
    /// [`FlashStats::retry_recovered_reads`].
    pub fn read_with_retries(&mut self, ppa: Ppa, retries: u32, rng: &mut DetRng) -> ReadOutcome {
        let first = self.read_once(ppa, rng, 1.0);
        if first != ReadOutcome::Uncorrectable || retries == 0 {
            return first;
        }
        for attempt in 1..=retries {
            self.stats.read_retries += 1;
            let scale = f64::from(retries - attempt) / f64::from(retries);
            let outcome = self.read_once(ppa, rng, scale);
            if outcome != ReadOutcome::Uncorrectable {
                self.stats.retry_recovered_reads += 1;
                return outcome;
            }
        }
        ReadOutcome::Uncorrectable
    }

    /// One read through the ECC stage with the extra (drift-induced) error
    /// component scaled by `extra_scale` (1.0 = nominal read reference).
    ///
    /// A read of a block present only in the base image copies the block
    /// up into the overlay (the disturb counter advances); a read of a
    /// block no layer has touched stays virtual and reports `Erased`.
    fn read_once(&mut self, ppa: Ppa, rng: &mut DetRng, extra_scale: f64) -> ReadOutcome {
        assert!(self.powered, "read attempted while powered off");
        assert!(
            self.geometry.contains(ppa),
            "read of {ppa} outside geometry"
        );
        self.stats.reads += 1;
        if self.peek(ppa.block).is_none() {
            return ReadOutcome::Erased;
        }
        let slot = self.materialise(ppa.block);
        let (meta, pages) = self.local.block_mut(slot);
        meta.reads_since_erase += 1;
        if meta.state == BlockState::NeedsErase {
            return ReadOutcome::Uncorrectable;
        }
        let wear = meta.erase_count;
        let disturb = meta.reads_since_erase;
        match pages[ppa.page as usize] {
            PageState::Erased => ReadOutcome::Erased,
            PageState::Programmed { data, oob, raw_ber } => {
                let extra = self.reliability.sample_extra_ber(wear, disturb, rng);
                let extra = if extra_scale >= 1.0 {
                    extra
                } else {
                    (f64::from(extra) * extra_scale) as u32
                };
                let raw_ber = raw_ber.saturating_add(extra);
                match ecc::decode(self.ecc, raw_ber, rng) {
                    EccOutcome::Corrected { repaired } => {
                        if repaired > 0 {
                            self.stats.ecc_corrected_reads += 1;
                            self.stats.ecc_corrected_bits += u64::from(repaired);
                        }
                        // A garbled payload still "succeeds" from the
                        // chip's point of view: the checksum mismatch is
                        // caught later by the Analyzer.
                        ReadOutcome::Ok {
                            data,
                            oob,
                            repaired,
                        }
                    }
                    EccOutcome::Uncorrectable => {
                        self.stats.ecc_uncorrectable_reads += 1;
                        ReadOutcome::Uncorrectable
                    }
                }
            }
        }
    }

    /// Erases a block to completion.
    ///
    /// # Errors
    ///
    /// Propagates power, addressing and wear errors.
    pub fn erase(&mut self, block: u64) -> Result<(), FlashError> {
        if !self.powered {
            return Err(FlashError::PoweredOff);
        }
        if block >= self.geometry.blocks() {
            return Err(FlashError::BadAddress { block, page: 0 });
        }
        let budget = self.wear_budget;
        let slot = self.materialise(block);
        let (meta, pages) = self.local.block_mut(slot);
        block::erase_block(meta, pages, block, budget)?;
        self.stats.erases += 1;
        Ok(())
    }

    /// Models a power-loss interruption of an in-flight program of `ppa` at
    /// fractional `progress`.
    ///
    /// The target page is left programmed with garbled content and a raw
    /// bit-error count drawn from the interruption model. With probability
    /// scaling in the page's wordline position, earlier sibling pages
    /// (already acknowledged data!) absorb threshold-voltage disturbance;
    /// if the disturbance exceeds the ECC strength the sibling is counted
    /// as corrupted in the report.
    ///
    /// The fault-space sweeper (`pfault_platform::sweep`) drives this
    /// with `progress` derived from its cut phase: a cut at a program
    /// span's *start* arrives with progress 0, a *mid* cut lands partway
    /// through, and a cut exactly at the span's *end* never reaches this
    /// function at all — the event kernel's left-closed boundary lets the
    /// program complete first.
    ///
    /// # Panics
    ///
    /// Panics if `ppa` is outside the geometry.
    pub fn interrupt_program(
        &mut self,
        ppa: Ppa,
        progress: f64,
        rng: &mut DetRng,
    ) -> InterruptReport {
        assert!(self.geometry.contains(ppa), "{ppa} outside geometry");
        self.stats.interrupted_programs += 1;
        let kind = self.kind;
        let ecc_limit = match self.ecc {
            EccScheme::None => 0,
            EccScheme::Bch { t } => t,
            EccScheme::Ldpc { t } => 2 * t,
        };
        let mut report = InterruptReport::default();
        let ber = interrupted_ber(kind, progress, rng);
        let noise = rng.next_u64();
        let slot = self.materialise(ppa.block);
        let (meta, pages) = self.local.block_mut(slot);

        // The target page: record it as programmed-but-garbled so the block
        // ordering stays consistent, with the interruption BER.
        if meta.next_page == ppa.page {
            // Force the program through the normal path, then garble.
            let placeholder = PageData::from_tag(noise);
            let _ = block::program_page(
                meta,
                pages,
                ppa.block,
                ppa.page,
                placeholder,
                Oob::user(Lba::new(0), 0),
            );
        }
        if let PageState::Programmed { data, raw_ber, .. } = &mut pages[ppa.page as usize] {
            *data = data.garbled(noise);
            *raw_ber = raw_ber.saturating_add(ber);
            if *raw_ber > 0 {
                report.target_corrupted = Some(ppa);
            }
        }

        // Collateral damage to earlier pages on the same wordline.
        if pairing::endangers_earlier(kind, ppa.page) {
            for sib in pairing::earlier_siblings(kind, ppa.page) {
                // Disturbance severity falls with program progress: an
                // interrupt early in the upper-page program leaves the
                // shared cells mid-transition.
                let p_disturb = 0.85 * (1.0 - progress * 0.6);
                if !rng.chance(p_disturb) {
                    continue;
                }
                let disturb_ber = interrupted_ber(kind, 0.3 + progress * 0.5, rng);
                let sib_noise = rng.next_u64();
                if let PageState::Programmed { data, raw_ber, .. } = &mut pages[sib as usize] {
                    *raw_ber = raw_ber.saturating_add(disturb_ber);
                    if *raw_ber > ecc_limit {
                        // Beyond ECC: content effectively destroyed.
                        *data = data.garbled(sib_noise);
                        report.paired_corrupted.push(Ppa::new(ppa.block, sib));
                    }
                }
            }
        }
        self.stats.paired_corruptions += report.paired_corrupted.len() as u64;
        report
    }

    /// Models a power-loss interruption of an in-flight erase of `block`.
    /// The block is left in [`BlockState::NeedsErase`]: all contents are
    /// indeterminate and reads fail until it is erased again.
    ///
    /// # Panics
    ///
    /// Panics if `block` is outside the geometry.
    pub fn interrupt_erase(&mut self, block: u64) {
        assert!(
            block < self.geometry.blocks(),
            "block {block} outside geometry"
        );
        self.stats.interrupted_erases += 1;
        let slot = self.materialise(block);
        self.local.meta_mut(slot).state = BlockState::NeedsErase;
    }

    /// Iterates all programmed pages in the array (used by FTL recovery),
    /// in materialisation order: base-image blocks first (overlay content
    /// substituted where a block was copied up), then overlay-only blocks.
    pub fn scan(&self) -> impl Iterator<Item = (Ppa, PageData, Oob, u32)> + '_ {
        let base = self.base.as_deref();
        let base_blocks = base.into_iter().flat_map(move |b| {
            (0..b.len()).map(move |s| {
                let id = b.id_at(s);
                match self.local.slot_of(id) {
                    Some(ls) => (id, self.local.pages(ls)),
                    None => (id, b.pages(s)),
                }
            })
        });
        let overlay_only = self.local.iter().filter_map(move |(id, _, pages)| {
            if base.is_some_and(|b| b.slot_of(id).is_some()) {
                None
            } else {
                Some((id, pages))
            }
        });
        base_blocks.chain(overlay_only).flat_map(|(id, pages)| {
            block::programmed_pages(pages)
                .map(move |(p, data, oob, ber)| (Ppa::new(id, p), data, oob, ber))
        })
    }

    /// Number of distinct blocks that have been touched (materialised in
    /// either layer).
    pub fn touched_blocks(&self) -> usize {
        self.base.as_deref().map_or(0, BlockArena::len) + self.overlay_new
    }

    /// Number of blocks in this array's private overlay (copied up or
    /// freshly materialised). Zero right after [`FlashArray::flatten`] or
    /// for a clone that has not been touched yet.
    pub fn overlay_blocks(&self) -> usize {
        self.local.len()
    }

    /// Whether this array is layered over the same frozen base image as
    /// `other` (shared-memory diagnostics for snapshot bookkeeping).
    pub fn shares_base_with(&self, other: &FlashArray) -> bool {
        match (&self.base, &other.base) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Freezes the array's current state into an immutable shared base
    /// image and empties the overlay. Afterwards `clone()` is cheap (the
    /// base is reference-counted) and every clone copies up only the
    /// blocks it touches. Behaviour is unchanged: digest, scan order and
    /// all future operations are identical to the un-flattened array.
    pub fn flatten(&mut self) {
        let ppb = self.geometry.pages_per_block();
        if self.local.is_empty() {
            if self.base.is_none() {
                self.base = Some(Arc::new(BlockArena::new(ppb)));
            }
            return;
        }
        if self.base.as_deref().is_none_or(BlockArena::is_empty) {
            // Cold array: the overlay IS the image; freeze it wholesale.
            let local = std::mem::replace(&mut self.local, BlockArena::new(ppb));
            self.base = Some(Arc::new(local));
            self.overlay_new = 0;
            return;
        }
        let old_base = self.base.take().expect("checked non-empty above");
        let mut merged = BlockArena::new(ppb);
        for s in 0..old_base.len() {
            let id = old_base.id_at(s);
            match self.local.slot_of(id) {
                Some(ls) => merged.push_copy(id, *self.local.meta(ls), self.local.pages(ls)),
                None => merged.push_copy(id, *old_base.meta(s), old_base.pages(s)),
            };
        }
        for (id, meta, pages) in self.local.iter() {
            if old_base.slot_of(id).is_none() {
                merged.push_copy(id, *meta, pages);
            }
        }
        self.base = Some(Arc::new(merged));
        self.local = BlockArena::new(ppb);
        self.overlay_new = 0;
    }

    /// Whether the array's whole state lives in a frozen base image (its
    /// overlay is empty), i.e. cloning it is copy-on-write cheap.
    pub fn is_flattened(&self) -> bool {
        self.base.is_some() && self.local.is_empty()
    }

    /// Re-expresses this **flattened** array as `base`'s frozen image plus
    /// an overlay holding only the blocks that differ — the delta-snapshot
    /// representation for sweep points sharing a warm prefix.
    ///
    /// Requires both arrays flattened and this array to be a *descendant*
    /// of `base`: `base`'s materialisation order must be a prefix of this
    /// array's (true whenever this state was evolved from `base` by
    /// running more work, since blocks only ever append). That condition
    /// keeps scan order — and hence recovery RNG draws — bit-identical.
    /// Returns `false` and leaves the array untouched when it does not
    /// hold; callers then simply keep the full image.
    pub fn rebase_onto(&mut self, base: &FlashArray) -> bool {
        if self.geometry != base.geometry {
            return false; // slot indexing would not line up
        }
        if !self.is_flattened() || !base.is_flattened() {
            return false;
        }
        let mine = self.base.clone().expect("flattened");
        let theirs = base.base.clone().expect("flattened");
        if theirs.len() > mine.len() {
            return false;
        }
        for s in 0..theirs.len() {
            if mine.id_at(s) != theirs.id_at(s) {
                return false;
            }
        }
        let mut overlay = BlockArena::new(self.geometry.pages_per_block());
        let mut fresh = 0usize;
        for s in 0..mine.len() {
            let id = mine.id_at(s);
            if s < theirs.len() {
                if theirs.block_equals(s, mine.meta(s), mine.pages(s)) {
                    continue;
                }
                overlay.push_copy(id, *mine.meta(s), mine.pages(s));
            } else {
                overlay.push_copy(id, *mine.meta(s), mine.pages(s));
                fresh += 1;
            }
        }
        self.base = Some(theirs);
        self.local = overlay;
        self.overlay_new = fresh;
        true
    }

    /// Order-independent digest of the array's durable state: every
    /// materialised block's wear and read-disturb counters plus the
    /// content descriptor, OOB record, and raw bit-error count of each
    /// programmed page. Two arrays with equal digests behave identically
    /// under every future operation (given equal RNG streams), so
    /// warm-snapshot capture/restore can be validated cheaply without a
    /// page-by-page comparison.
    pub fn state_digest(&self) -> u64 {
        use pfault_sim::checksum::mix64;
        let mut ids: Vec<u64> = Vec::with_capacity(self.touched_blocks());
        if let Some(b) = self.base.as_deref() {
            ids.extend(b.iter().map(|(id, ..)| id));
        }
        ids.extend(self.local.iter().filter_map(|(id, ..)| {
            let shadowed = self
                .base
                .as_deref()
                .is_some_and(|b| b.slot_of(id).is_some());
            (!shadowed).then_some(id)
        }));
        ids.sort_unstable();
        let mut h: u64 = 0x5EED_F1A5_4A88_11D7;
        for id in ids {
            let (meta, pages) = self.peek(id).expect("id came from a layer");
            h = mix64(h, id);
            h = mix64(h, u64::from(meta.erase_count));
            h = mix64(h, meta.reads_since_erase);
            h = mix64(h, meta.next_page);
            for (page, data, oob, raw_ber) in block::programmed_pages(pages) {
                h = mix64(h, page);
                h = mix64(h, data.tag);
                h = mix64(h, data.checksum);
                h = mix64(h, oob.seq);
                let (kind_tag, payload) = match oob.kind {
                    crate::oob::OobKind::User { lba } => (1u64, lba.index()),
                    crate::oob::OobKind::MapJournal { batch } => (2, batch),
                    crate::oob::OobKind::Checkpoint { checkpoint } => (3, checkpoint),
                };
                h = mix64(h, kind_tag);
                h = mix64(h, payload);
                h = mix64(h, u64::from(raw_ber));
            }
        }
        mix64(h, self.touched_blocks() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlc_array() -> FlashArray {
        FlashArray::new(FlashGeometry::small_test(), CellKind::Mlc)
    }

    #[test]
    fn program_read_round_trip() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(1);
        let ppa = Ppa::new(0, 0);
        let d = PageData::from_tag(7);
        a.program(ppa, d, Oob::user(Lba::new(3), 1)).unwrap();
        match a.read(ppa, &mut rng) {
            ReadOutcome::Ok { data, oob, .. } => {
                assert_eq!(data, d);
                assert_eq!(oob.lba(), Some(Lba::new(3)));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(a.stats().programs, 1);
        assert_eq!(a.stats().reads, 1);
    }

    #[test]
    fn read_of_untouched_page_is_erased() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(2);
        assert_eq!(a.read(Ppa::new(5, 3), &mut rng), ReadOutcome::Erased);
    }

    #[test]
    fn powered_off_rejects_operations() {
        let mut a = mlc_array();
        a.power_off();
        assert!(!a.is_powered());
        assert_eq!(
            a.program(
                Ppa::new(0, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 0)
            ),
            Err(FlashError::PoweredOff)
        );
        assert_eq!(a.erase(0), Err(FlashError::PoweredOff));
        a.power_on();
        assert!(a
            .program(
                Ppa::new(0, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 0)
            )
            .is_ok());
    }

    #[test]
    fn interrupted_program_corrupts_target() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(3);
        let ppa = Ppa::new(0, 0);
        let report = a.interrupt_program(ppa, 0.2, &mut rng);
        assert_eq!(report.target_corrupted, Some(ppa));
        // With MLC BCH-40 and an early interruption, the page must be
        // uncorrectable.
        assert_eq!(a.read(ppa, &mut rng), ReadOutcome::Uncorrectable);
    }

    #[test]
    fn interruption_is_deterministic_for_a_fixed_seed() {
        // The boundary sweeper replays the same cut across census, trial,
        // and minimizer sub-sweeps; identical RNG state must yield an
        // identical damage report every time.
        let run = |seed: u64| {
            let mut a = mlc_array();
            let mut rng = DetRng::new(seed);
            for page in 0..4 {
                a.program(
                    Ppa::new(0, page),
                    PageData::from_tag(page),
                    Oob::user(Lba::new(page), page),
                )
                .unwrap();
            }
            let report = a.interrupt_program(Ppa::new(0, 4), 0.5, &mut rng);
            (report, a.stats())
        };
        assert_eq!(run(9), run(9));
        assert_eq!(run(9).1.interrupted_programs, 1);
    }

    #[test]
    fn interrupted_upper_program_can_corrupt_lower_sibling() {
        // Program lower page 0, then interrupt the upper page 1 program
        // many times across seeds; the lower page must get corrupted in a
        // substantial fraction of runs.
        let mut hit = 0;
        for seed in 0..40 {
            let mut a = mlc_array();
            let mut rng = DetRng::new(seed);
            a.program(
                Ppa::new(0, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 1),
            )
            .unwrap();
            let report = a.interrupt_program(Ppa::new(0, 1), 0.1, &mut rng);
            if !report.paired_corrupted.is_empty() {
                assert_eq!(report.paired_corrupted, vec![Ppa::new(0, 0)]);
                assert_eq!(a.read(Ppa::new(0, 0), &mut rng), ReadOutcome::Uncorrectable);
                hit += 1;
            }
        }
        assert!(hit > 10, "paired corruption too rare: {hit}/40");
    }

    #[test]
    fn lower_page_interrupt_harms_nobody_else() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(5);
        let report = a.interrupt_program(Ppa::new(0, 0), 0.5, &mut rng);
        assert!(report.paired_corrupted.is_empty());
    }

    #[test]
    fn interrupted_erase_requires_reerase() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(6);
        a.program(
            Ppa::new(1, 0),
            PageData::from_tag(2),
            Oob::user(Lba::new(9), 1),
        )
        .unwrap();
        a.interrupt_erase(1);
        assert_eq!(a.block_state(1), BlockState::NeedsErase);
        assert_eq!(a.read(Ppa::new(1, 0), &mut rng), ReadOutcome::Uncorrectable);
        assert!(matches!(
            a.program(
                Ppa::new(1, 0),
                PageData::from_tag(3),
                Oob::user(Lba::new(9), 2)
            ),
            Err(FlashError::ProgramToDirtyPage { .. })
        ));
        a.erase(1).unwrap();
        assert_eq!(a.read(Ppa::new(1, 0), &mut rng), ReadOutcome::Erased);
    }

    #[test]
    fn scan_lists_programmed_pages() {
        let mut a = mlc_array();
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(10), 1),
        )
        .unwrap();
        a.program(
            Ppa::new(0, 1),
            PageData::from_tag(2),
            Oob::user(Lba::new(11), 2),
        )
        .unwrap();
        a.program(Ppa::new(2, 0), PageData::from_tag(3), Oob::journal(1, 3))
            .unwrap();
        let mut scanned: Vec<_> = a.scan().map(|(ppa, ..)| ppa).collect();
        scanned.sort();
        assert_eq!(
            scanned,
            vec![Ppa::new(0, 0), Ppa::new(0, 1), Ppa::new(2, 0)]
        );
        assert_eq!(a.touched_blocks(), 2);
    }

    #[test]
    fn ber_model_decreases_with_progress() {
        let mut rng = DetRng::new(7);
        let early: u32 = (0..50)
            .map(|_| interrupted_ber(CellKind::Mlc, 0.05, &mut rng))
            .sum();
        let late: u32 = (0..50)
            .map(|_| interrupted_ber(CellKind::Mlc, 0.95, &mut rng))
            .sum();
        assert!(early > late * 5, "early {early} vs late {late}");
    }

    #[test]
    fn tlc_interruption_is_harsher_than_slc() {
        let mut rng = DetRng::new(8);
        let slc: u32 = (0..50)
            .map(|_| interrupted_ber(CellKind::Slc, 0.2, &mut rng))
            .sum();
        let tlc: u32 = (0..50)
            .map(|_| interrupted_ber(CellKind::Tlc, 0.2, &mut rng))
            .sum();
        assert!(tlc > slc * 2);
    }

    #[test]
    fn worn_blocks_flicker_across_the_ecc_boundary() {
        // Pre-age a block to its budget: wear-induced raw errors sit near
        // the BCH correction strength, so reads intermittently fail —
        // exactly how marginal end-of-life pages behave.
        let mut a = mlc_array();
        let mut rng = DetRng::new(11);
        a.pre_age_block(0, 2_999);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        let uncorrectable = (0..200)
            .filter(|_| a.read(Ppa::new(0, 0), &mut rng) == ReadOutcome::Uncorrectable)
            .count();
        assert!(
            uncorrectable > 10,
            "EOL pages must fail sometimes: {uncorrectable}"
        );
        assert!(uncorrectable < 190, "EOL pages must also succeed sometimes");
    }

    #[test]
    fn fresh_blocks_read_cleanly_despite_reliability_model() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(12);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        for _ in 0..100 {
            assert!(matches!(
                a.read(Ppa::new(0, 0), &mut rng),
                ReadOutcome::Ok { .. }
            ));
        }
    }

    #[test]
    fn read_disturb_counter_tracks_and_resets() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(13);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        for _ in 0..50 {
            let _ = a.read(Ppa::new(0, 0), &mut rng);
        }
        // Heavily disturbed + moderately worn: errors creep past a weak
        // ECC. Use the reliability model directly for the threshold
        // check, then confirm erase resets the counter via a clean read.
        let mean = a.reliability().mean_extra_ber(0, 50);
        assert!(mean < 1.0, "50 reads are harmless: {mean}");
        let mean_heavy = a.reliability().mean_extra_ber(0, 10_000_000);
        assert!(
            mean_heavy > 100.0,
            "ten million reads are not: {mean_heavy}"
        );
        a.erase(0).unwrap();
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(2),
            Oob::user(Lba::new(0), 2),
        )
        .unwrap();
        assert!(matches!(
            a.read(Ppa::new(0, 0), &mut rng),
            ReadOutcome::Ok { .. }
        ));
    }

    #[test]
    fn pre_age_respects_wear_budget() {
        let mut a = mlc_array();
        a.pre_age_block(1, 100);
        assert_eq!(a.erase_count(1), 100);
        // A pre-aged block still programs (ordering reset by erase).
        a.program(
            Ppa::new(1, 0),
            PageData::from_tag(5),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
    }

    #[test]
    fn program_duration_depends_on_page_parity() {
        let a = mlc_array();
        assert!(a.program_duration(Ppa::new(0, 1)) > a.program_duration(Ppa::new(0, 0)));
    }

    #[test]
    fn retry_ladder_rescues_marginal_eol_pages() {
        // Same end-of-life setup as the flicker test: wear-induced errors
        // sit at the BCH boundary. The ladder's shifted thresholds cancel
        // the drift component, so every uncorrectable nominal read must be
        // rescued within the ladder.
        let mut a = mlc_array();
        let mut rng = DetRng::new(11);
        a.pre_age_block(0, 2_999);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        for _ in 0..100 {
            assert!(matches!(
                a.read_with_retries(Ppa::new(0, 0), 4, &mut rng),
                ReadOutcome::Ok { .. }
            ));
        }
        let stats = a.stats();
        assert!(stats.read_retries > 0, "EOL pages must hit the ladder");
        assert!(stats.retry_recovered_reads > 0);
        assert!(stats.retry_recovered_reads <= stats.read_retries);
    }

    #[test]
    fn retry_ladder_is_free_on_clean_pages() {
        let mut a = mlc_array();
        let mut rng = DetRng::new(12);
        a.program(
            Ppa::new(0, 0),
            PageData::from_tag(1),
            Oob::user(Lba::new(0), 1),
        )
        .unwrap();
        assert!(matches!(
            a.read_with_retries(Ppa::new(0, 0), 4, &mut rng),
            ReadOutcome::Ok { .. }
        ));
        assert_eq!(a.stats().read_retries, 0);
        assert_eq!(a.stats().reads, 1, "clean read takes a single rung");
    }

    #[test]
    fn retry_ladder_cannot_rescue_torn_programs() {
        // An early-interrupted program leaves intrinsic raw errors far
        // beyond ECC strength; shifting the read reference does not help.
        let mut a = mlc_array();
        let mut rng = DetRng::new(3);
        let ppa = Ppa::new(0, 0);
        a.interrupt_program(ppa, 0.1, &mut rng);
        assert_eq!(
            a.read_with_retries(ppa, 6, &mut rng),
            ReadOutcome::Uncorrectable
        );
        assert_eq!(a.stats().read_retries, 6, "every rung must be walked");
        assert_eq!(a.stats().retry_recovered_reads, 0);
    }

    #[test]
    fn retry_ladder_is_deterministic() {
        let run = |seed: u64| {
            let mut a = mlc_array();
            let mut rng = DetRng::new(seed);
            a.pre_age_block(0, 2_999);
            a.program(
                Ppa::new(0, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 1),
            )
            .unwrap();
            let outcomes: Vec<ReadOutcome> = (0..50)
                .map(|_| a.read_with_retries(Ppa::new(0, 0), 3, &mut rng))
                .collect();
            (outcomes, a.stats())
        };
        assert_eq!(run(21), run(21));
    }

    // ---- copy-on-write image tests -------------------------------------

    /// Builds a warm array: a few programmed blocks, one erase cycle, some
    /// reads for disturb state.
    fn warm_array() -> (FlashArray, DetRng) {
        let mut a = mlc_array();
        let mut rng = DetRng::new(77);
        for blk in 0..3u64 {
            for page in 0..4u64 {
                a.program(
                    Ppa::new(blk, page),
                    PageData::from_tag(blk * 100 + page),
                    Oob::user(Lba::new(blk * 10 + page), blk * 10 + page + 1),
                )
                .unwrap();
            }
        }
        a.erase(1).unwrap();
        for _ in 0..5 {
            let _ = a.read(Ppa::new(0, 0), &mut rng);
        }
        (a, rng)
    }

    /// Drives identical post-snapshot work on two arrays and asserts every
    /// observable matches.
    fn drive_identically(a: &mut FlashArray, b: &mut FlashArray, rng_a: &mut DetRng, rng_b: &mut DetRng) {
        for (arr, rng) in [(&mut *a, rng_a), (&mut *b, rng_b)] {
            arr.program(
                Ppa::new(1, 0),
                PageData::from_tag(9),
                Oob::user(Lba::new(5), 40),
            )
            .unwrap();
            arr.program(
                Ppa::new(7, 0),
                PageData::from_tag(10),
                Oob::user(Lba::new(6), 41),
            )
            .unwrap();
            let _ = arr.interrupt_program(Ppa::new(2, 4), 0.4, rng);
            let _ = arr.read(Ppa::new(0, 1), rng);
        }
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.scan().collect::<Vec<_>>(),
            b.scan().collect::<Vec<_>>(),
            "scan order must match between cold and CoW arrays"
        );
    }

    #[test]
    fn flatten_preserves_digest_scan_and_queries() {
        let (mut a, _) = warm_array();
        let digest = a.state_digest();
        let scan: Vec<_> = a.scan().collect();
        let touched = a.touched_blocks();
        a.flatten();
        assert!(a.is_flattened());
        assert_eq!(a.state_digest(), digest);
        assert_eq!(a.scan().collect::<Vec<_>>(), scan);
        assert_eq!(a.touched_blocks(), touched);
        assert_eq!(a.overlay_blocks(), 0);
        assert_eq!(a.erase_count(1), 1);
        assert_eq!(a.next_page_of(0), 4);
    }

    #[test]
    fn cow_clone_evolves_like_cold_copy() {
        // The byte-identity gate in miniature: a CoW clone of a flattened
        // array and a plain deep copy must be indistinguishable under
        // identical operations, including RNG consumption.
        let (mut warm, rng) = warm_array();
        let mut cold = warm.clone(); // deep copy before flatten
        warm.flatten();
        let mut cow = warm.clone(); // CoW clone of frozen image
        assert!(cow.shares_base_with(&warm));
        let mut rng_a = rng.clone();
        let mut rng_b = rng.clone();
        drive_identically(&mut cow, &mut cold, &mut rng_a, &mut rng_b);
        assert_eq!(rng_a, rng_b, "identical RNG stream positions");
    }

    #[test]
    fn cow_clone_mutation_leaves_the_image_intact() {
        let (mut warm, _) = warm_array();
        warm.flatten();
        let image_digest = warm.state_digest();
        let mut clone = warm.clone();
        let mut rng = DetRng::new(3);
        clone
            .program(
                Ppa::new(0, 4),
                PageData::from_tag(1234),
                Oob::user(Lba::new(99), 99),
            )
            .unwrap();
        let _ = clone.interrupt_program(Ppa::new(6, 0), 0.1, &mut rng);
        clone.erase(2).unwrap();
        assert_ne!(clone.state_digest(), image_digest);
        assert_eq!(warm.state_digest(), image_digest, "image must not move");
        assert_eq!(warm.overlay_blocks(), 0);
        // Only touched blocks were copied up.
        assert_eq!(clone.overlay_blocks(), 3);
    }

    #[test]
    fn reads_copy_up_because_disturb_state_moves() {
        let (mut warm, _) = warm_array();
        warm.flatten();
        let mut clone = warm.clone();
        let mut rng = DetRng::new(4);
        let _ = clone.read(Ppa::new(0, 0), &mut rng);
        assert_eq!(clone.overlay_blocks(), 1, "read must materialise");
        // A read of a block no layer ever touched stays virtual.
        let _ = clone.read(Ppa::new(6, 0), &mut rng);
        assert_eq!(clone.overlay_blocks(), 1);
        assert_eq!(clone.touched_blocks(), warm.touched_blocks());
    }

    #[test]
    fn rebase_onto_builds_a_minimal_overlay() {
        let (mut base, mut rng) = warm_array();
        base.flatten();
        // Evolve a descendant: touch one old block, add one new block.
        let mut evolved = base.clone();
        evolved
            .program(
                Ppa::new(2, 4),
                PageData::from_tag(55),
                Oob::user(Lba::new(20), 50),
            )
            .unwrap();
        evolved
            .program(
                Ppa::new(5, 0),
                PageData::from_tag(56),
                Oob::user(Lba::new(21), 51),
            )
            .unwrap();
        evolved.flatten();
        let digest = evolved.state_digest();
        let scan: Vec<_> = evolved.scan().collect();

        let mut delta = evolved.clone();
        assert!(delta.rebase_onto(&base));
        assert!(delta.shares_base_with(&base));
        // Only the changed block and the new block sit in the overlay.
        assert_eq!(delta.overlay_blocks(), 2);
        assert_eq!(delta.state_digest(), digest);
        assert_eq!(delta.scan().collect::<Vec<_>>(), scan);
        assert_eq!(delta.touched_blocks(), evolved.touched_blocks());
        // And the delta keeps behaving identically.
        let mut rng_b = rng.clone();
        let mut full = evolved.clone();
        drive_identically(&mut delta, &mut full, &mut rng, &mut rng_b);
    }

    #[test]
    fn rebase_onto_rejects_non_descendants() {
        let (mut base, _) = warm_array();
        base.flatten();
        // A stranger array with a different materialisation order.
        let mut stranger = mlc_array();
        stranger
            .program(
                Ppa::new(5, 0),
                PageData::from_tag(1),
                Oob::user(Lba::new(0), 1),
            )
            .unwrap();
        stranger.flatten();
        let digest = stranger.state_digest();
        let mut s = stranger.clone();
        assert!(!s.rebase_onto(&base));
        assert_eq!(s.state_digest(), digest, "failed rebase must not mutate");
    }
}
