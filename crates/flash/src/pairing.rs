//! Paired-page (shared-wordline) layout for MLC/TLC blocks.
//!
//! In MLC and TLC NAND, several logical pages share one physical wordline:
//! the 2 (MLC) or 3 (TLC) bits of each cell on the wordline belong to
//! different pages. Programming a *later* page of a wordline re-places the
//! threshold voltage of cells whose *earlier* page was already programmed —
//! so interrupting that program corrupts previously written, previously
//! acknowledged data. This is the physical mechanism behind the paper's
//! observation that "single power outage ... may corrupt the cells that are
//! previously written to the SSD" (§I, §IV-A) and the elevated WAW failure
//! counts (§IV-G).
//!
//! The model here uses the simple interleaved layout: page `p` lives on
//! wordline `p / bits_per_cell`, and is the `(p % bits_per_cell)`-th page of
//! that wordline (page 0 = LSB/"lower" page).

use crate::cell::CellKind;

/// Position of a page on its wordline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordlineSlot {
    /// Wordline index within the block.
    pub wordline: u64,
    /// Which bit of the cells this page occupies (0 = lower page).
    pub level_index: u32,
}

/// Returns the wordline slot of page `page` in a block of `kind` cells.
pub fn slot_of(kind: CellKind, page: u64) -> WordlineSlot {
    let bpc = u64::from(kind.bits_per_cell());
    WordlineSlot {
        wordline: page / bpc,
        level_index: (page % bpc) as u32,
    }
}

/// Returns the earlier pages sharing `page`'s wordline (its "paired pages"),
/// lowest first. These are the pages whose already-written data is at risk
/// when a program of `page` is interrupted.
///
/// # Example
///
/// ```
/// use pfault_flash::{pairing, CellKind};
///
/// // MLC: pages 4 and 5 share wordline 2; interrupting page 5 endangers 4.
/// assert_eq!(pairing::earlier_siblings(CellKind::Mlc, 5), vec![4]);
/// assert_eq!(pairing::earlier_siblings(CellKind::Mlc, 4), Vec::<u64>::new());
/// // TLC: page 8 is the last page of wordline 2 (pages 6, 7, 8).
/// assert_eq!(pairing::earlier_siblings(CellKind::Tlc, 8), vec![6, 7]);
/// ```
pub fn earlier_siblings(kind: CellKind, page: u64) -> Vec<u64> {
    let slot = slot_of(kind, page);
    let bpc = u64::from(kind.bits_per_cell());
    let first = slot.wordline * bpc;
    (first..page).collect()
}

/// Whether programming `page` can endanger earlier data (i.e. the page is
/// not the first page of its wordline). Always `false` for SLC.
pub fn endangers_earlier(kind: CellKind, page: u64) -> bool {
    slot_of(kind, page).level_index > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slc_has_no_pairing() {
        for p in 0..16 {
            assert!(!endangers_earlier(CellKind::Slc, p));
            assert!(earlier_siblings(CellKind::Slc, p).is_empty());
        }
    }

    #[test]
    fn mlc_pairs_two_pages_per_wordline() {
        assert_eq!(slot_of(CellKind::Mlc, 0).wordline, 0);
        assert_eq!(slot_of(CellKind::Mlc, 1).wordline, 0);
        assert_eq!(slot_of(CellKind::Mlc, 2).wordline, 1);
        assert!(endangers_earlier(CellKind::Mlc, 1));
        assert!(!endangers_earlier(CellKind::Mlc, 2));
        assert_eq!(earlier_siblings(CellKind::Mlc, 7), vec![6]);
    }

    #[test]
    fn tlc_groups_three_pages() {
        assert_eq!(slot_of(CellKind::Tlc, 5).wordline, 1);
        assert_eq!(slot_of(CellKind::Tlc, 5).level_index, 2);
        assert_eq!(earlier_siblings(CellKind::Tlc, 5), vec![3, 4]);
        assert!(!endangers_earlier(CellKind::Tlc, 3));
        assert!(endangers_earlier(CellKind::Tlc, 4));
    }

    #[test]
    fn siblings_are_strictly_earlier() {
        for kind in [CellKind::Mlc, CellKind::Tlc] {
            for p in 0..32 {
                for s in earlier_siblings(kind, p) {
                    assert!(s < p);
                    assert_eq!(slot_of(kind, s).wordline, slot_of(kind, p).wordline);
                }
            }
        }
    }
}
