//! Arena storage for materialised flash blocks.
//!
//! [`BlockArena`] packs every materialised block of a [`crate::FlashArray`]
//! into three contiguous buffers — page states, per-block metadata, and the
//! slot → block-id table — plus a hash index for id → slot lookup. Compared
//! with the former `HashMap<u64, Block>` (one heap allocation per block,
//! SipHash per access) this buys:
//!
//! * **O(1) flat addressing** on the program/read hot path: one cheap
//!   deterministic-hash lookup to find the slot, then direct slice
//!   indexing into the page buffer;
//! * **memcpy-grade capture**: cloning an arena is three `Vec` copies plus
//!   the index, not thousands of separate block allocations;
//! * **copy-on-write cloning**: a frozen arena behind an `Arc` serves as
//!   the shared base image of many trial devices, each of which
//!   materialises only the blocks it actually touches into a private
//!   overlay arena (see `FlashArray`).
//!
//! Slot order is **materialisation order** and is part of the determinism
//! contract: `FlashArray::scan` iterates blocks in slot order, and FTL
//! full-scan recovery draws RNG words per scanned page, so two arrays that
//! must behave identically must also have materialised their blocks in the
//! same order. A base-plus-overlay array therefore scans base slots first
//! (overlay content substituted where a block was copied up) and then
//! overlay-only slots — exactly the order a cold-built array would have
//! produced by touching the same blocks in the same sequence.

use pfault_sim::DetHashMap;

use crate::block::{BlockMeta, PageState};

/// Contiguous storage for materialised blocks.
///
/// Blocks occupy slots in materialisation order; slot `s` owns metadata
/// `meta[s]` and pages `pages[s*ppb .. (s+1)*ppb]`.
#[derive(Debug, Clone)]
pub struct BlockArena {
    ppb: usize,
    pages: Vec<PageState>,
    meta: Vec<BlockMeta>,
    ids: Vec<u64>,
    index: DetHashMap<u64, u32>,
}

impl BlockArena {
    /// Creates an empty arena for blocks of `pages_per_block` pages.
    pub fn new(pages_per_block: u64) -> Self {
        BlockArena {
            ppb: pages_per_block as usize,
            pages: Vec::new(),
            meta: Vec::new(),
            ids: Vec::new(),
            index: DetHashMap::default(),
        }
    }

    /// Pages per block.
    pub fn pages_per_block(&self) -> usize {
        self.ppb
    }

    /// Number of materialised blocks.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether no block has materialised.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Slot holding block `id`, if materialised.
    #[inline]
    pub fn slot_of(&self, id: u64) -> Option<usize> {
        self.index.get(&id).map(|&s| s as usize)
    }

    /// Block id occupying `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn id_at(&self, slot: usize) -> u64 {
        self.ids[slot]
    }

    /// Metadata of the block in `slot`.
    #[inline]
    pub fn meta(&self, slot: usize) -> &BlockMeta {
        &self.meta[slot]
    }

    /// Mutable metadata of the block in `slot`.
    #[inline]
    pub fn meta_mut(&mut self, slot: usize) -> &mut BlockMeta {
        &mut self.meta[slot]
    }

    /// Page states of the block in `slot`.
    #[inline]
    pub fn pages(&self, slot: usize) -> &[PageState] {
        &self.pages[slot * self.ppb..(slot + 1) * self.ppb]
    }

    /// Split mutable borrow of the block in `slot`: metadata plus pages.
    #[inline]
    pub fn block_mut(&mut self, slot: usize) -> (&mut BlockMeta, &mut [PageState]) {
        (
            &mut self.meta[slot],
            &mut self.pages[slot * self.ppb..(slot + 1) * self.ppb],
        )
    }

    /// Materialises a fresh erased block carrying `wear` prior erase
    /// cycles. Returns its slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already materialised.
    pub fn push_erased(&mut self, id: u64, wear: u32) -> usize {
        self.push_block(id, BlockMeta::erased_with_wear(wear), None)
    }

    /// Materialises a copy of an existing block (copy-on-write
    /// promotion from a base image). Returns its slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already materialised or `src_pages` has the wrong
    /// length.
    pub fn push_copy(&mut self, id: u64, meta: BlockMeta, src_pages: &[PageState]) -> usize {
        assert_eq!(src_pages.len(), self.ppb, "page count mismatch");
        self.push_block(id, meta, Some(src_pages))
    }

    fn push_block(&mut self, id: u64, meta: BlockMeta, src_pages: Option<&[PageState]>) -> usize {
        let slot = self.meta.len();
        let prev = self.index.insert(id, slot as u32);
        assert!(prev.is_none(), "block {id} materialised twice");
        self.meta.push(meta);
        self.ids.push(id);
        match src_pages {
            Some(src) => self.pages.extend_from_slice(src),
            None => self
                .pages
                .resize(self.pages.len() + self.ppb, PageState::Erased),
        }
        slot
    }

    /// Iterates `(id, meta, pages)` in slot (materialisation) order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &BlockMeta, &[PageState])> + '_ {
        (0..self.len()).map(move |s| (self.ids[s], &self.meta[s], self.pages(s)))
    }

    /// Whether the block in `slot` is byte-identical to `(meta, pages)` —
    /// used by delta re-basing to find unchanged blocks.
    pub fn block_equals(&self, slot: usize, meta: &BlockMeta, pages: &[PageState]) -> bool {
        self.meta[slot] == *meta && self.pages(slot) == pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{program_page, BlockState, PageData};
    use crate::oob::Oob;
    use pfault_sim::Lba;

    #[test]
    fn slots_follow_materialisation_order() {
        let mut a = BlockArena::new(4);
        assert!(a.is_empty());
        a.push_erased(9, 0);
        a.push_erased(2, 5);
        a.push_erased(7, 0);
        assert_eq!(a.len(), 3);
        let ids: Vec<u64> = a.iter().map(|(id, ..)| id).collect();
        assert_eq!(ids, vec![9, 2, 7]);
        assert_eq!(a.slot_of(2), Some(1));
        assert_eq!(a.slot_of(3), None);
        assert_eq!(a.meta(1).erase_count, 5);
        assert_eq!(a.id_at(2), 7);
    }

    #[test]
    fn block_mut_addresses_the_right_pages() {
        let mut a = BlockArena::new(2);
        a.push_erased(0, 0);
        a.push_erased(1, 0);
        let (meta, pages) = a.block_mut(1);
        program_page(meta, pages, 1, 0, PageData::from_tag(7), Oob::user(Lba::new(1), 1)).unwrap();
        // Block 0 untouched, block 1 carries the program.
        assert!(matches!(a.pages(0)[0], PageState::Erased));
        assert!(matches!(a.pages(1)[0], PageState::Programmed { .. }));
        assert_eq!(a.meta(1).next_page, 1);
        assert_eq!(a.meta(0).next_page, 0);
    }

    #[test]
    fn push_copy_duplicates_content() {
        let mut src = BlockArena::new(2);
        src.push_erased(4, 1);
        let (meta, pages) = src.block_mut(0);
        program_page(meta, pages, 4, 0, PageData::from_tag(3), Oob::user(Lba::new(0), 1)).unwrap();

        let mut dst = BlockArena::new(2);
        let slot = dst.push_copy(4, *src.meta(0), src.pages(0));
        assert!(dst.block_equals(slot, src.meta(0), src.pages(0)));
        // Mutating the copy leaves the source untouched.
        dst.meta_mut(slot).state = BlockState::NeedsErase;
        assert_eq!(src.meta(0).state, BlockState::Open);
    }

    #[test]
    #[should_panic(expected = "materialised twice")]
    fn double_materialisation_panics() {
        let mut a = BlockArena::new(1);
        a.push_erased(3, 0);
        a.push_erased(3, 0);
    }
}
