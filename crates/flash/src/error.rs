//! Flash operation errors.

use core::fmt;

/// Errors returned by flash array operations.
///
/// These model the *command-level* failures a NAND controller sees; data
/// corruption (the paper's subject) is not an `Err` — it is a successful
/// read returning wrong or uncorrectable data, reported through
/// [`crate::array::ReadOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// The address does not exist in the array geometry.
    BadAddress {
        /// Offending block index.
        block: u64,
        /// Offending page index.
        page: u64,
    },
    /// Attempt to program a page that is not in the erased state.
    ProgramToDirtyPage {
        /// Offending block index.
        block: u64,
        /// Offending page index.
        page: u64,
    },
    /// Pages within a block must be programmed in ascending order.
    ProgramOutOfOrder {
        /// Offending block index.
        block: u64,
        /// Page that was attempted.
        attempted: u64,
        /// Next page the block expects.
        expected: u64,
    },
    /// The block wore out (exceeded its program/erase cycle budget).
    BlockWornOut {
        /// Offending block index.
        block: u64,
    },
    /// Operation attempted while the chip is powered down.
    PoweredOff,
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::BadAddress { block, page } => {
                write!(f, "address block {block} page {page} is outside the array")
            }
            FlashError::ProgramToDirtyPage { block, page } => {
                write!(f, "page {page} of block {block} is not erased")
            }
            FlashError::ProgramOutOfOrder {
                block,
                attempted,
                expected,
            } => write!(
                f,
                "block {block} expects page {expected} next, got {attempted}"
            ),
            FlashError::BlockWornOut { block } => {
                write!(f, "block {block} exceeded its erase budget")
            }
            FlashError::PoweredOff => write!(f, "flash chip is powered off"),
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_concise() {
        let msgs = [
            FlashError::BadAddress { block: 1, page: 2 }.to_string(),
            FlashError::ProgramToDirtyPage { block: 1, page: 2 }.to_string(),
            FlashError::ProgramOutOfOrder {
                block: 0,
                attempted: 5,
                expected: 2,
            }
            .to_string(),
            FlashError::BlockWornOut { block: 3 }.to_string(),
            FlashError::PoweredOff.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_: E) {}
        takes_err(FlashError::PoweredOff);
    }
}
