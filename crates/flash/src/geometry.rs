//! Flash array geometry and physical addressing.
//!
//! The array is organised as `blocks × pages_per_block` (channel/die/plane
//! parallelism is folded into the flat block index; the device model
//! schedules parallelism above this layer). A [`Ppa`] names one physical
//! page.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::FlashError;

/// Geometry of a flash array.
///
/// # Example
///
/// ```
/// use pfault_flash::geometry::FlashGeometry;
///
/// let g = FlashGeometry::new(1024, 256);
/// assert_eq!(g.total_pages(), 1024 * 256);
/// assert_eq!(g.capacity_bytes(), g.total_pages() * 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlashGeometry {
    blocks: u64,
    pages_per_block: u64,
}

impl FlashGeometry {
    /// Bytes in one flash page (equal to the platform's logical sector).
    pub const PAGE_BYTES: u64 = 4096;

    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(blocks: u64, pages_per_block: u64) -> Self {
        assert!(blocks > 0, "need at least one block");
        assert!(pages_per_block > 0, "need at least one page per block");
        FlashGeometry {
            blocks,
            pages_per_block,
        }
    }

    /// A tiny geometry for unit tests (8 blocks × 16 pages).
    pub fn small_test() -> Self {
        FlashGeometry::new(8, 16)
    }

    /// Number of blocks.
    pub const fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Pages in each block.
    pub const fn pages_per_block(&self) -> u64 {
        self.pages_per_block
    }

    /// Total pages in the array.
    pub const fn total_pages(&self) -> u64 {
        self.blocks * self.pages_per_block
    }

    /// Usable capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        self.total_pages() * Self::PAGE_BYTES
    }

    /// Builds a [`Ppa`] from block and page indices.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn ppa(&self, block: u64, page: u64) -> Ppa {
        assert!(block < self.blocks, "block {block} out of range");
        assert!(
            page < self.pages_per_block,
            "page {page} out of range for block {block}"
        );
        Ppa { block, page }
    }

    /// Checked variant of [`FlashGeometry::ppa`].
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BadAddress`] if either index is out of range.
    pub fn try_ppa(&self, block: u64, page: u64) -> Result<Ppa, FlashError> {
        if block >= self.blocks || page >= self.pages_per_block {
            return Err(FlashError::BadAddress { block, page });
        }
        Ok(Ppa { block, page })
    }

    /// Whether `ppa` addresses a page inside this geometry.
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.block < self.blocks && ppa.page < self.pages_per_block
    }
}

/// A physical page address: `(block, page-within-block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ppa {
    /// Block index within the array.
    pub block: u64,
    /// Page index within the block.
    pub page: u64,
}

impl Ppa {
    /// Creates a PPA without geometry validation (use
    /// [`FlashGeometry::ppa`] when a geometry is at hand).
    pub const fn new(block: u64, page: u64) -> Self {
        Ppa { block, page }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppa:{}/{}", self.block, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_capacity() {
        let g = FlashGeometry::new(4, 8);
        assert_eq!(g.blocks(), 4);
        assert_eq!(g.pages_per_block(), 8);
        assert_eq!(g.total_pages(), 32);
        assert_eq!(g.capacity_bytes(), 32 * 4096);
    }

    #[test]
    fn ppa_construction_and_bounds() {
        let g = FlashGeometry::new(4, 8);
        let p = g.ppa(3, 7);
        assert_eq!(p, Ppa::new(3, 7));
        assert!(g.contains(p));
        assert!(!g.contains(Ppa::new(4, 0)));
        assert!(!g.contains(Ppa::new(0, 8)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ppa_panics_out_of_range() {
        FlashGeometry::new(2, 2).ppa(2, 0);
    }

    #[test]
    fn try_ppa_returns_error() {
        let g = FlashGeometry::new(2, 2);
        assert!(g.try_ppa(1, 1).is_ok());
        assert!(matches!(
            g.try_ppa(9, 0),
            Err(FlashError::BadAddress { block: 9, page: 0 })
        ));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ppa::new(2, 5).to_string(), "ppa:2/5");
    }
}
