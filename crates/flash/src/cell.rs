//! Bit-level flash cell model with ISPP programming.
//!
//! This module models a *small* page of real cells so that the corruption
//! behaviour used at device scale can be validated against first principles.
//! Programming a NAND page is not atomic: the controller runs an
//! **incremental-step pulse programming (ISPP)** loop — pulse, read, verify,
//! repeat — until every cell reaches its target threshold-voltage window
//! (paper §I). Interrupting the loop leaves cells scattered between levels,
//! which reads back as bit errors.
//!
//! [`CellKind`] gives the bits-per-cell and the number of distinguishable
//! threshold-voltage levels for SLC/MLC/TLC parts (Table I: SSDs A and C
//! are MLC, SSD B is TLC).

use serde::{Deserialize, Serialize};

use pfault_sim::DetRng;

/// NAND cell technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Single-level cell: 1 bit, 2 levels.
    Slc,
    /// Multi-level cell: 2 bits, 4 levels.
    Mlc,
    /// Triple-level cell: 3 bits, 8 levels.
    Tlc,
}

impl CellKind {
    /// Bits stored per cell.
    pub const fn bits_per_cell(self) -> u32 {
        match self {
            CellKind::Slc => 1,
            CellKind::Mlc => 2,
            CellKind::Tlc => 3,
        }
    }

    /// Distinguishable threshold-voltage levels.
    pub const fn levels(self) -> u32 {
        1 << self.bits_per_cell()
    }

    /// Number of ISPP iterations a full page program needs. More levels
    /// need finer placement, hence more verify iterations — and a longer
    /// window of vulnerability to power loss.
    pub const fn ispp_iterations(self) -> u32 {
        match self {
            CellKind::Slc => 2,
            CellKind::Mlc => 6,
            CellKind::Tlc => 12,
        }
    }
}

/// One simulated flash cell: a threshold-voltage level in
/// `0..CellKind::levels()`. Level 0 is the erased state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    level: u8,
}

/// A small page of real cells, for bit-level validation.
///
/// # Example
///
/// ```
/// use pfault_flash::cell::{CellKind, CellPage};
/// use pfault_sim::DetRng;
///
/// let mut page = CellPage::erased(CellKind::Mlc, 64);
/// let data: Vec<u8> = (0..16).collect(); // 16 bytes = 128 bits / 2 bits-per-cell
/// let mut rng = DetRng::new(3);
/// page.program_complete(&data);
/// assert_eq!(page.read(), data);
/// // An interrupted program leaves bit errors behind:
/// let mut page2 = CellPage::erased(CellKind::Mlc, 64);
/// page2.program_interrupted(&data, 0.4, &mut rng);
/// assert_ne!(page2.read(), data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPage {
    kind: CellKind,
    cells: Vec<Cell>,
}

impl CellPage {
    /// Creates an erased page of `cells` cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    pub fn erased(kind: CellKind, cells: usize) -> Self {
        assert!(cells > 0, "page must have at least one cell");
        CellPage {
            kind,
            cells: vec![Cell { level: 0 }; cells],
        }
    }

    /// The cell technology of this page.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the page has zero cells (never true for constructed pages).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.cells.len() * self.kind.bits_per_cell() as usize / 8
    }

    /// Converts data bytes to per-cell target levels using Gray coding
    /// (adjacent levels differ in one bit, as in real NAND).
    fn targets(&self, data: &[u8]) -> Vec<u8> {
        let bpc = self.kind.bits_per_cell();
        let mut levels = Vec::with_capacity(self.cells.len());
        let mut bit_cursor = 0usize;
        for _ in 0..self.cells.len() {
            let mut sym = 0u8;
            for b in 0..bpc {
                let byte = bit_cursor / 8;
                let bit = bit_cursor % 8;
                let v = if byte < data.len() {
                    (data[byte] >> bit) & 1
                } else {
                    0
                };
                sym |= v << b;
                bit_cursor += 1;
            }
            // Binary-reflected Gray code.
            levels.push(sym ^ (sym >> 1));
        }
        levels
    }

    /// Inverse of the Gray-coded target mapping: decodes current levels to
    /// bytes.
    pub fn read(&self) -> Vec<u8> {
        let bpc = self.kind.bits_per_cell();
        let nbytes = self.capacity_bytes();
        let mut out = vec![0u8; nbytes];
        let mut bit_cursor = 0usize;
        for cell in &self.cells {
            // Gray decode.
            let mut sym = cell.level;
            let mut shift = sym >> 1;
            while shift != 0 {
                sym ^= shift;
                shift >>= 1;
            }
            for b in 0..bpc {
                let byte = bit_cursor / 8;
                let bit = bit_cursor % 8;
                if byte < out.len() {
                    out[byte] |= ((sym >> b) & 1) << bit;
                }
                bit_cursor += 1;
            }
        }
        out
    }

    /// Programs the page to completion (all ISPP iterations run).
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the page capacity.
    pub fn program_complete(&mut self, data: &[u8]) {
        assert!(
            data.len() <= self.capacity_bytes(),
            "data exceeds page capacity"
        );
        let targets = self.targets(data);
        for (cell, &t) in self.cells.iter_mut().zip(&targets) {
            cell.level = t;
        }
    }

    /// Programs the page but interrupts the ISPP loop at `progress`
    /// (fraction of iterations completed, in `[0, 1]`).
    ///
    /// Each ISPP iteration raises cells one step toward their target (cells
    /// can only move *up*; lowering requires a block erase). Cells whose
    /// target needs more steps than ran are left short; the interrupt pulse
    /// itself leaves a random ±1 level disturbance on a fraction of cells.
    ///
    /// Returns the number of cells that ended at the wrong level.
    pub fn program_interrupted(&mut self, data: &[u8], progress: f64, rng: &mut DetRng) -> usize {
        assert!(
            data.len() <= self.capacity_bytes(),
            "data exceeds page capacity"
        );
        let progress = progress.clamp(0.0, 1.0);
        let targets = self.targets(data);
        let total_iters = self.kind.ispp_iterations();
        let ran = (total_iters as f64 * progress).floor() as u32;
        let max_level = (self.kind.levels() - 1) as u8;
        // Steps per iteration so the deepest level is reachable in
        // `total_iters` iterations.
        let per_iter = f64::from(self.kind.levels() - 1) / f64::from(total_iters);
        let mut wrong = 0;
        for (cell, &t) in self.cells.iter_mut().zip(&targets) {
            let reached = ((f64::from(ran) * per_iter).floor() as u8).min(t);
            let mut level = cell.level.max(reached.min(t));
            // Aborted pulse: supply droop disturbs some cells by one level.
            if rng.chance(0.15) {
                if rng.chance(0.5) && level < max_level {
                    level += 1;
                } else {
                    level = level.saturating_sub(1);
                }
            }
            cell.level = level;
            if level != t {
                wrong += 1;
            }
        }
        wrong
    }

    /// Erases the page (all cells to level 0). Real NAND erases whole
    /// blocks; block-granularity is enforced one layer up, in
    /// [`crate::block`].
    pub fn erase(&mut self) {
        for c in &mut self.cells {
            c.level = 0;
        }
    }

    /// Counts bit errors versus `expected` data.
    pub fn bit_errors(&self, expected: &[u8]) -> usize {
        let got = self.read();
        got.iter()
            .zip(expected.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert_eq!(CellKind::Slc.bits_per_cell(), 1);
        assert_eq!(CellKind::Mlc.levels(), 4);
        assert_eq!(CellKind::Tlc.levels(), 8);
        assert!(CellKind::Tlc.ispp_iterations() > CellKind::Mlc.ispp_iterations());
    }

    #[test]
    fn complete_program_round_trips() {
        for kind in [CellKind::Slc, CellKind::Mlc, CellKind::Tlc] {
            let mut page = CellPage::erased(kind, 96);
            let data: Vec<u8> = (0..page.capacity_bytes() as u8).collect();
            page.program_complete(&data);
            assert_eq!(page.read(), data, "round trip failed for {kind:?}");
            assert_eq!(page.bit_errors(&data), 0);
        }
    }

    #[test]
    fn erase_resets_to_zero() {
        let mut page = CellPage::erased(CellKind::Mlc, 32);
        page.program_complete(&[0xFF; 8]);
        page.erase();
        assert!(page.read().iter().all(|&b| b == 0));
    }

    #[test]
    fn interrupted_program_leaves_bit_errors() {
        let mut rng = DetRng::new(8);
        let mut page = CellPage::erased(CellKind::Mlc, 256);
        let data = vec![0xA7u8; page.capacity_bytes()];
        let wrong = page.program_interrupted(&data, 0.3, &mut rng);
        assert!(wrong > 0, "30% progress must leave wrong cells");
        assert!(page.bit_errors(&data) > 0);
    }

    #[test]
    fn earlier_interruption_is_worse() {
        let mut errors = Vec::new();
        for &progress in &[0.1, 0.5, 1.0] {
            let mut rng = DetRng::new(9);
            let mut page = CellPage::erased(CellKind::Tlc, 512);
            let data = vec![0xFFu8; page.capacity_bytes()];
            page.program_interrupted(&data, progress, &mut rng);
            errors.push(page.bit_errors(&data));
        }
        assert!(
            errors[0] > errors[1],
            "10% progress ({}) should beat 50% ({})",
            errors[0],
            errors[1]
        );
        assert!(errors[1] > errors[2]);
    }

    #[test]
    fn full_progress_interruption_still_disturbs_some_cells() {
        // Even at progress = 1.0 the aborted final pulse can disturb cells:
        // this models the paper's observation that faults *during* the
        // final verify still corrupt data occasionally.
        let mut rng = DetRng::new(10);
        let mut page = CellPage::erased(CellKind::Mlc, 2048);
        let data = vec![0x55u8; page.capacity_bytes()];
        let wrong = page.program_interrupted(&data, 1.0, &mut rng);
        assert!(wrong > 0);
    }

    #[test]
    fn capacity_matches_kind() {
        assert_eq!(CellPage::erased(CellKind::Slc, 64).capacity_bytes(), 8);
        assert_eq!(CellPage::erased(CellKind::Mlc, 64).capacity_bytes(), 16);
        assert_eq!(CellPage::erased(CellKind::Tlc, 64).capacity_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "data exceeds page capacity")]
    fn program_rejects_oversized_data() {
        CellPage::erased(CellKind::Slc, 8).program_complete(&[0u8; 100]);
    }

    #[test]
    fn gray_coding_adjacent_levels_differ_by_one_bit() {
        // Internal consistency: consecutive symbols map to levels whose
        // Gray codes differ in exactly one bit.
        for sym in 0u8..7 {
            let g1 = sym ^ (sym >> 1);
            let next = sym + 1;
            let g2 = next ^ (next >> 1);
            assert_eq!((g1 ^ g2).count_ones(), 1);
        }
    }
}
