//! NAND flash chip model.
//!
//! This crate models the flash substrate the paper's SSDs are built from, at
//! two levels of fidelity:
//!
//! * **Device scale** ([`array::FlashArray`]) — pages carry a compact
//!   `(tag, checksum)` content descriptor plus out-of-band (OOB) metadata,
//!   so multi-gigabyte working sets simulate in memory. Program and erase
//!   operations have realistic latencies ([`timing::FlashTiming`]) and can
//!   be **interrupted by power loss** mid-operation, leaving raw bit errors
//!   behind ([`array::FlashArray::interrupt_program`]).
//! * **Bit level** ([`cell`]) — real bit vectors with an ISPP
//!   (incremental-step pulse programming) loop, used by small-scale tests to
//!   validate that the corruption model matches how interrupted
//!   program-read-verify iterations damage real cells (paper §I).
//!
//! Key physical behaviours reproduced:
//!
//! * program-before-erase and in-order page programming constraints;
//! * MLC/TLC **paired pages** ([`pairing`]): interrupting the upper page of
//!   a wordline can corrupt the *previously programmed* lower page — the
//!   mechanism behind the paper's "power fault corrupts previously written
//!   data" observation (§IV-A, §IV-G);
//! * long erase operations vulnerable to interruption;
//! * an ECC stage ([`ecc`]) with BCH-like and LDPC-like correction strength
//!   (Table I lists LDPC for SSD B).
//!
//! # Example
//!
//! ```
//! use pfault_flash::{array::FlashArray, geometry::FlashGeometry, CellKind};
//! use pfault_flash::array::{PageData, ReadOutcome};
//! use pfault_flash::oob::Oob;
//! use pfault_sim::{DetRng, Lba};
//!
//! # fn main() -> Result<(), pfault_flash::FlashError> {
//! let geom = FlashGeometry::small_test();
//! let mut array = FlashArray::new(geom, CellKind::Mlc);
//! let ppa = geom.ppa(0, 0); // block 0, page 0
//! let data = PageData::from_tag(42);
//! array.program(ppa, data, Oob::user(Lba::new(7), 1))?;
//! let mut rng = DetRng::new(1);
//! match array.read(ppa, &mut rng) {
//!     ReadOutcome::Ok { data: d, .. } => assert_eq!(d, data),
//!     other => panic!("unexpected read outcome: {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The lint gate (`make lint-core`) denies unwrap() in library code;
// tests may unwrap freely.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod arena;
pub mod array;
pub mod block;
pub mod cell;
pub mod ecc;
pub mod error;
pub mod geometry;
pub mod oob;
pub mod pairing;
pub mod reliability;
pub mod timing;

pub use array::FlashArray;
pub use cell::CellKind;
pub use error::FlashError;
pub use geometry::{FlashGeometry, Ppa};
