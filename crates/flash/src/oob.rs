//! Out-of-band (spare area) metadata.
//!
//! Each flash page carries a spare area alongside its data. The FTL uses it
//! to tag pages with their logical owner and a write sequence number, which
//! is what makes power-loss recovery possible: after an outage, scanning
//! OOB metadata rebuilds the logical-to-physical map up to the last durable
//! write (see `pfault-ftl::recovery`).

use serde::{Deserialize, Serialize};

use pfault_sim::Lba;

/// What a flash page holds, from the FTL's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OobKind {
    /// User data for one logical sector.
    User {
        /// The logical sector stored in this page.
        lba: Lba,
    },
    /// A batch of mapping-journal entries.
    MapJournal {
        /// Journal batch identifier (monotonic).
        batch: u64,
    },
    /// A full mapping-table checkpoint fragment.
    Checkpoint {
        /// Checkpoint identifier (monotonic).
        checkpoint: u64,
    },
}

/// OOB record: page kind plus a global write sequence number.
///
/// The sequence number totally orders all programs, so recovery can pick the
/// newest version of each LBA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Oob {
    /// What the page holds.
    pub kind: OobKind,
    /// Global write sequence number at program time.
    pub seq: u64,
}

impl Oob {
    /// OOB for a user-data page.
    pub const fn user(lba: Lba, seq: u64) -> Self {
        Oob {
            kind: OobKind::User { lba },
            seq,
        }
    }

    /// OOB for a mapping-journal page.
    pub const fn journal(batch: u64, seq: u64) -> Self {
        Oob {
            kind: OobKind::MapJournal { batch },
            seq,
        }
    }

    /// OOB for a checkpoint page.
    pub const fn checkpoint(checkpoint: u64, seq: u64) -> Self {
        Oob {
            kind: OobKind::Checkpoint { checkpoint },
            seq,
        }
    }

    /// The LBA, if this is a user-data page.
    pub fn lba(&self) -> Option<Lba> {
        match self.kind {
            OobKind::User { lba } => Some(lba),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_tag_kinds() {
        let u = Oob::user(Lba::new(5), 10);
        assert_eq!(u.lba(), Some(Lba::new(5)));
        assert_eq!(u.seq, 10);

        let j = Oob::journal(3, 11);
        assert_eq!(j.lba(), None);
        assert!(matches!(j.kind, OobKind::MapJournal { batch: 3 }));

        let c = Oob::checkpoint(1, 12);
        assert!(matches!(c.kind, OobKind::Checkpoint { checkpoint: 1 }));
    }
}
