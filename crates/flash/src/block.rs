//! Block and page state tracking.
//!
//! A block owns an array of page states and enforces the NAND programming
//! constraints the FTL must respect: pages program in ascending order, only
//! onto erased pages, and erases are whole-block. Each block also tracks its
//! program/erase cycle count against a wear budget.
//!
//! Two representations share the constraint logic in this module:
//!
//! * [`Block`] — a standalone block owning its page vector, used by
//!   small-scale tests and examples;
//! * [`BlockMeta`] plus a page slice — the arena representation
//!   ([`crate::arena::BlockArena`]) the device-scale [`crate::FlashArray`]
//!   stores, where all materialised blocks' pages live in one contiguous
//!   buffer so snapshot capture and copy-on-write cloning are cheap.

use serde::{Deserialize, Serialize};

use pfault_sim::checksum::mix64;

use crate::error::FlashError;
use crate::oob::Oob;

/// Compact descriptor of a page's data content.
///
/// At device scale the simulator does not store 4 KiB buffers; a page's
/// content is identified by a `tag` (what was written) and a `checksum`
/// over it. Corruption replaces the checksum with a garble derived from the
/// original, so checksum comparison — the paper's detection mechanism —
/// behaves exactly as with real buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageData {
    /// Identity of the written content.
    pub tag: u64,
    /// Checksum of the content.
    pub checksum: u64,
}

impl PageData {
    /// Creates page data from a content tag, deriving the checksum.
    pub fn from_tag(tag: u64) -> Self {
        PageData {
            tag,
            checksum: mix64(tag, 0xDA7A_C0DE),
        }
    }

    /// Returns a garbled copy, as left behind by an interrupted program.
    /// The garble is derived deterministically from a noise word so that
    /// campaigns replay exactly.
    pub fn garbled(self, noise: u64) -> PageData {
        PageData {
            tag: self.tag,
            checksum: mix64(self.checksum, noise | 1),
        }
    }

    /// Whether this data still matches its original checksum.
    ///
    /// This is the gate the fault-space sweep oracle
    /// (`pfault_platform::sweep`) uses to separate NAND-physics damage
    /// from protocol violations: a garbled or torn page fails
    /// `is_intact` and is therefore judged as *data loss*, while only
    /// intact content that was never issued for its LBA counts as
    /// *phantom data*.
    pub fn is_intact(&self) -> bool {
        self.checksum == mix64(self.tag, 0xDA7A_C0DE)
    }
}

/// State of one flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Erased, ready to program.
    Erased,
    /// Programmed. `raw_ber` is the page's raw bit-error count, which the
    /// ECC stage compares against its correction strength at read time.
    Programmed {
        /// Content descriptor.
        data: PageData,
        /// Spare-area metadata.
        oob: Oob,
        /// Raw bit errors accumulated (interruption, disturbance).
        raw_ber: u32,
    },
}

/// Lifecycle state of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// Erased or partially programmed; accepts programs at `next_page`.
    Open,
    /// An erase was interrupted by power loss: contents indeterminate, must
    /// be erased again before any program.
    NeedsErase,
}

/// Per-block bookkeeping, separated from the page contents so the arena
/// can store all blocks' metadata in one contiguous buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// Next page the block expects to program.
    pub next_page: u64,
    /// Program/erase cycles absorbed.
    pub erase_count: u32,
    /// Reads since the last erase (read-disturb stress).
    pub reads_since_erase: u64,
    /// Lifecycle state.
    pub state: BlockState,
}

impl BlockMeta {
    /// Metadata of a freshly erased block that has already absorbed
    /// `erase_count` program/erase cycles (end-of-life studies).
    pub fn erased_with_wear(erase_count: u32) -> Self {
        BlockMeta {
            next_page: 0,
            erase_count,
            reads_since_erase: 0,
            state: BlockState::Open,
        }
    }
}

/// Programs the next-in-order page of a block given as `(meta, pages)`.
/// Shared by [`Block::program`] and the arena-backed array.
pub(crate) fn program_page(
    meta: &mut BlockMeta,
    pages: &mut [PageState],
    block_index: u64,
    page: u64,
    data: PageData,
    oob: Oob,
) -> Result<(), FlashError> {
    if meta.state == BlockState::NeedsErase {
        return Err(FlashError::ProgramToDirtyPage {
            block: block_index,
            page,
        });
    }
    if page != meta.next_page {
        return Err(FlashError::ProgramOutOfOrder {
            block: block_index,
            attempted: page,
            expected: meta.next_page,
        });
    }
    if !matches!(pages[page as usize], PageState::Erased) {
        return Err(FlashError::ProgramToDirtyPage {
            block: block_index,
            page,
        });
    }
    pages[page as usize] = PageState::Programmed {
        data,
        oob,
        raw_ber: 0,
    };
    meta.next_page += 1;
    Ok(())
}

/// Erases a whole block given as `(meta, pages)`. Shared by
/// [`Block::erase`] and the arena-backed array.
pub(crate) fn erase_block(
    meta: &mut BlockMeta,
    pages: &mut [PageState],
    block_index: u64,
    wear_budget: u32,
) -> Result<(), FlashError> {
    if meta.erase_count >= wear_budget {
        return Err(FlashError::BlockWornOut { block: block_index });
    }
    for p in pages.iter_mut() {
        *p = PageState::Erased;
    }
    meta.next_page = 0;
    meta.erase_count += 1;
    meta.reads_since_erase = 0;
    meta.state = BlockState::Open;
    Ok(())
}

/// Iterates a page slice's programmed pages as
/// `(page_index, data, oob, raw_ber)`.
pub(crate) fn programmed_pages(
    pages: &[PageState],
) -> impl Iterator<Item = (u64, PageData, Oob, u32)> + '_ {
    pages.iter().enumerate().filter_map(|(i, p)| match p {
        PageState::Programmed { data, oob, raw_ber } => Some((i as u64, *data, *oob, *raw_ber)),
        PageState::Erased => None,
    })
}

/// One standalone flash block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    meta: BlockMeta,
    pages: Vec<PageState>,
}

impl Block {
    /// Default program/erase cycle budget (MLC-order).
    pub const DEFAULT_WEAR_BUDGET: u32 = 3_000;

    /// Creates an erased block of `pages_per_block` pages.
    pub fn new(pages_per_block: u64) -> Self {
        Block::with_wear(pages_per_block, 0)
    }

    /// Creates an erased block that has already absorbed `erase_count`
    /// program/erase cycles (end-of-life studies).
    pub fn with_wear(pages_per_block: u64, erase_count: u32) -> Self {
        Block {
            meta: BlockMeta::erased_with_wear(erase_count),
            pages: vec![PageState::Erased; pages_per_block as usize],
        }
    }

    /// State of page `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page(&self, page: u64) -> &PageState {
        &self.pages[page as usize]
    }

    /// Mutable state of page `page` (used by the array's corruption
    /// injection).
    #[allow(dead_code)]
    pub(crate) fn page_mut(&mut self, page: u64) -> &mut PageState {
        &mut self.pages[page as usize]
    }

    /// Next page this block expects to program.
    pub fn next_page(&self) -> u64 {
        self.meta.next_page
    }

    /// How many erases this block has absorbed.
    pub fn erase_count(&self) -> u32 {
        self.meta.erase_count
    }

    /// Reads of this block since its last erase (read-disturb stress).
    pub fn reads_since_erase(&self) -> u64 {
        self.meta.reads_since_erase
    }

    /// Registers one read against the block's disturb counter.
    #[allow(dead_code)]
    pub(crate) fn note_read(&mut self) {
        self.meta.reads_since_erase += 1;
    }

    /// Lifecycle state.
    pub fn state(&self) -> BlockState {
        self.meta.state
    }

    /// Whether every page is programmed.
    pub fn is_full(&self) -> bool {
        self.meta.next_page as usize >= self.pages.len()
    }

    /// Programs the next-in-order page.
    ///
    /// # Errors
    ///
    /// * [`FlashError::ProgramOutOfOrder`] if `page` is not the block's
    ///   next expected page;
    /// * [`FlashError::ProgramToDirtyPage`] if the block needs an erase
    ///   (interrupted erase) or the target is already programmed.
    pub fn program(
        &mut self,
        block_index: u64,
        page: u64,
        data: PageData,
        oob: Oob,
    ) -> Result<(), FlashError> {
        program_page(&mut self.meta, &mut self.pages, block_index, page, data, oob)
    }

    /// Erases the whole block.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BlockWornOut`] once the wear budget is spent.
    pub fn erase(&mut self, block_index: u64, wear_budget: u32) -> Result<(), FlashError> {
        erase_block(&mut self.meta, &mut self.pages, block_index, wear_budget)
    }

    /// Marks the block as requiring an erase (interrupted erase).
    #[allow(dead_code)]
    pub(crate) fn mark_needs_erase(&mut self) {
        self.meta.state = BlockState::NeedsErase;
    }

    /// Iterates over programmed pages as `(page_index, data, oob, raw_ber)`.
    pub fn programmed_pages(&self) -> impl Iterator<Item = (u64, PageData, Oob, u32)> + '_ {
        programmed_pages(&self.pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_sim::Lba;

    fn data(tag: u64) -> PageData {
        PageData::from_tag(tag)
    }

    #[test]
    fn page_data_integrity_round_trip() {
        let d = data(99);
        assert!(d.is_intact());
        let g = d.garbled(12345);
        assert!(!g.is_intact());
        assert_eq!(g.tag, d.tag); // identity preserved, content broken
        assert_ne!(g.checksum, d.checksum);
    }

    #[test]
    fn garbling_is_absorbing_for_any_noise_word() {
        // The sweep oracle's phantom-data check trusts that no sequence
        // of corruptions can land back on an intact checksum — in
        // particular noise 0 must still garble (the `noise | 1` floor).
        for tag in [0u64, 7, u64::MAX] {
            let mut d = data(tag);
            for noise in [0u64, 1, 2, 0xFFFF_FFFF_FFFF_FFFF] {
                d = d.garbled(noise);
                assert!(!d.is_intact(), "tag {tag} noise {noise}");
                assert_eq!(d.tag, tag, "garbling never changes identity");
            }
        }
    }

    #[test]
    fn in_order_programming_succeeds() {
        let mut b = Block::new(4);
        for p in 0..4 {
            b.program(0, p, data(p), Oob::user(Lba::new(p), p)).unwrap();
        }
        assert!(b.is_full());
        assert_eq!(b.programmed_pages().count(), 4);
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut b = Block::new(4);
        let err = b
            .program(7, 2, data(1), Oob::user(Lba::new(0), 0))
            .unwrap_err();
        assert_eq!(
            err,
            FlashError::ProgramOutOfOrder {
                block: 7,
                attempted: 2,
                expected: 0
            }
        );
    }

    #[test]
    fn erase_resets_and_counts() {
        let mut b = Block::new(2);
        b.program(0, 0, data(1), Oob::user(Lba::new(0), 0)).unwrap();
        b.erase(0, 10).unwrap();
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.next_page(), 0);
        assert!(matches!(b.page(0), PageState::Erased));
        // Can program page 0 again after erase.
        b.program(0, 0, data(2), Oob::user(Lba::new(0), 1)).unwrap();
    }

    #[test]
    fn wear_budget_enforced() {
        let mut b = Block::new(1);
        b.erase(3, 2).unwrap();
        b.erase(3, 2).unwrap();
        assert_eq!(
            b.erase(3, 2).unwrap_err(),
            FlashError::BlockWornOut { block: 3 }
        );
    }

    #[test]
    fn needs_erase_blocks_programs_until_erased() {
        let mut b = Block::new(2);
        b.mark_needs_erase();
        assert_eq!(b.state(), BlockState::NeedsErase);
        assert!(matches!(
            b.program(0, 0, data(1), Oob::user(Lba::new(0), 0)),
            Err(FlashError::ProgramToDirtyPage { .. })
        ));
        b.erase(0, 10).unwrap();
        assert_eq!(b.state(), BlockState::Open);
        b.program(0, 0, data(1), Oob::user(Lba::new(0), 0)).unwrap();
    }

    #[test]
    fn programmed_pages_reports_oob() {
        let mut b = Block::new(3);
        b.program(0, 0, data(5), Oob::user(Lba::new(50), 1))
            .unwrap();
        b.program(0, 1, data(6), Oob::journal(2, 2)).unwrap();
        let pages: Vec<_> = b.programmed_pages().collect();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].2.lba(), Some(Lba::new(50)));
        assert_eq!(pages[1].2.lba(), None);
    }
}
