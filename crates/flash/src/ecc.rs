//! Error-correcting code model.
//!
//! Real SSD controllers pass every page read through an ECC decoder; raw
//! bit errors below the correction strength are invisible to the host, and
//! uncorrectable pages surface as read failures. The paper's Table I lists
//! ECC for all three vendors, with SSD B using LDPC — stronger than the
//! BCH codes typical of 2013-era MLC drives.
//!
//! The model is statistical: pages carry a raw bit-error *count* (per
//! 4 KiB page) and the decoder compares it against the scheme's correction
//! capability, with a soft-decision bonus for LDPC.

use serde::{Deserialize, Serialize};

use pfault_sim::DetRng;

/// ECC scheme and strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccScheme {
    /// No correction (pass-through). Not used by any Table I drive, but
    /// available for ablations.
    None,
    /// BCH-like hard-decision code correcting up to `t` bits per page.
    Bch {
        /// Correction capability, bits per 4 KiB page.
        t: u32,
    },
    /// LDPC-like soft-decision code: corrects up to `t` bits outright and
    /// recovers pages up to `2 * t` with decreasing probability (soft
    /// retries).
    Ldpc {
        /// Hard correction capability, bits per 4 KiB page.
        t: u32,
    },
}

impl EccScheme {
    /// A typical 2013-era MLC BCH configuration (40 bits / page).
    pub const fn bch_mlc() -> Self {
        EccScheme::Bch { t: 40 }
    }

    /// A typical 2015-era TLC LDPC configuration (72 bits / page hard).
    pub const fn ldpc_tlc() -> Self {
        EccScheme::Ldpc { t: 72 }
    }
}

/// Result of decoding one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// Page decoded cleanly; all raw errors corrected.
    Corrected {
        /// How many raw bit errors were repaired.
        repaired: u32,
    },
    /// Raw errors exceeded the correction capability.
    Uncorrectable,
}

/// Decodes a page with `raw_bit_errors` raw errors under `scheme`.
///
/// LDPC soft retries are stochastic (they depend on noise realisation), so
/// the decoder takes an RNG. BCH and `None` are deterministic.
///
/// # Example
///
/// ```
/// use pfault_flash::ecc::{decode, EccOutcome, EccScheme};
/// use pfault_sim::DetRng;
///
/// let mut rng = DetRng::new(1);
/// assert_eq!(
///     decode(EccScheme::Bch { t: 40 }, 10, &mut rng),
///     EccOutcome::Corrected { repaired: 10 }
/// );
/// assert_eq!(
///     decode(EccScheme::Bch { t: 40 }, 41, &mut rng),
///     EccOutcome::Uncorrectable
/// );
/// ```
pub fn decode(scheme: EccScheme, raw_bit_errors: u32, rng: &mut DetRng) -> EccOutcome {
    match scheme {
        EccScheme::None => {
            if raw_bit_errors == 0 {
                EccOutcome::Corrected { repaired: 0 }
            } else {
                EccOutcome::Uncorrectable
            }
        }
        EccScheme::Bch { t } => {
            if raw_bit_errors <= t {
                EccOutcome::Corrected {
                    repaired: raw_bit_errors,
                }
            } else {
                EccOutcome::Uncorrectable
            }
        }
        EccScheme::Ldpc { t } => {
            if raw_bit_errors <= t {
                EccOutcome::Corrected {
                    repaired: raw_bit_errors,
                }
            } else if raw_bit_errors <= 2 * t {
                // Soft-decision retry: success probability falls linearly
                // from 1 at `t` to 0 at `2t`.
                let span = f64::from(t);
                let over = f64::from(raw_bit_errors - t);
                if rng.chance(1.0 - over / span) {
                    EccOutcome::Corrected {
                        repaired: raw_bit_errors,
                    }
                } else {
                    EccOutcome::Uncorrectable
                }
            } else {
                EccOutcome::Uncorrectable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_passes_only_clean_pages() {
        let mut rng = DetRng::new(1);
        assert_eq!(
            decode(EccScheme::None, 0, &mut rng),
            EccOutcome::Corrected { repaired: 0 }
        );
        assert_eq!(
            decode(EccScheme::None, 1, &mut rng),
            EccOutcome::Uncorrectable
        );
    }

    #[test]
    fn bch_threshold_is_exact() {
        let mut rng = DetRng::new(2);
        let s = EccScheme::Bch { t: 5 };
        assert_eq!(
            decode(s, 5, &mut rng),
            EccOutcome::Corrected { repaired: 5 }
        );
        assert_eq!(decode(s, 6, &mut rng), EccOutcome::Uncorrectable);
    }

    #[test]
    fn ldpc_corrects_hard_region_deterministically() {
        let mut rng = DetRng::new(3);
        let s = EccScheme::Ldpc { t: 10 };
        for e in 0..=10 {
            assert_eq!(
                decode(s, e, &mut rng),
                EccOutcome::Corrected { repaired: e }
            );
        }
        assert_eq!(decode(s, 21, &mut rng), EccOutcome::Uncorrectable);
    }

    #[test]
    fn ldpc_soft_region_is_probabilistic_and_monotonic() {
        let s = EccScheme::Ldpc { t: 10 };
        let success_rate = |errors: u32| {
            let mut rng = DetRng::new(4);
            (0..2_000)
                .filter(|_| matches!(decode(s, errors, &mut rng), EccOutcome::Corrected { .. }))
                .count() as f64
                / 2_000.0
        };
        let r11 = success_rate(11);
        let r19 = success_rate(19);
        assert!(r11 > 0.8, "just past t should mostly succeed: {r11}");
        assert!(r19 < 0.2, "near 2t should mostly fail: {r19}");
        assert!(r11 > r19);
    }

    #[test]
    fn presets_have_sensible_strengths() {
        let EccScheme::Bch { t: bch_t } = EccScheme::bch_mlc() else {
            panic!("bch_mlc must be BCH");
        };
        let EccScheme::Ldpc { t: ldpc_t } = EccScheme::ldpc_tlc() else {
            panic!("ldpc_tlc must be LDPC");
        };
        assert!(ldpc_t > bch_t, "LDPC preset should be stronger");
    }
}
