//! The volatile DRAM write-back cache.
//!
//! Writes are acknowledged the moment their sectors land here; a background
//! flusher later programs them to NAND. Everything dirty at power loss is
//! simply gone — the host holds an ACK for data the flash never saw, which
//! the Analyzer classifies as a **False Write-Acknowledge** (§III-B). The
//! paper singles this cache out as the prime suspect for post-completion
//! data loss (§IV-A) and for the FWA-dominated failures of small requests
//! (§IV-E).
//!
//! Each background flush program the cache feeds into NAND is a named
//! fault site ([`crate::sites::FaultSite::CacheFlushProgram`], recorded
//! by the device when site logging is enabled), so the boundary sweeper
//! can cut power at the start, middle, and end of every eviction it
//! schedules.

use std::collections::{BTreeSet, VecDeque};

use pfault_flash::array::PageData;
use pfault_sim::{DetHashMap, Lba, SimTime};

/// State of one cached sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Content of the sector.
    pub data: PageData,
    /// When the sector was inserted (dirty) or last refreshed.
    pub inserted_at: SimTime,
    /// Dirty entries still owe a NAND program.
    pub dirty: bool,
    /// A flush of this entry is currently in the program pipeline.
    pub flushing: bool,
}

/// Write-back cache keyed by LBA, with FIFO dirty ordering.
///
/// # Example
///
/// ```
/// use pfault_ssd::cache::WriteCache;
/// use pfault_flash::array::PageData;
/// use pfault_sim::{Lba, SimTime};
///
/// let mut cache = WriteCache::new(100);
/// cache.insert(Lba::new(5), PageData::from_tag(1), SimTime::ZERO);
/// assert_eq!(cache.lookup(Lba::new(5)), Some(PageData::from_tag(1)));
/// assert_eq!(cache.dirty_sectors(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WriteCache {
    capacity: u64,
    entries: DetHashMap<Lba, CacheEntry>,
    dirty_fifo: VecDeque<Lba>,
    /// Maintained count of dirty entries so pressure checks on the event
    /// path are O(1) instead of a scan over every resident sector.
    dirty_count: u64,
    /// Clean entries ordered by `(inserted_at, lba)` — the eviction
    /// order — maintained at the dirty/clean transition points so a full
    /// cache does not pay a collect-and-sort over every resident sector
    /// on each eviction (that scan dominated the trial hot path once
    /// warm-ups started filling the cache to capacity).
    clean_index: BTreeSet<(SimTime, Lba)>,
}

impl WriteCache {
    /// Creates a cache holding up to `capacity_sectors` sectors.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_sectors: u64) -> Self {
        assert!(capacity_sectors > 0, "cache capacity must be positive");
        WriteCache {
            capacity: capacity_sectors,
            entries: DetHashMap::default(),
            dirty_fifo: VecDeque::new(),
            dirty_count: 0,
            clean_index: BTreeSet::new(),
        }
    }

    /// Capacity in sectors.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Sectors currently resident (dirty + clean).
    pub fn resident_sectors(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Sectors that still owe a NAND program.
    pub fn dirty_sectors(&self) -> u64 {
        self.dirty_count
    }

    /// Whether `n` more sectors fit (counting only resident sectors).
    pub fn has_room_for(&self, n: u64) -> bool {
        self.resident_sectors() + n <= self.capacity
    }

    /// Content of `lba` if cached.
    pub fn lookup(&self, lba: Lba) -> Option<PageData> {
        self.entries.get(&lba).map(|e| e.data)
    }

    /// Inserts (or overwrites) a sector as dirty.
    ///
    /// Overwriting a sector whose flush is in flight re-dirties it: the
    /// in-flight program will land the *old* content, and this newer
    /// version still owes its own program.
    pub fn insert(&mut self, lba: Lba, data: PageData, now: SimTime) {
        let entry = CacheEntry {
            data,
            inserted_at: now,
            dirty: true,
            flushing: false,
        };
        let prior = self.entries.insert(lba, entry);
        if let Some(p) = prior {
            if !p.dirty {
                self.clean_index.remove(&(p.inserted_at, lba));
            }
        }
        if !prior.is_some_and(|p| p.dirty) {
            self.dirty_count += 1;
        }
        match prior {
            Some(p) if p.dirty && !p.flushing => {
                // Was already queued dirty: keep its FIFO position.
            }
            _ => self.dirty_fifo.push_back(lba),
        }
    }

    /// Read-only probe for the event scheduler: insertion time of the
    /// oldest dirty, not-yet-flushing sector, skipping (but not
    /// consuming) stale FIFO slots. `None` when nothing dirty is queued.
    pub fn peek_flushable_inserted_at(&self) -> Option<SimTime> {
        self.dirty_fifo.iter().find_map(|lba| {
            let e = self.entries.get(lba)?;
            (e.dirty && !e.flushing).then_some(e.inserted_at)
        })
    }

    /// The oldest dirty, not-yet-flushing sector whose age qualifies it
    /// for flushing: either it aged past `flush_delay`, or the cache is
    /// under pressure.
    pub fn next_flushable(
        &mut self,
        now: SimTime,
        flush_delay: pfault_sim::SimDuration,
        pressure_watermark: f64,
    ) -> Option<(Lba, PageData)> {
        let under_pressure =
            self.dirty_sectors() as f64 >= self.capacity as f64 * pressure_watermark;
        // Pop stale FIFO entries (overwritten or already flushed).
        while let Some(&lba) = self.dirty_fifo.front() {
            let Some(entry) = self.entries.get(&lba) else {
                self.dirty_fifo.pop_front();
                continue;
            };
            if !entry.dirty || entry.flushing {
                self.dirty_fifo.pop_front();
                continue;
            }
            let old_enough = now.saturating_since(entry.inserted_at) >= flush_delay;
            if !(old_enough || under_pressure) {
                return None; // FIFO head too young and no pressure
            }
            self.dirty_fifo.pop_front();
            let entry = self.entries.get_mut(&lba).expect("entry checked above");
            entry.flushing = true;
            return Some((lba, entry.data));
        }
        None
    }

    /// Marks a flushed sector clean, unless it was re-dirtied while its
    /// program was in flight.
    pub fn flush_complete(&mut self, lba: Lba, flushed: PageData) {
        if let Some(entry) = self.entries.get_mut(&lba) {
            if entry.data == flushed {
                if entry.dirty {
                    self.dirty_count -= 1;
                }
                self.clean_index.insert((entry.inserted_at, lba));
                entry.dirty = false;
                entry.flushing = false;
            } else {
                // Re-dirtied during the flush: the newer content still owes
                // a program; it is already queued in the FIFO.
                entry.flushing = false;
            }
        }
    }

    /// Abandons an in-flight flush (power loss interrupted the program).
    /// The entry returns to the head of the dirty queue.
    pub fn flush_aborted(&mut self, lba: Lba) {
        if let Some(entry) = self.entries.get_mut(&lba) {
            if entry.flushing {
                entry.flushing = false;
                if entry.dirty {
                    self.dirty_fifo.push_front(lba);
                }
            }
        }
    }

    /// Drops a sector entirely (TRIM): dirty or clean, it no longer
    /// exists from the host's point of view.
    pub fn invalidate(&mut self, lba: Lba) {
        if let Some(e) = self.entries.remove(&lba) {
            if e.dirty {
                self.dirty_count -= 1;
            } else {
                self.clean_index.remove(&(e.inserted_at, lba));
            }
        }
        // A stale FIFO slot is skipped lazily by next_flushable.
    }

    /// Evicts clean sectors to make room, oldest first. Returns how many
    /// were evicted (dirty sectors are never evicted).
    pub fn evict_clean(&mut self, want_room_for: u64) -> u64 {
        let mut evicted = 0;
        while !self.has_room_for(want_room_for) {
            let Some(&(at, lba)) = self.clean_index.first() else {
                break;
            };
            self.clean_index.remove(&(at, lba));
            debug_assert!(
                self.entries.get(&lba).is_some_and(|e| !e.dirty && !e.flushing),
                "clean index out of sync at {lba:?}"
            );
            self.entries.remove(&lba);
            evicted += 1;
        }
        evicted
    }

    /// All dirty sectors (supercap panic flush / loss accounting).
    pub fn dirty_entries(&self) -> Vec<(Lba, PageData)> {
        let mut v: Vec<(Lba, PageData)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&l, e)| (l, e.data))
            .collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// Drops everything (power loss).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dirty_fifo.clear();
        self.dirty_count = 0;
        self.clean_index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_sim::SimDuration;

    const NO_DELAY: SimDuration = SimDuration::ZERO;

    fn data(tag: u64) -> PageData {
        PageData::from_tag(tag)
    }

    #[test]
    fn insert_lookup_dirty_accounting() {
        let mut c = WriteCache::new(10);
        c.insert(Lba::new(1), data(1), SimTime::ZERO);
        c.insert(Lba::new(2), data(2), SimTime::ZERO);
        assert_eq!(c.lookup(Lba::new(1)), Some(data(1)));
        assert_eq!(c.lookup(Lba::new(9)), None);
        assert_eq!(c.dirty_sectors(), 2);
        assert_eq!(c.resident_sectors(), 2);
    }

    #[test]
    fn flushable_order_is_fifo() {
        let mut c = WriteCache::new(10);
        c.insert(Lba::new(5), data(5), SimTime::from_millis(1));
        c.insert(Lba::new(3), data(3), SimTime::from_millis(2));
        let now = SimTime::from_millis(100);
        assert_eq!(
            c.next_flushable(now, NO_DELAY, 1.0),
            Some((Lba::new(5), data(5)))
        );
        assert_eq!(
            c.next_flushable(now, NO_DELAY, 1.0),
            Some((Lba::new(3), data(3)))
        );
        assert_eq!(c.next_flushable(now, NO_DELAY, 1.0), None);
    }

    #[test]
    fn flush_delay_holds_young_entries() {
        let mut c = WriteCache::new(100);
        c.insert(Lba::new(1), data(1), SimTime::from_millis(10));
        let delay = SimDuration::from_millis(200);
        assert_eq!(
            c.next_flushable(SimTime::from_millis(100), delay, 1.0),
            None
        );
        assert!(c
            .next_flushable(SimTime::from_millis(210), delay, 1.0)
            .is_some());
    }

    #[test]
    fn pressure_overrides_delay() {
        let mut c = WriteCache::new(4);
        for i in 0..3 {
            c.insert(Lba::new(i), data(i), SimTime::ZERO);
        }
        // 3/4 dirty ≥ 0.5 watermark → flush despite the huge delay.
        let flushed = c.next_flushable(SimTime::ZERO, SimDuration::from_secs(999), 0.5);
        assert!(flushed.is_some());
    }

    #[test]
    fn flush_complete_cleans_entry() {
        let mut c = WriteCache::new(10);
        c.insert(Lba::new(1), data(1), SimTime::ZERO);
        let (lba, d) = c.next_flushable(SimTime::ZERO, NO_DELAY, 1.0).unwrap();
        c.flush_complete(lba, d);
        assert_eq!(c.dirty_sectors(), 0);
        assert_eq!(c.lookup(Lba::new(1)), Some(data(1))); // stays resident clean
    }

    #[test]
    fn overwrite_during_flight_keeps_entry_dirty() {
        let mut c = WriteCache::new(10);
        c.insert(Lba::new(1), data(1), SimTime::ZERO);
        let (lba, old) = c.next_flushable(SimTime::ZERO, NO_DELAY, 1.0).unwrap();
        // Host overwrites while the program is in flight.
        c.insert(Lba::new(1), data(2), SimTime::from_millis(1));
        c.flush_complete(lba, old);
        assert_eq!(c.dirty_sectors(), 1, "newer version still owes a program");
        let again = c.next_flushable(SimTime::from_millis(2), NO_DELAY, 1.0);
        assert_eq!(again, Some((Lba::new(1), data(2))));
    }

    #[test]
    fn overwrite_of_queued_dirty_does_not_duplicate() {
        let mut c = WriteCache::new(10);
        c.insert(Lba::new(1), data(1), SimTime::ZERO);
        c.insert(Lba::new(1), data(2), SimTime::ZERO);
        assert_eq!(c.dirty_sectors(), 1);
        assert!(c.next_flushable(SimTime::ZERO, NO_DELAY, 1.0).is_some());
        assert!(c.next_flushable(SimTime::ZERO, NO_DELAY, 1.0).is_none());
    }

    #[test]
    fn evict_clean_frees_room_but_spares_dirty() {
        let mut c = WriteCache::new(3);
        c.insert(Lba::new(1), data(1), SimTime::ZERO);
        c.insert(Lba::new(2), data(2), SimTime::ZERO);
        let (l, d) = c.next_flushable(SimTime::ZERO, NO_DELAY, 1.0).unwrap();
        c.flush_complete(l, d); // lba 1 now clean
        c.insert(Lba::new(3), data(3), SimTime::ZERO);
        assert!(!c.has_room_for(1));
        let evicted = c.evict_clean(1);
        assert_eq!(evicted, 1);
        assert!(c.has_room_for(1));
        assert_eq!(c.lookup(Lba::new(1)), None);
        assert_eq!(c.dirty_sectors(), 2);
    }

    #[test]
    fn clear_models_power_loss() {
        let mut c = WriteCache::new(10);
        c.insert(Lba::new(1), data(1), SimTime::ZERO);
        assert_eq!(c.dirty_entries().len(), 1);
        c.clear();
        assert_eq!(c.resident_sectors(), 0);
        assert!(c.dirty_entries().is_empty());
    }

    #[test]
    fn flush_aborted_requeues_nothing_but_clears_flag() {
        let mut c = WriteCache::new(10);
        c.insert(Lba::new(1), data(1), SimTime::ZERO);
        let (lba, _) = c.next_flushable(SimTime::ZERO, NO_DELAY, 1.0).unwrap();
        c.flush_aborted(lba);
        // Entry is dirty again but its FIFO slot was consumed; dirty
        // accounting still sees it.
        assert_eq!(c.dirty_sectors(), 1);
    }
}
