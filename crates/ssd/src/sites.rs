//! Named, deterministic fault sites.
//!
//! The fault-space sweeper wants to cut power *at a pipeline event*, not
//! at an operator-guessed `SimTime`: "during the third journal-batch
//! program", "halfway through the checkpoint write", "just as the paired
//! upper page starts". To make that addressable, the device records a
//! [`SiteSpan`] for every occurrence of each named [`FaultSite`] while
//! recording is enabled. A census run (same seed, no fault) enumerates the
//! spans; the sweeper then replays the trial once per (site, occurrence,
//! phase) with the cut placed inside the recorded span. Determinism of the
//! whole stack guarantees the replayed occurrence lands at the recorded
//! instant.
//!
//! Recording is off by default — campaigns pay nothing for it.

use pfault_flash::Ppa;
use pfault_sim::SimTime;

/// A named class of instants at which a power cut is interesting.
///
/// The variants cover every durability-relevant transition of the device
/// pipeline: user-data programs from each source, the journal/checkpoint
/// control programs, GC erase, the paired-page second program that can
/// destroy already-acknowledged sibling data, and the mapping replay on
/// the recovery path itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// NAND program of a dirty sector flushed from the write cache.
    CacheFlushProgram,
    /// NAND program of a direct (cache-off) user write sector.
    DirectProgram,
    /// NAND program relocating a live sector during garbage collection.
    GcRelocProgram,
    /// A program landing on an upper page whose earlier wordline siblings
    /// hold acknowledged data (the paired-page corruption window).
    PairedSecondProgram,
    /// Journal-batch program: the window in which a batch can tear.
    JournalCommitProgram,
    /// Mapping-checkpoint program.
    CheckpointProgram,
    /// GC victim-block erase.
    GcErase,
    /// Journal/checkpoint replay during `power_on_recover` (a cut
    /// here models a second outage mid-recovery). This is stage 2 of the
    /// recovery pipeline — the mapping rebuild.
    MappingReplay,
    /// Stage 1 of the recovery pipeline: checkpoint selection and
    /// journal-page triage. A cut here loses the scan; the next mount
    /// restarts the stage from its boundary.
    RecoveryJournalScan,
    /// Stage 3 of the recovery pipeline: post-rebuild dirty-page
    /// verification reads (only with `recovery_verify` enabled).
    RecoveryVerify,
    /// Stage 4 of the recovery pipeline: bad-block retirement and
    /// relocation programs (only with `retire_bad_blocks` enabled).
    RecoveryRetirement,
}

impl FaultSite {
    /// Every site, in a fixed order (indexes into per-site counters).
    pub const ALL: [FaultSite; 11] = [
        FaultSite::CacheFlushProgram,
        FaultSite::DirectProgram,
        FaultSite::GcRelocProgram,
        FaultSite::PairedSecondProgram,
        FaultSite::JournalCommitProgram,
        FaultSite::CheckpointProgram,
        FaultSite::GcErase,
        FaultSite::MappingReplay,
        FaultSite::RecoveryJournalScan,
        FaultSite::RecoveryVerify,
        FaultSite::RecoveryRetirement,
    ];

    /// Stable human-readable name (used in reports and repro files).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CacheFlushProgram => "cache-flush-program",
            FaultSite::DirectProgram => "direct-program",
            FaultSite::GcRelocProgram => "gc-reloc-program",
            FaultSite::PairedSecondProgram => "paired-second-program",
            FaultSite::JournalCommitProgram => "journal-commit-program",
            FaultSite::CheckpointProgram => "checkpoint-program",
            FaultSite::GcErase => "gc-erase",
            FaultSite::MappingReplay => "mapping-replay",
            FaultSite::RecoveryJournalScan => "recovery-journal-scan",
            FaultSite::RecoveryVerify => "recovery-verify",
            FaultSite::RecoveryRetirement => "recovery-retirement",
        }
    }

    fn slot(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|&s| s == self)
            .expect("every site is listed in ALL")
    }
}

/// One recorded occurrence of a fault site: the `index`-th time `site`
/// happened, spanning `[start, end]` in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSpan {
    /// Which site occurred.
    pub site: FaultSite,
    /// Per-site occurrence number, starting at 0.
    pub index: u64,
    /// When the operation started (instantaneous sites use `start == end`).
    pub start: SimTime,
    /// When the operation completed.
    pub end: SimTime,
    /// Flash address involved, when the site has one (erases report page 0
    /// of the victim block).
    pub ppa: Option<Ppa>,
}

/// Recorder for site occurrences. Disabled (and free) by default.
#[derive(Debug, Clone, Default)]
pub struct SiteLog {
    enabled: bool,
    spans: Vec<SiteSpan>,
    counts: [u64; FaultSite::ALL.len()],
}

impl SiteLog {
    /// Creates a disabled log.
    pub fn new() -> Self {
        SiteLog::default()
    }

    /// Starts recording occurrences.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether occurrences are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one occurrence of `site` spanning `[start, end]`,
    /// returning the global span index it was stored at (the probe bus
    /// tags its events with this id). A no-op returning `None` while
    /// disabled (the occurrence counters do not advance either, so a
    /// later census starts from zero).
    pub fn record(
        &mut self,
        site: FaultSite,
        start: SimTime,
        end: SimTime,
        ppa: Option<Ppa>,
    ) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let slot = site.slot();
        let index = self.counts[slot];
        self.counts[slot] += 1;
        self.spans.push(SiteSpan {
            site,
            index,
            start,
            end,
            ppa,
        });
        Some((self.spans.len() - 1) as u64)
    }

    /// All recorded spans, in the order they occurred.
    pub fn spans(&self) -> &[SiteSpan] {
        &self.spans
    }

    /// Occurrences recorded for `site` so far.
    pub fn count(&self, site: FaultSite) -> u64 {
        self.counts[site.slot()]
    }

    /// Total recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = SiteLog::new();
        log.record(
            FaultSite::CacheFlushProgram,
            SimTime::ZERO,
            SimTime::from_micros(10),
            None,
        );
        assert!(log.is_empty());
        assert_eq!(log.count(FaultSite::CacheFlushProgram), 0);
    }

    #[test]
    fn indexes_count_per_site() {
        let mut log = SiteLog::new();
        log.enable();
        let t = SimTime::from_micros(1);
        log.record(FaultSite::JournalCommitProgram, t, t, None);
        log.record(FaultSite::CacheFlushProgram, t, t, None);
        log.record(FaultSite::JournalCommitProgram, t, t, None);
        let journal: Vec<u64> = log
            .spans()
            .iter()
            .filter(|s| s.site == FaultSite::JournalCommitProgram)
            .map(|s| s.index)
            .collect();
        assert_eq!(journal, vec![0, 1]);
        assert_eq!(log.count(FaultSite::JournalCommitProgram), 2);
        assert_eq!(log.count(FaultSite::CacheFlushProgram), 1);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultSite::ALL.len());
    }
}
