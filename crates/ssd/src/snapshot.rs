//! Warm-state device snapshots.
//!
//! Campaign trials share a deterministic *warm-up*: the same workload
//! prefix on the same device configuration, byte-for-byte. Replaying that
//! prefix from a cold device for every trial dominates campaign cost, so
//! the engine runs it once, captures the warm device as an
//! [`SsdSnapshot`], and every trial [`SsdSnapshot::restore`]s a private
//! deep copy instead.
//!
//! # Determinism contract
//!
//! A snapshot captures *everything* that shapes future behaviour:
//!
//! * the NAND array (page contents, OOB records, raw bit-error counts,
//!   wear and read-disturb counters);
//! * the FTL (logical-to-physical map, journal buffer, allocator cursors,
//!   retired/full block sets) plus the durable journal and checkpoints;
//! * the volatile write cache, queues, in-flight pipeline, and the
//!   simulated clock;
//! * the device RNG **stream position** — not just the seed. The warm-up
//!   consumes device randomness (commit-phase draw, read-error draws);
//!   restoring the seed alone would replay the warm-up's draws a second
//!   time and diverge from a replayed-from-cold trial.
//!
//! Trials then call [`crate::device::Ssd::reseed_for_trial`] to fork the
//! restored stream with their trial seed, which keeps per-trial
//! randomness independent while preserving equality with the cold path
//! (which performs the same warm-up and the same fork).

use pfault_sim::SimTime;

use crate::device::Ssd;

/// A deep copy of a warmed-up device, cheap to restore per trial.
///
/// Produced by `TestPlatform::warm_snapshot` in `pfault-platform` and
/// memoized in its snapshot cache keyed by `config_digest`.
#[derive(Debug, Clone)]
pub struct SsdSnapshot {
    ssd: Ssd,
    config_digest: u64,
    fingerprint: u64,
}

impl SsdSnapshot {
    /// Captures the device's current state. `config_digest` identifies
    /// the (trial configuration, vendor) pair that produced it, so a
    /// memoizing cache can never hand a snapshot to a mismatched trial.
    pub fn capture(ssd: &Ssd, config_digest: u64) -> Self {
        SsdSnapshot {
            fingerprint: ssd.state_digest(),
            ssd: ssd.clone(),
            config_digest,
        }
    }

    /// A fresh deep copy of the captured device. Restoring never mutates
    /// the snapshot, so any number of trials can restore concurrently
    /// from a shared snapshot.
    pub fn restore(&self) -> Ssd {
        self.ssd.clone()
    }

    /// The configuration digest the snapshot was captured under.
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// State digest taken at capture time; `restore().state_digest()`
    /// always equals this.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The simulated time at which the warm-up finished.
    pub fn warm_now(&self) -> SimTime {
        self.ssd.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::HostCommand;
    use crate::vendor::VendorPreset;
    use pfault_sim::{DetRng, Lba, SectorCount, SimTime};

    fn warmed_ssd() -> Ssd {
        let mut ssd = Ssd::new(VendorPreset::SsdA.config(), DetRng::new(9));
        for i in 0..32 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(8),
                0xBEEF + i,
            ));
            ssd.advance_to(SimTime::from_millis(2 * (i + 1)));
            ssd.drain_completions();
        }
        ssd.quiesce();
        ssd
    }

    #[test]
    fn restore_preserves_state_digest() {
        let ssd = warmed_ssd();
        let snap = SsdSnapshot::capture(&ssd, 42);
        assert_eq!(snap.fingerprint(), ssd.state_digest());
        assert_eq!(snap.restore().state_digest(), snap.fingerprint());
        assert_eq!(snap.config_digest(), 42);
        assert_eq!(snap.warm_now(), ssd.now());
    }

    #[test]
    fn restored_devices_evolve_identically() {
        let snap = SsdSnapshot::capture(&warmed_ssd(), 1);
        let mut a = snap.restore();
        let mut b = snap.restore();
        for (ssd, label) in [(&mut a, "a"), (&mut b, "b")] {
            let _ = label;
            ssd.submit(HostCommand::write(
                100,
                0,
                Lba::new(64),
                SectorCount::new(8),
                0xD00D,
            ));
            ssd.advance_to(ssd.now() + pfault_sim::SimDuration::from_millis(5));
        }
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.drain_completions(), b.drain_completions());
    }

    #[test]
    fn trial_fork_depends_on_stream_position_and_seed() {
        let ssd = warmed_ssd();
        let snap = SsdSnapshot::capture(&ssd, 1);
        let mut a = snap.restore();
        let mut b = snap.restore();
        a.reseed_for_trial(7);
        b.reseed_for_trial(8);
        assert_ne!(
            a.state_digest(),
            b.state_digest(),
            "different trial seeds must fork different device streams"
        );
        let mut c = snap.restore();
        c.reseed_for_trial(7);
        assert_eq!(a.state_digest(), c.state_digest());
    }

    #[test]
    fn mutating_a_restored_device_leaves_the_snapshot_intact() {
        let snap = SsdSnapshot::capture(&warmed_ssd(), 1);
        let before = snap.fingerprint();
        let mut restored = snap.restore();
        restored.submit(HostCommand::write(
            200,
            0,
            Lba::new(0),
            SectorCount::new(8),
            0xFACE,
        ));
        restored.advance_to(restored.now() + pfault_sim::SimDuration::from_millis(10));
        assert_ne!(restored.state_digest(), before);
        assert_eq!(snap.restore().state_digest(), before);
    }
}
