//! Warm-state device images with copy-on-write trial clones.
//!
//! Campaign trials share a deterministic *warm-up*: the same workload
//! prefix on the same device configuration, byte-for-byte. Replaying
//! that prefix from a cold device for every trial dominates campaign
//! cost, so the engine runs it once, captures the warm device as a
//! [`DeviceImage`], and every trial [`DeviceImage::clone_cow`]s it.
//!
//! # Image anatomy
//!
//! [`Ssd::capture`] *freezes* the device's flash arena
//! ([`pfault_flash::array::FlashArray::flatten`]): every materialised
//! block moves into one shared, immutable, `Arc`-refcounted slab.
//! `clone_cow` then copies the (small) FTL/cache/queue state and bumps
//! the arena refcount — no NAND bytes move. The clone starts with an
//! empty *overlay*; the first write (or disturb-counting read) to a
//! block copies just that block up into the clone's private overlay.
//! Restoring a trial is therefore "drop the overlay, clone again",
//! and its cost scales with the trial's working set, not the device.
//!
//! [`DeviceImage::delta_from`] goes one step further for sweeps whose
//! points share a warm prefix: an image that *evolved from* another
//! image is re-expressed as that base plus an overlay holding only the
//! blocks that differ, so a family of sweep-point images shares one
//! arena instead of `N` flattened copies.
//!
//! # Determinism contract
//!
//! An image captures *everything* that shapes future behaviour:
//!
//! * the NAND array (page contents, OOB records, raw bit-error counts,
//!   wear and read-disturb counters) — including the arena's block
//!   *materialisation order*, which fixes full-scan recovery's read
//!   order and hence its RNG draw sequence;
//! * the FTL (logical-to-physical map, journal buffer, allocator
//!   cursors, retired/full block sets) plus the durable journal and
//!   checkpoints;
//! * the volatile write cache, queues, in-flight pipeline, and the
//!   simulated clock;
//! * the device RNG **stream position** — not just the seed. The
//!   warm-up consumes device randomness (commit-phase draw, read-error
//!   draws); restoring the seed alone would replay the warm-up's draws
//!   a second time and diverge from a replayed-from-cold trial.
//!
//! Trials then call [`Ssd::reseed_for_trial`] to fork the restored
//! stream with their trial seed, which keeps per-trial randomness
//! independent while preserving equality with the cold path (which
//! performs the same warm-up and the same fork).

use pfault_sim::SimTime;

use crate::device::Ssd;

/// A frozen warm device, cheap to clone per trial (copy-on-write).
///
/// Produced by [`Ssd::capture`]; memoized by `pfault-platform`'s
/// snapshot cache keyed by `config_digest`.
#[derive(Debug, Clone)]
pub struct DeviceImage {
    ssd: Ssd,
    config_digest: u64,
    fingerprint: u64,
}

impl Ssd {
    /// Freezes this device into a [`DeviceImage`]. `config_digest`
    /// identifies the (trial configuration, vendor) pair that produced
    /// it, so a memoizing cache can never hand an image to a mismatched
    /// trial.
    ///
    /// Capture consumes the device: the flash arena is flattened into
    /// the shared immutable base the image's clones will reference.
    /// Flattening is content-preserving — the image's
    /// [`fingerprint`](DeviceImage::fingerprint) equals the device's
    /// [`state_digest`](Ssd::state_digest) at the call.
    pub fn capture(mut self, config_digest: u64) -> DeviceImage {
        let fingerprint = self.state_digest();
        self.freeze_flash();
        debug_assert_eq!(
            self.state_digest(),
            fingerprint,
            "flatten must preserve observable state"
        );
        DeviceImage {
            ssd: self,
            config_digest,
            fingerprint,
        }
    }
}

impl DeviceImage {
    /// A private copy-on-write clone of the captured device. The clone
    /// shares the image's flash arena and materialises only the blocks
    /// it touches; cloning never mutates the image, so any number of
    /// trials can clone concurrently from a shared image.
    pub fn clone_cow(&self) -> Ssd {
        self.ssd.clone()
    }

    /// Re-expresses this image as a delta over `base`: the returned
    /// image is behaviourally identical to `self` but shares `base`'s
    /// arena, holding only the blocks that differ (plus blocks `self`
    /// touched that `base` never did) in a private overlay.
    ///
    /// Returns `None` when `self` cannot ride `base`'s arena: the flash
    /// geometries differ, `base` materialised more blocks than `self`,
    /// or the arenas' materialisation orders disagree on their common
    /// prefix. The prefix agrees exactly when `self` was built by
    /// running more work on a clone of `base` (sweep points sharing a
    /// warm prefix) — though same-geometry devices whose deterministic
    /// allocators happened to materialise the same block-id prefix also
    /// rebase, safely: any content difference lands in the overlay.
    /// Delta images cannot be re-deltaed; use the original flattened
    /// image as the rebase source.
    pub fn delta_from(&self, base: &DeviceImage) -> Option<DeviceImage> {
        let mut ssd = self.ssd.clone();
        if !ssd.rebase_flash_onto(&base.ssd) {
            return None;
        }
        Some(DeviceImage {
            ssd,
            config_digest: self.config_digest,
            fingerprint: self.fingerprint,
        })
    }

    /// The configuration digest the image was captured under.
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// State digest taken at capture time;
    /// `clone_cow().state_digest()` always equals this.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The simulated time at which the warm-up finished.
    pub fn warm_now(&self) -> SimTime {
        self.ssd.now()
    }

    /// Blocks this image holds privately on top of its shared arena:
    /// `0` for a freshly captured (flattened) image, the delta size for
    /// an image produced by [`DeviceImage::delta_from`].
    pub fn overlay_blocks(&self) -> usize {
        self.ssd.flash_overlay_blocks()
    }

    /// Whether two images share one flash arena (`Arc` identity).
    /// `true` for an image and its [`DeviceImage::delta_from`] result.
    pub fn shares_base_with(&self, other: &DeviceImage) -> bool {
        self.ssd.shares_flash_base_with(&other.ssd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::HostCommand;
    use crate::vendor::VendorPreset;
    use pfault_sim::{DetRng, Lba, SectorCount, SimTime};

    fn warmed_ssd() -> Ssd {
        let mut ssd = Ssd::new(VendorPreset::SsdA.config(), DetRng::new(9));
        for i in 0..32 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(8),
                0xBEEF + i,
            ));
            ssd.advance_to(SimTime::from_millis(2 * (i + 1)));
            ssd.drain_completions();
        }
        ssd.quiesce();
        ssd
    }

    #[test]
    fn capture_preserves_state_digest() {
        let ssd = warmed_ssd();
        let digest = ssd.state_digest();
        let image = ssd.capture(42);
        assert_eq!(image.fingerprint(), digest);
        assert_eq!(image.clone_cow().state_digest(), digest);
        assert_eq!(image.config_digest(), 42);
        assert_eq!(image.overlay_blocks(), 0, "fresh images are flattened");
    }

    #[test]
    fn cow_clones_evolve_identically() {
        let image = warmed_ssd().capture(1);
        let mut a = image.clone_cow();
        let mut b = image.clone_cow();
        assert!(a.shares_flash_base_with(&b), "clones share the arena");
        for ssd in [&mut a, &mut b] {
            ssd.submit(HostCommand::write(
                100,
                0,
                Lba::new(64),
                SectorCount::new(8),
                0xD00D,
            ));
            ssd.advance_to(ssd.now() + pfault_sim::SimDuration::from_millis(5));
        }
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.drain_completions(), b.drain_completions());
    }

    #[test]
    fn trial_fork_depends_on_stream_position_and_seed() {
        let image = warmed_ssd().capture(1);
        let mut a = image.clone_cow();
        let mut b = image.clone_cow();
        a.reseed_for_trial(7);
        b.reseed_for_trial(8);
        assert_ne!(
            a.state_digest(),
            b.state_digest(),
            "different trial seeds must fork different device streams"
        );
        let mut c = image.clone_cow();
        c.reseed_for_trial(7);
        assert_eq!(a.state_digest(), c.state_digest());
    }

    #[test]
    fn mutating_a_clone_leaves_the_image_intact() {
        let image = warmed_ssd().capture(1);
        let before = image.fingerprint();
        let mut clone = image.clone_cow();
        clone.submit(HostCommand::write(
            200,
            0,
            Lba::new(0),
            SectorCount::new(8),
            0xFACE,
        ));
        clone.advance_to(clone.now() + pfault_sim::SimDuration::from_millis(10));
        assert_ne!(clone.state_digest(), before);
        assert!(
            clone.flash_overlay_blocks() > 0,
            "the write must land in the clone's private overlay"
        );
        assert_eq!(image.clone_cow().state_digest(), before);
    }

    #[test]
    fn delta_from_shares_the_base_arena() {
        let base = warmed_ssd().capture(7);
        // Evolve a clone into a "later sweep point" and capture it.
        let mut later = base.clone_cow();
        for i in 0..8 {
            later.submit(HostCommand::write(
                300 + i,
                0,
                Lba::new(1024 + i * 8),
                SectorCount::new(8),
                0xA5A5 + i,
            ));
            later.advance_to(later.now() + pfault_sim::SimDuration::from_millis(2));
            later.drain_completions();
        }
        later.quiesce();
        let digest = later.state_digest();
        let full = later.capture(7);
        assert!(!full.shares_base_with(&base), "capture reflattens");

        let delta = full.delta_from(&base).expect("evolved from base");
        assert!(delta.shares_base_with(&base), "delta rides the base arena");
        assert!(
            delta.overlay_blocks() > 0 && delta.overlay_blocks() < 40,
            "delta holds only the touched blocks: {}",
            delta.overlay_blocks()
        );
        assert_eq!(delta.fingerprint(), full.fingerprint());
        assert_eq!(delta.clone_cow().state_digest(), digest);

        // Clones of the delta and of the full image are byte-equivalent.
        let mut from_full = full.clone_cow();
        let mut from_delta = delta.clone_cow();
        for ssd in [&mut from_full, &mut from_delta] {
            ssd.reseed_for_trial(5);
            ssd.submit(HostCommand::write(
                400,
                0,
                Lba::new(0),
                SectorCount::new(16),
                0xC0DE,
            ));
            ssd.advance_to(ssd.now() + pfault_sim::SimDuration::from_millis(5));
        }
        assert_eq!(from_full.state_digest(), from_delta.state_digest());
        assert_eq!(from_full.drain_completions(), from_delta.drain_completions());
    }

    #[test]
    fn delta_from_rejects_incompatible_images() {
        let a = warmed_ssd().capture(1);

        // A different flash geometry can never share an arena: slot
        // indexing would not line up.
        let mut config = VendorPreset::SsdB.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        let mut other = Ssd::new(config, DetRng::new(10));
        other.submit(HostCommand::write(
            0,
            0,
            Lba::new(9000),
            SectorCount::new(8),
            0x1111,
        ));
        other.advance_to(SimTime::from_millis(50));
        other.quiesce();
        let b = other.capture(2);
        assert!(b.delta_from(&a).is_none(), "geometry mismatch must not rebase");
        assert!(a.delta_from(&b).is_none(), "rejection is symmetric");

        // A delta image is not flattened, so it cannot serve as a rebase
        // source or target a second time.
        let mut later = a.clone_cow();
        later.submit(HostCommand::write(1, 0, Lba::new(0), SectorCount::new(8), 0x2222));
        later.advance_to(later.now() + pfault_sim::SimDuration::from_millis(5));
        later.quiesce();
        let delta = later.capture(1).delta_from(&a).expect("evolved from a");
        assert!(
            delta.delta_from(&a).is_none(),
            "delta images cannot be re-deltaed"
        );
    }
}
