//! The SSD device: front end, cache, program pipeline, power-fail state
//! machine.
//!
//! The device is event-driven: the platform calls
//! [`Ssd::submit`] / [`Ssd::advance_to`] / [`Ssd::drain_completions`] to run
//! IO, and [`Ssd::power_fail`] / [`Ssd::power_on_recover`] around each
//! injected fault. See the crate-level docs for the architecture.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use pfault_flash::array::{FlashArray, PageData, ReadOutcome};
use pfault_flash::oob::Oob;
use pfault_ftl::{
    CheckpointOp, CheckpointStore, CommitOp, DurableLog, Ftl, GcPlan, RecoveryStats, WriteSlot,
};
use pfault_obs::{Layer, ProbeEvent, ProbeLog, ProbeRecord, ProgramKind, RecoveryStepKind};
use pfault_power::FaultTimeline;
use pfault_sim::checksum::mix64;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration, SimTime};

use crate::cache::WriteCache;
use crate::completion::{Completion, CompletionKind};
use crate::config::SsdConfig;
use crate::sites::{FaultSite, SiteLog, SiteSpan};

/// A command submitted by the host (one block-layer sub-request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCommand {
    /// Parent request identifier.
    pub request_id: u64,
    /// Sub-request index within the parent.
    pub sub_id: u32,
    /// Starting sector.
    pub lba: Lba,
    /// Length.
    pub sectors: SectorCount,
    /// Write or read.
    pub is_write: bool,
    /// Payload identity for writes (ignored for reads).
    pub payload_tag: u64,
    /// Sector offset of this sub-request within the parent request's
    /// payload (so split requests keep coherent per-sector tags).
    pub payload_offset: u64,
}

impl HostCommand {
    /// A write command (payload offset 0).
    pub fn write(
        request_id: u64,
        sub_id: u32,
        lba: Lba,
        sectors: SectorCount,
        payload_tag: u64,
    ) -> Self {
        HostCommand {
            request_id,
            sub_id,
            lba,
            sectors,
            is_write: true,
            payload_tag,
            payload_offset: 0,
        }
    }

    /// A read command.
    pub fn read(request_id: u64, sub_id: u32, lba: Lba, sectors: SectorCount) -> Self {
        HostCommand {
            request_id,
            sub_id,
            lba,
            sectors,
            is_write: false,
            payload_tag: 0,
            payload_offset: 0,
        }
    }

    /// Sets the payload offset (for split sub-requests).
    pub fn with_payload_offset(mut self, offset: u64) -> Self {
        self.payload_offset = offset;
        self
    }

    /// Content of the `i`-th sector of this command's payload.
    pub fn sector_content(&self, i: u64) -> PageData {
        PageData::from_tag(mix64(self.payload_tag, self.payload_offset + i))
    }
}

/// Result of a media scrub: per-sector readability over everything the
/// mapping table references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Mapped sectors scanned.
    pub scanned: u64,
    /// Sectors whose pages no longer decode (beyond ECC or erased).
    pub unreadable: u64,
    /// Sectors that decode but fail their content checksum.
    pub garbled: u64,
}

impl ScrubReport {
    /// Whether every mapped sector read back clean.
    pub fn is_clean(&self) -> bool {
        self.unreadable == 0 && self.garbled == 0
    }
}

/// Result of a post-recovery verification read of one sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifiedContent {
    /// The sector has no durable mapping: reads as if never written.
    Unwritten,
    /// The sector read back this content (checksum comparison is the
    /// Analyzer's job).
    Written(PageData),
    /// The mapped page is unreadable (beyond ECC).
    Unreadable,
}

/// Cumulative device counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SsdStats {
    /// Write sub-requests acknowledged.
    pub writes_acked: u64,
    /// Read sub-requests acknowledged.
    pub reads_acked: u64,
    /// Sub-requests that failed with a device error.
    pub device_errors: u64,
    /// Read sectors served from the cache.
    pub cache_hits: u64,
    /// Read sectors that went to flash.
    pub cache_misses: u64,
    /// Journal commits completed.
    pub commits: u64,
    /// Mapping checkpoints completed.
    pub checkpoints: u64,
    /// FLUSH barriers acknowledged.
    pub flushes_acked: u64,
    /// GC victims reclaimed.
    pub gc_collections: u64,
    /// Dirty sectors lost in the last power fault.
    pub last_fault_dirty_lost: u64,
    /// Volatile mapping sectors lost in the last power fault.
    pub last_fault_map_lost: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PowerState {
    /// Normal operation.
    Operational,
    /// Host link lost; firmware still (obliviously) working.
    Brownout,
    /// Rail collapsed; nothing works until recovery.
    Dead,
    /// Recovery failed permanently: the device never mounts again.
    Bricked,
}

/// Why a device-level operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// One post-fault mount attempt failed; the host may power-cycle and
    /// retry.
    MountFailed {
        /// Consecutive failed attempts so far.
        attempt: u32,
    },
    /// The device exhausted its mount retries and is permanently dead.
    Bricked {
        /// Total mount attempts made before the firmware gave up.
        attempts: u32,
    },
    /// The mount succeeded but FTL recovery rebuilt an unusable device
    /// (e.g. no free block left). Deterministic — the device bricks.
    RecoveryFailed {
        /// The underlying FTL recovery error.
        error: pfault_ftl::FtlError,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::MountFailed { attempt } => {
                write!(f, "post-fault mount attempt {attempt} failed")
            }
            DeviceError::Bricked { attempts } => {
                write!(f, "device bricked after {attempts} failed mount attempts")
            }
            DeviceError::RecoveryFailed { error } => {
                write!(f, "post-fault recovery failed: {error}")
            }
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::RecoveryFailed { error } => Some(error),
            _ => None,
        }
    }
}

/// What a successful power-on recovery did, assembled from the FTL's
/// [`RecoveryStats`] plus the device-level mount bookkeeping. Returned
/// by [`Ssd::power_on_recover`] so callers (and campaign telemetry) can
/// attribute recovered state without re-deriving it from probe records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Which mount attempt succeeded (1-based; >1 means earlier attempts
    /// failed and the host power-cycled).
    pub mount_attempt: u32,
    /// Whether a readable mapping checkpoint seeded the rebuild.
    pub checkpoint_restored: bool,
    /// Journal batches replayed cleanly.
    pub journal_batches_replayed: u64,
    /// Mapping entries applied from replayed batches.
    pub journal_entries_replayed: u64,
    /// Torn batches discarded whole by the CRC check.
    pub batches_discarded: u64,
    /// Batches never reached because replay stopped early.
    pub batches_truncated: u64,
    /// Pages adopted by the full-scan OOB reconciliation.
    pub scan_adoptions: u64,
    /// Final size of the rebuilt logical-to-physical map (the "map
    /// rebuild steps" of the recovery pipeline).
    pub map_rebuild_entries: u64,
}

impl RecoveryReport {
    fn from_stats(mount_attempt: u32, stats: RecoveryStats) -> Self {
        RecoveryReport {
            mount_attempt,
            checkpoint_restored: stats.checkpoint_restored,
            journal_batches_replayed: stats.batches_replayed,
            journal_entries_replayed: stats.entries_replayed,
            batches_discarded: stats.batches_discarded_torn,
            batches_truncated: stats.batches_truncated,
            scan_adoptions: stats.scan_adoptions,
            map_rebuild_entries: stats.map_entries,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FrontOp {
    cmd: HostCommand,
    end: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgramSource {
    CacheFlush,
    Direct { request_id: u64, sub_id: u32 },
    GcRelocation { old_ppa: pfault_flash::Ppa },
}

#[derive(Debug, Clone, Copy)]
struct PipelineOp {
    lba: Lba,
    data: PageData,
    slot: WriteSlot,
    source: ProgramSource,
    start: SimTime,
    end: SimTime,
}

#[derive(Debug, Clone)]
enum ControlOp {
    Commit {
        op: CommitOp,
        start: SimTime,
        end: SimTime,
    },
    Checkpoint {
        op: CheckpointOp,
        start: SimTime,
        end: SimTime,
    },
    Erase {
        block: u64,
        start: SimTime,
        end: SimTime,
    },
}

#[derive(Debug, Clone)]
struct GcState {
    plan: GcPlan,
    pending: VecDeque<(Lba, pfault_flash::Ppa)>,
    in_flight: u32,
}

/// The simulated SSD. See the crate-level docs for an example.
#[derive(Debug)]
pub struct Ssd {
    config: SsdConfig,
    now: SimTime,
    rng: DetRng,
    array: FlashArray,
    ftl: Ftl,
    durable: DurableLog,
    checkpoints: CheckpointStore,
    cache: WriteCache,
    state: PowerState,
    pending: VecDeque<HostCommand>,
    front: Option<FrontOp>,
    pipeline: VecDeque<PipelineOp>,
    control: Option<ControlOp>,
    direct_queue: VecDeque<(HostCommand, u64)>, // (cmd, next sector index)
    direct_remaining: HashMap<(u64, u32), u64>,
    gc: Option<GcState>,
    pending_flushes: Vec<(u64, u32)>,
    next_commit_at: SimTime,
    sync_flush_pending: bool,
    completions: Vec<Completion>,
    stats: SsdStats,
    mount_attempts: u32,
    site_log: SiteLog,
    probes: ProbeLog,
}

impl Ssd {
    /// Creates a powered-on, empty drive.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SsdConfig, rng: DetRng) -> Self {
        config.validate();
        let mut rng = rng;
        let mut array = FlashArray::with_ecc(config.geometry, config.cell_kind, config.ecc);
        array.set_baseline_wear(config.baseline_wear);
        let ftl = Ftl::new(config.ftl);
        // The periodic-commit phase is arbitrary relative to host activity
        // (the firmware booted whenever it booted), so draw it uniformly:
        // the idle-tail exposure of §IV-A then varies per device instead
        // of cliff-edging at exactly one commit interval.
        let first_commit = SimTime::ZERO
            + config
                .ftl
                .commit_interval
                .mul_f64(0.25 + 0.75 * rng.unit_f64());
        Ssd {
            now: SimTime::ZERO,
            rng,
            array,
            ftl,
            durable: DurableLog::new(),
            checkpoints: CheckpointStore::new(),
            cache: WriteCache::new(config.cache.capacity_sectors),
            state: PowerState::Operational,
            pending: VecDeque::new(),
            front: None,
            pipeline: VecDeque::new(),
            control: None,
            direct_queue: VecDeque::new(),
            direct_remaining: HashMap::new(),
            gc: None,
            pending_flushes: Vec::new(),
            next_commit_at: first_commit,
            sync_flush_pending: false,
            completions: Vec::new(),
            stats: SsdStats::default(),
            mount_attempts: 0,
            site_log: SiteLog::new(),
            probes: ProbeLog::new(),
            config,
        }
    }

    /// Turns on the cross-layer probe bus: every subsequent cache, flash,
    /// FTL, power, and recovery transition emits a typed
    /// [`ProbeEvent`]. Off by default — the disabled bus costs one
    /// branch per site and allocates nothing.
    pub fn enable_probes(&mut self) {
        self.probes.enable();
    }

    /// Whether the probe bus is recording.
    pub fn probes_enabled(&self) -> bool {
        self.probes.is_enabled()
    }

    /// The probe records emitted so far (empty unless
    /// [`Ssd::enable_probes`] was called).
    pub fn probe_records(&self) -> &[ProbeRecord] {
        self.probes.records()
    }

    /// Drains the probe records accumulated so far (recording stays on).
    pub fn take_probe_records(&mut self) -> Vec<ProbeRecord> {
        self.probes.take_records()
    }

    /// Turns on fault-site recording: every subsequent occurrence of a
    /// [`FaultSite`] is logged with its time span. Off by default —
    /// campaigns pay nothing for the instrumentation.
    pub fn enable_site_recording(&mut self) {
        self.site_log.enable();
    }

    /// The fault-site occurrences recorded so far (empty unless
    /// [`Ssd::enable_site_recording`] was called).
    pub fn site_spans(&self) -> &[SiteSpan] {
        self.site_log.spans()
    }

    /// The durable journal log (read-only; the sweep oracle's reference
    /// replay walks it independently of FTL recovery).
    pub fn durable_log(&self) -> &DurableLog {
        &self.durable
    }

    /// The durable checkpoint store (read-only; sweep-oracle input).
    pub fn checkpoint_store(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Sorted snapshot of the logical→physical mapping. The sweep oracle
    /// compares the post-recovery snapshot against an independent
    /// reference replay of the durable journal.
    pub fn mapped(&self) -> Vec<(Lba, pfault_flash::Ppa)> {
        let mut v: Vec<_> = self.ftl.iter_mapped().collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Current device time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Device counters.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Flash-array counters (programs, erases, interruptions…).
    pub fn flash_stats(&self) -> pfault_flash::array::FlashStats {
        self.array.stats()
    }

    /// Whether the device is powered and reachable.
    pub fn is_operational(&self) -> bool {
        self.state == PowerState::Operational
    }

    /// Whether the device has permanently failed recovery.
    pub fn is_bricked(&self) -> bool {
        self.state == PowerState::Bricked
    }

    /// Dead or bricked: the rail is down, nothing executes.
    fn powered_down(&self) -> bool {
        matches!(self.state, PowerState::Dead | PowerState::Bricked)
    }

    /// Dirty sectors currently in the write cache.
    pub fn dirty_cache_sectors(&self) -> u64 {
        self.cache.dirty_sectors()
    }

    /// Sectors whose mapping is still volatile (journal buffer).
    pub fn volatile_map_sectors(&self) -> u64 {
        self.ftl.volatile_mapped_sectors()
    }

    /// Submits a host sub-request at the current device time.
    ///
    /// Submitting to a dead or browning-out device fails immediately with
    /// a device-error completion — the paper's IO-error condition
    /// ("the request is issued to the SSD when it was unavailable").
    pub fn submit(&mut self, cmd: HostCommand) {
        if self.state != PowerState::Operational {
            self.stats.device_errors += 1;
            self.completions.push(Completion {
                request_id: cmd.request_id,
                sub_id: cmd.sub_id,
                time: self.now,
                kind: CompletionKind::DeviceError,
            });
            return;
        }
        self.pending.push_back(cmd);
        self.schedule_work();
    }

    /// Submits a FLUSH barrier: it completes once everything accepted
    /// before it is durable — dirty cache drained, mapping journal
    /// committed, open extent closed. Data acknowledged before a completed
    /// FLUSH survives any subsequent power fault; this is the barrier a
    /// file system's journal relies on, and the designer-facing mitigation
    /// the paper's §V implies.
    pub fn submit_flush(&mut self, request_id: u64, sub_id: u32) {
        if self.state != PowerState::Operational {
            self.stats.device_errors += 1;
            self.completions.push(Completion {
                request_id,
                sub_id,
                time: self.now,
                kind: CompletionKind::DeviceError,
            });
            return;
        }
        self.pending_flushes.push((request_id, sub_id));
        self.schedule_work();
        self.maybe_complete_flushes();
    }

    /// Whether everything accepted so far is durable. A FLUSH barrier
    /// orders behind every previously accepted command, so the front-end
    /// queue must be empty too.
    fn all_durable(&self) -> bool {
        self.pending.is_empty()
            && self.front.is_none()
            && self.cache.dirty_sectors() == 0
            && self.pipeline.is_empty()
            && self.direct_queue.is_empty()
            && self.direct_remaining.is_empty()
            && self.ftl.volatile_mapped_sectors() == 0
            && self.control.is_none()
    }

    fn maybe_complete_flushes(&mut self) {
        if self.pending_flushes.is_empty() || !self.all_durable() {
            return;
        }
        for (request_id, sub_id) in std::mem::take(&mut self.pending_flushes) {
            self.stats.flushes_acked += 1;
            self.completions.push(Completion {
                request_id,
                sub_id,
                time: self.now,
                kind: CompletionKind::Acked,
            });
        }
    }

    /// Takes all completions accumulated so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Earliest pending internal event, if any.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        if let Some(f) = &self.front {
            consider(f.end);
        }
        if let Some(p) = self.pipeline.front() {
            consider(p.end);
        }
        match &self.control {
            Some(ControlOp::Commit { end, .. })
            | Some(ControlOp::Checkpoint { end, .. })
            | Some(ControlOp::Erase { end, .. }) => consider(*end),
            None => {}
        }
        // Interval commit becomes actionable at next_commit_at (it also
        // covers the open extent, which it force-closes).
        if self.control.is_none()
            && !self.powered_down()
            && (self.ftl.committable_entries() > 0 || self.ftl.open_extent_sectors() > 0)
        {
            consider(self.next_commit_at.max(self.now));
        }
        // A dirty entry becomes flushable when it ages past the delay.
        if self.executing_programs() < self.config.program_lanes
            && !self.powered_down()
            && self.ftl.available_blocks() > 0
        {
            if let Some(ready) = self.flush_ready_time() {
                consider(ready.max(self.now));
            }
        }
        next
    }

    fn flush_ready_time(&self) -> Option<SimTime> {
        // Conservative: if anything is dirty, it is ready no later than
        // inserted + delay; under pressure it is ready immediately. The
        // event loop re-checks via next_flushable.
        if self.cache.dirty_sectors() == 0 {
            return None;
        }
        let mut probe = self.cache.clone();
        probe
            .next_flushable(SimTime::MAX, self.config.cache.flush_delay, 2.0)
            .map(|_| ())?;
        // Cheap bound: ready now if pressured, else "now + small step".
        // We recompute exactly by probing at `now`.
        let mut probe2 = self.cache.clone();
        if probe2
            .next_flushable(
                self.now,
                self.config.cache.flush_delay,
                self.config.cache.pressure_watermark,
            )
            .is_some()
        {
            Some(self.now)
        } else {
            Some(self.now + SimDuration::from_millis(5))
        }
    }

    /// Advances device time to `t`, processing internal events in order.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance into the past");
        while let Some(e) = self.next_event() {
            if e > t {
                break;
            }
            self.now = self.now.max(e);
            self.process_due_events();
            self.schedule_work();
        }
        self.now = t;
        self.schedule_work();
    }

    fn process_due_events(&mut self) {
        let now = self.now;
        if let Some(f) = self.front {
            if f.end <= now {
                self.front = None;
                self.finish_front(f);
            }
        }
        while self.pipeline.front().is_some_and(|p| p.end <= now) {
            let p = self.pipeline.pop_front().expect("front checked above");
            self.finish_program(p);
        }
        let control_done = match &self.control {
            Some(ControlOp::Commit { end, .. })
            | Some(ControlOp::Checkpoint { end, .. })
            | Some(ControlOp::Erase { end, .. }) => *end <= now,
            None => false,
        };
        if control_done {
            let op = self.control.take().expect("control op checked above");
            self.finish_control(op);
        }
        self.maybe_complete_flushes();
    }

    fn finish_front(&mut self, f: FrontOp) {
        let cmd = f.cmd;
        if cmd.is_write {
            if self.config.cache.enabled {
                // Insert all sectors dirty and ACK.
                for i in 0..cmd.sectors.get() {
                    let lba = Lba::new(cmd.lba.index() + i);
                    self.cache.insert(lba, cmd.sector_content(i), f.end);
                }
                let dirty = self.cache.dirty_sectors();
                self.probes.emit_with(f.end, Layer::Cache, || {
                    (
                        Some(cmd.request_id),
                        None,
                        ProbeEvent::CacheInsert {
                            lba: cmd.lba.index(),
                            dirty,
                        },
                    )
                });
                self.stats.writes_acked += 1;
                self.completions.push(Completion {
                    request_id: cmd.request_id,
                    sub_id: cmd.sub_id,
                    time: f.end,
                    kind: CompletionKind::Acked,
                });
            } else {
                // Direct write: sectors feed the pipeline; ACK on the last
                // program.
                self.direct_remaining
                    .insert((cmd.request_id, cmd.sub_id), cmd.sectors.get());
                self.direct_queue.push_back((cmd, 0));
            }
        } else {
            // Read service finished; account hit/miss statistics.
            for i in 0..cmd.sectors.get() {
                let lba = Lba::new(cmd.lba.index() + i);
                if self.cache.lookup(lba).is_some() {
                    self.stats.cache_hits += 1;
                } else {
                    self.stats.cache_misses += 1;
                }
            }
            self.stats.reads_acked += 1;
            self.completions.push(Completion {
                request_id: cmd.request_id,
                sub_id: cmd.sub_id,
                time: f.end,
                kind: CompletionKind::Acked,
            });
        }
    }

    fn finish_program(&mut self, p: PipelineOp) {
        // The program committed to the array at completion time.
        let oob = Oob::user(p.lba, p.slot.seq);
        self.array
            .program(p.slot.ppa, p.data, oob)
            .expect("pipeline programs are reserved in order");
        self.probes.emit_with(p.end, Layer::Flash, || {
            (
                Ssd::program_request(&p.source),
                None,
                ProbeEvent::ProgramEnd {
                    kind: Ssd::program_kind(&p.source),
                    block: p.slot.ppa.block,
                    page: p.slot.ppa.page,
                    us: (p.end - p.start).as_micros(),
                },
            )
        });
        if let ProgramSource::GcRelocation { old_ppa } = p.source {
            self.probes.emit_with(p.end, Layer::Ftl, || {
                (
                    None,
                    None,
                    ProbeEvent::GcMove {
                        lba: p.lba.index(),
                        from_block: old_ppa.block,
                        to_block: p.slot.ppa.block,
                    },
                )
            });
        }
        match p.source {
            ProgramSource::CacheFlush => {
                self.ftl.finish_user_write(&p.slot);
                self.cache.flush_complete(p.lba, p.data);
            }
            ProgramSource::Direct { request_id, sub_id } => {
                self.ftl.finish_user_write(&p.slot);
                // The tracking entry is gone if the host link dropped
                // mid-request (the command was already errored); the
                // program itself still lands.
                if let Some(remaining) = self.direct_remaining.get_mut(&(request_id, sub_id)) {
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.direct_remaining.remove(&(request_id, sub_id));
                        self.stats.writes_acked += 1;
                        if self.state == PowerState::Operational {
                            self.completions.push(Completion {
                                request_id,
                                sub_id,
                                time: p.end,
                                kind: CompletionKind::Acked,
                            });
                        }
                    }
                }
            }
            ProgramSource::GcRelocation { old_ppa } => {
                // Publish only if the host has not overwritten it meanwhile.
                if self.ftl.lookup(p.lba) == Some(old_ppa) {
                    self.ftl.finish_user_write(&p.slot);
                }
                if let Some(gc) = &mut self.gc {
                    gc.in_flight -= 1;
                }
            }
        }
    }

    fn finish_control(&mut self, op: ControlOp) {
        match op {
            ControlOp::Commit { op, start, end } => {
                // Journal page content: the batch id, tagged as journal.
                let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
                self.array
                    .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                    .expect("journal pages are reserved in order");
                self.probes.emit_with(end, Layer::Ftl, || {
                    (
                        None,
                        None,
                        ProbeEvent::JournalCommit {
                            entries: op.batch.entries.len() as u64,
                            coverage: op.batch.coverage(),
                            us: (end - start).as_micros(),
                        },
                    )
                });
                self.ftl.finish_journal_commit(op, &mut self.durable);
                self.stats.commits += 1;
            }
            ControlOp::Checkpoint { op, start, end } => {
                let data = PageData::from_tag(mix64(0xC4EC_0000, op.checkpoint.id));
                self.array
                    .program(op.page, data, Oob::checkpoint(op.checkpoint.id, op.seq))
                    .expect("checkpoint pages are reserved in order");
                self.probes.emit_with(end, Layer::Ftl, || {
                    (
                        None,
                        None,
                        ProbeEvent::CheckpointEnd {
                            id: op.checkpoint.id,
                            us: (end - start).as_micros(),
                        },
                    )
                });
                self.ftl.finish_checkpoint(op, &mut self.checkpoints);
                self.checkpoints.prune(4);
                self.stats.checkpoints += 1;
            }
            ControlOp::Erase { block, start, end } => {
                self.array.erase(block).expect("gc erases a full block");
                let count = self.array.erase_count(block);
                self.probes.emit_with(end, Layer::Flash, || {
                    (
                        None,
                        None,
                        ProbeEvent::EraseEnd {
                            block,
                            us: (end - start).as_micros(),
                        },
                    )
                });
                self.ftl.finish_gc(block, count);
                self.stats.gc_collections += 1;
                self.gc = None;
            }
        }
    }

    fn schedule_work(&mut self) {
        if self.powered_down() {
            return;
        }
        self.start_front();
        self.start_pipeline();
        self.start_control();
    }

    fn start_front(&mut self) {
        if self.state != PowerState::Operational {
            return; // host link gone
        }
        if self.front.is_some() {
            return;
        }
        let Some(cmd) = self.pending.front().copied() else {
            return;
        };
        if cmd.is_write && self.config.cache.enabled {
            let n = cmd.sectors.get();
            if !self.cache.has_room_for(n) {
                self.cache.evict_clean(n);
            }
            if !self.cache.has_room_for(n) {
                return; // back-pressure: wait for flushes
            }
        }
        self.pending.pop_front();
        let duration = self.config.command_overhead
            + self.config.per_sector_transfer * cmd.sectors.get()
            + if !cmd.is_write && !self.all_sectors_cached(&cmd) {
                self.config.read_latency
            } else {
                SimDuration::ZERO
            };
        self.front = Some(FrontOp {
            cmd,
            end: self.now + duration,
        });
    }

    fn all_sectors_cached(&self, cmd: &HostCommand) -> bool {
        (0..cmd.sectors.get()).all(|i| self.cache.lookup(Lba::new(cmd.lba.index() + i)).is_some())
    }

    fn effective_program_duration(&self, page: u64) -> SimDuration {
        let raw = self
            .array
            .timing()
            .program_duration(self.config.cell_kind, page);
        ((raw * u64::from(self.config.program_lanes)) / u64::from(self.config.channels))
            .max(SimDuration::from_micros(5))
    }

    /// Ops still executing (their program has not finished; finished ops
    /// may linger at the back of the queue waiting for in-order
    /// retirement and do not occupy a lane).
    fn executing_programs(&self) -> u32 {
        let now = self.now;
        self.pipeline.iter().filter(|p| p.end > now).count() as u32
    }

    fn start_pipeline(&mut self) {
        while self.executing_programs() < self.config.program_lanes {
            if !self.start_one_program() {
                break;
            }
        }
    }

    /// Logs a user-data program occurrence, plus the paired-page site when
    /// the program endangers earlier wordline siblings. Returns the span
    /// id of the primary site (for probe tagging) when recording is on.
    fn record_program_site(
        &mut self,
        site: FaultSite,
        slot: &WriteSlot,
        end: SimTime,
    ) -> Option<u64> {
        if !self.site_log.is_enabled() {
            return None;
        }
        let span = self.site_log.record(site, self.now, end, Some(slot.ppa));
        if pfault_flash::pairing::endangers_earlier(self.config.cell_kind, slot.ppa.page) {
            self.site_log.record(
                FaultSite::PairedSecondProgram,
                self.now,
                end,
                Some(slot.ppa),
            );
        }
        span
    }

    /// The probe-bus kind for a pipeline op's source.
    fn program_kind(source: &ProgramSource) -> ProgramKind {
        match source {
            ProgramSource::CacheFlush => ProgramKind::CacheFlush,
            ProgramSource::Direct { .. } => ProgramKind::Direct,
            ProgramSource::GcRelocation { .. } => ProgramKind::GcReloc,
        }
    }

    /// The host request a pipeline op is attributable to, when any.
    fn program_request(source: &ProgramSource) -> Option<u64> {
        match source {
            ProgramSource::Direct { request_id, .. } => Some(*request_id),
            _ => None,
        }
    }

    /// Starts at most one program op; returns whether one was started.
    fn start_one_program(&mut self) -> bool {
        // In-order retirement is enforced at pop time: an op whose
        // program finishes early simply retires when the ops ahead of it
        // do.
        // 1. Direct (cache-off) write sectors.
        if let Some((cmd, idx)) = self.direct_queue.front().copied() {
            let lba = Lba::new(cmd.lba.index() + idx);
            match self.ftl.begin_user_write(lba) {
                Ok(slot) => {
                    if idx + 1 >= cmd.sectors.get() {
                        self.direct_queue.pop_front();
                    } else {
                        self.direct_queue.front_mut().expect("front exists").1 += 1;
                    }
                    let duration = self.effective_program_duration(slot.ppa.page);
                    let end = self.now + duration;
                    let span = self.record_program_site(FaultSite::DirectProgram, &slot, end);
                    let now = self.now;
                    self.probes.emit_with(now, Layer::Flash, || {
                        (
                            Some(cmd.request_id),
                            span,
                            ProbeEvent::ProgramStart {
                                kind: ProgramKind::Direct,
                                block: slot.ppa.block,
                                page: slot.ppa.page,
                            },
                        )
                    });
                    self.pipeline.push_back(PipelineOp {
                        lba,
                        data: cmd.sector_content(idx),
                        slot,
                        source: ProgramSource::Direct {
                            request_id: cmd.request_id,
                            sub_id: cmd.sub_id,
                        },
                        start: self.now,
                        end,
                    });
                    return true;
                }
                Err(_) => return false, // out of blocks: wait for GC
            }
        }
        // 2. Cache flushes. A pending FLUSH barrier overrides the lazy
        // timer: everything dirty is immediately eligible.
        let (delay, watermark) = if self.pending_flushes.is_empty() {
            (
                self.config.cache.flush_delay,
                self.config.cache.pressure_watermark,
            )
        } else {
            (SimDuration::ZERO, 0.0)
        };
        if let Some((lba, data)) = self.cache.next_flushable(self.now, delay, watermark) {
            match self.ftl.begin_user_write(lba) {
                Ok(slot) => {
                    let duration = self.effective_program_duration(slot.ppa.page);
                    let end = self.now + duration;
                    let span = self.record_program_site(FaultSite::CacheFlushProgram, &slot, end);
                    let now = self.now;
                    let dirty = self.cache.dirty_sectors();
                    self.probes.emit_with(now, Layer::Cache, || {
                        (
                            None,
                            span,
                            ProbeEvent::CacheEvict {
                                lba: lba.index(),
                                dirty,
                            },
                        )
                    });
                    self.probes.emit_with(now, Layer::Flash, || {
                        (
                            None,
                            span,
                            ProbeEvent::ProgramStart {
                                kind: ProgramKind::CacheFlush,
                                block: slot.ppa.block,
                                page: slot.ppa.page,
                            },
                        )
                    });
                    self.pipeline.push_back(PipelineOp {
                        lba,
                        data,
                        slot,
                        source: ProgramSource::CacheFlush,
                        start: self.now,
                        end,
                    });
                    return true;
                }
                Err(_) => {
                    self.cache.flush_aborted(lba);
                    return false;
                }
            }
        }
        // 3. GC relocations.
        let reloc = self.gc.as_mut().and_then(|gc| {
            gc.pending.pop_front().inspect(|_r| {
                gc.in_flight += 1;
            })
        });
        if let Some((lba, old_ppa)) = reloc {
            // Read the live data synchronously (array state lookup).
            let outcome = self.array.read(old_ppa, &mut self.rng);
            self.emit_ecc_probe(old_ppa, &outcome);
            let data = match outcome {
                ReadOutcome::Ok { data, .. } => data,
                // Unreadable victim data: nothing to relocate.
                _ => {
                    if let Some(gc) = &mut self.gc {
                        gc.in_flight -= 1;
                    }
                    return false;
                }
            };
            if let Ok(slot) = self.ftl.begin_user_write(lba) {
                let duration = self.effective_program_duration(slot.ppa.page);
                let end = self.now + duration;
                let span = self.record_program_site(FaultSite::GcRelocProgram, &slot, end);
                let now = self.now;
                self.probes.emit_with(now, Layer::Flash, || {
                    (
                        None,
                        span,
                        ProbeEvent::ProgramStart {
                            kind: ProgramKind::GcReloc,
                            block: slot.ppa.block,
                            page: slot.ppa.page,
                        },
                    )
                });
                self.pipeline.push_back(PipelineOp {
                    lba,
                    data,
                    slot,
                    source: ProgramSource::GcRelocation { old_ppa },
                    start: self.now,
                    end,
                });
                return true;
            } else if let Some(gc) = &mut self.gc {
                gc.in_flight -= 1;
            }
        }
        false
    }

    fn start_control(&mut self) {
        if self.control.is_some() {
            return;
        }
        // The periodic full sync ticks on an absolute cadence (anchored at
        // boot with a random phase): when a tick passes, the open extent
        // is force-closed so the next commit covers it. This bounds idle
        // exposure by the commit interval (§IV-A's ~700 ms tail) while
        // backlog-driven commits — which do NOT close the open extent —
        // keep the under-load window tight (§IV-D's extent penalty
        // survives on hot runs).
        if self.now >= self.next_commit_at {
            if self.ftl.open_extent_sectors() > 0 {
                self.ftl.close_open_extent();
            }
            self.sync_flush_pending = true;
            while self.next_commit_at <= self.now {
                self.next_commit_at += self.config.ftl.commit_interval;
            }
        }
        // A pending FLUSH barrier needs the whole journal durable now:
        // close the open extent and force a commit regardless of backlog.
        if !self.pending_flushes.is_empty() {
            if self.ftl.open_extent_sectors() > 0 {
                self.ftl.close_open_extent();
            }
            if self.ftl.committable_entries() > 0 {
                self.sync_flush_pending = true;
            }
        }
        let commit_due = self.ftl.commit_due_by_count()
            || (self.sync_flush_pending && self.ftl.committable_entries() > 0);
        if commit_due {
            if let Ok(Some(op)) = self.ftl.begin_journal_commit() {
                self.sync_flush_pending = false;
                let duration = self
                    .array
                    .timing()
                    .program_duration(self.config.cell_kind, op.page.page);
                let end = self.now + duration;
                let span = self.site_log.record(
                    FaultSite::JournalCommitProgram,
                    self.now,
                    end,
                    Some(op.page),
                );
                let now = self.now;
                self.probes.emit_with(now, Layer::Flash, || {
                    (
                        None,
                        span,
                        ProbeEvent::ProgramStart {
                            kind: ProgramKind::Journal,
                            block: op.page.block,
                            page: op.page.page,
                        },
                    )
                });
                self.control = Some(ControlOp::Commit {
                    op,
                    start: self.now,
                    end,
                });
                return;
            }
        }
        // Checkpoint: bound recovery replay once enough batches piled up.
        if self.ftl.checkpoint_due() {
            if let Ok(op) = self.ftl.begin_checkpoint() {
                // A full-map snapshot is bigger than one page program;
                // model it as a handful of page programs back to back.
                let duration = self
                    .array
                    .timing()
                    .program_duration(self.config.cell_kind, op.page.page)
                    * 4;
                let end = self.now + duration;
                let span = self.site_log.record(
                    FaultSite::CheckpointProgram,
                    self.now,
                    end,
                    Some(op.page),
                );
                let now = self.now;
                let entries = op.checkpoint.len() as u64;
                let id = op.checkpoint.id;
                self.probes.emit_with(now, Layer::Ftl, || {
                    (None, span, ProbeEvent::CheckpointBegin { id, entries })
                });
                self.control = Some(ControlOp::Checkpoint {
                    op,
                    start: self.now,
                    end,
                });
                return;
            }
        }
        // Garbage collection.
        if self.gc.is_none() && self.ftl.gc_needed() {
            if let Some(plan) = self.ftl.gc_plan() {
                let pending: VecDeque<_> = plan.relocations.iter().copied().collect();
                self.gc = Some(GcState {
                    plan,
                    pending,
                    in_flight: 0,
                });
            }
        }
        if let Some(gc) = &self.gc {
            if gc.pending.is_empty() && gc.in_flight == 0 {
                let block = gc.plan.victim;
                let duration = self.array.timing().erase;
                let end = self.now + duration;
                let span = self.site_log.record(
                    FaultSite::GcErase,
                    self.now,
                    end,
                    Some(pfault_flash::Ppa::new(block, 0)),
                );
                let now = self.now;
                self.probes.emit_with(now, Layer::Flash, || {
                    (None, span, ProbeEvent::EraseStart { block })
                });
                self.control = Some(ControlOp::Erase {
                    block,
                    start: self.now,
                    end,
                });
            }
        }
    }

    /// Applies a power fault.
    ///
    /// The device advances to `timeline.host_lost` normally (the rail is
    /// still ≥ 4.5 V), then the host link dies: every unacknowledged
    /// command fails with a device error. Firmware without a supercap keeps
    /// working obliviously until `timeline.flash_unreliable`; whatever is
    /// in flight then is interrupted, and all volatile state (cache,
    /// mapping table, journal buffer) is lost. With a supercap the firmware
    /// instead panic-flushes from stored energy.
    ///
    /// # Panics
    ///
    /// Panics if the timeline starts in the device's past.
    pub fn power_fail(&mut self, timeline: &FaultTimeline) {
        self.advance_to(timeline.host_lost);
        self.probes
            .emit(timeline.host_lost, Layer::Power, timeline.probe_event());
        self.state = PowerState::Brownout;
        self.fail_host_side(timeline.host_lost);

        if self.config.supercap {
            self.panic_flush();
            self.die_cleanly();
            return;
        }

        // Oblivious firmware: flush/commit continue until the rail is too
        // low for reliable NAND operations.
        self.advance_to(timeline.flash_unreliable);
        self.die_hard();
    }

    /// Errors out every host-visible command that has not been ACKed: the
    /// link is gone.
    fn fail_host_side(&mut self, at: SimTime) {
        let errors_before = self.stats.device_errors;
        let error = |request_id: u64,
                     sub_id: u32,
                     completions: &mut Vec<Completion>,
                     stats: &mut SsdStats| {
            stats.device_errors += 1;
            completions.push(Completion {
                request_id,
                sub_id,
                time: at,
                kind: CompletionKind::DeviceError,
            });
        };
        for cmd in std::mem::take(&mut self.pending) {
            error(
                cmd.request_id,
                cmd.sub_id,
                &mut self.completions,
                &mut self.stats,
            );
        }
        if let Some(f) = self.front.take() {
            error(
                f.cmd.request_id,
                f.cmd.sub_id,
                &mut self.completions,
                &mut self.stats,
            );
        }
        let direct_outstanding: Vec<(u64, u32)> = self.direct_remaining.keys().copied().collect();
        for (request_id, sub_id) in direct_outstanding {
            error(request_id, sub_id, &mut self.completions, &mut self.stats);
        }
        self.direct_remaining.clear();
        self.direct_queue.clear();
        for (request_id, sub_id) in std::mem::take(&mut self.pending_flushes) {
            error(request_id, sub_id, &mut self.completions, &mut self.stats);
        }
        let errored = self.stats.device_errors - errors_before;
        self.probes.emit_with(at, Layer::Host, || {
            (None, None, ProbeEvent::HostLinkLost { inflight: errored })
        });
    }

    /// Applies a transient voltage sag and returns its classified
    /// severity. Harmless sags pass unnoticed; a link-drop sag errors the
    /// in-flight host commands but preserves all internal state; a deeper
    /// sag resets the controller — volatile state dies exactly as in a
    /// full outage — but power returns by itself at the sag's end and the
    /// firmware recovers immediately.
    ///
    /// # Panics
    ///
    /// Panics if the sag starts in the device's past.
    pub fn apply_brownout(
        &mut self,
        event: &pfault_power::BrownoutEvent,
    ) -> pfault_power::BrownoutSeverity {
        use pfault_power::psu::{FLASH_UNRELIABLE_MV, HOST_LOSS_MV};
        use pfault_power::BrownoutSeverity;
        let nominal = crate::config::NOMINAL_RAIL;
        let severity = event.severity();
        match severity {
            BrownoutSeverity::Harmless => {
                self.advance_to(event.end());
            }
            BrownoutSeverity::LinkDrop => {
                let (down, up) = event
                    .window_below(HOST_LOSS_MV, nominal)
                    .expect("link-drop sag crosses host loss");
                self.advance_to(down);
                self.state = PowerState::Brownout;
                self.fail_host_side(down);
                // Internal work continues through the dip.
                self.advance_to(up);
                self.state = PowerState::Operational;
                self.advance_to(event.end());
            }
            BrownoutSeverity::ControllerReset | BrownoutSeverity::CoreLoss => {
                let (down, _) = event
                    .window_below(HOST_LOSS_MV, nominal)
                    .expect("reset sag crosses host loss");
                self.advance_to(down);
                self.state = PowerState::Brownout;
                self.fail_host_side(down);
                let (reset_at, _) = event
                    .window_below(FLASH_UNRELIABLE_MV, nominal)
                    .expect("reset sag crosses the brownout detector");
                self.advance_to(reset_at);
                self.die_hard();
                // Power returns by itself at the sag's end; a config with
                // mount failures would panic here exactly as before the
                // Result-first cleanup.
                self.power_on_recover(event.end())
                    .expect("sag recovery remounts");
            }
        }
        severity
    }

    /// Supercap-powered orderly shutdown: finish the in-flight program,
    /// flush every dirty sector, close the open extent, and commit the
    /// journal — all from stored energy.
    fn panic_flush(&mut self) {
        while let Some(p) = self.pipeline.pop_front() {
            self.finish_program(p);
        }
        if let Some(op) = self.control.take() {
            self.finish_control(op);
        }
        let dirty = self.cache.dirty_entries();
        for (lba, data) in dirty {
            if let Ok(slot) = self.ftl.begin_user_write(lba) {
                let oob = Oob::user(lba, slot.seq);
                if self.array.program(slot.ppa, data, oob).is_ok() {
                    self.ftl.finish_user_write(&slot);
                    self.cache.flush_complete(lba, data);
                }
            }
        }
        self.ftl.close_open_extent();
        while let Ok(Some(op)) = self.ftl.begin_journal_commit() {
            let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
            if self
                .array
                .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                .is_ok()
            {
                // Supercap commits burn stored energy, not simulated
                // time: the whole panic flush is modelled as instant.
                let (now, entries, coverage) =
                    (self.now, op.batch.entries.len() as u64, op.batch.coverage());
                self.probes.emit_with(now, Layer::Ftl, || {
                    (
                        None,
                        None,
                        ProbeEvent::JournalCommit {
                            entries,
                            coverage,
                            us: 0,
                        },
                    )
                });
                self.ftl.finish_journal_commit(op, &mut self.durable);
                self.stats.commits += 1;
            } else {
                break;
            }
        }
    }

    fn die_cleanly(&mut self) {
        self.stats.last_fault_dirty_lost = self.cache.dirty_sectors();
        self.stats.last_fault_map_lost = self.ftl.volatile_mapped_sectors();
        let (now, dirty, map) = (
            self.now,
            self.stats.last_fault_dirty_lost,
            self.stats.last_fault_map_lost,
        );
        self.probes.emit_with(now, Layer::Power, || {
            (None, None, ProbeEvent::VolatileLost { dirty, map })
        });
        self.cache.clear();
        self.pipeline.clear();
        self.control = None;
        self.direct_queue.clear();
        self.direct_remaining.clear();
        self.gc = None;
        self.array.power_off();
        self.state = PowerState::Dead;
    }

    fn die_hard(&mut self) {
        // Interrupt everything mid-operation at the reset instant: ops
        // whose own program already finished retire normally (their data
        // is on the array even if the in-order bookkeeping lagged), the
        // rest are cut mid-ISPP.
        let inflight: Vec<PipelineOp> = self.pipeline.drain(..).collect();
        for p in inflight {
            if p.end <= self.now {
                self.finish_program(p);
                continue;
            }
            let total = (p.end - p.start).as_micros().max(1);
            let done = self.now.saturating_since(p.start).as_micros();
            let progress = (done as f64 / total as f64).clamp(0.0, 1.0);
            let now = self.now;
            self.probes.emit_with(now, Layer::Flash, || {
                (
                    Ssd::program_request(&p.source),
                    None,
                    ProbeEvent::ProgramInterrupted {
                        kind: Ssd::program_kind(&p.source),
                        block: p.slot.ppa.block,
                        page: p.slot.ppa.page,
                        progress_permille: (progress * 1000.0) as u64,
                    },
                )
            });
            self.array
                .interrupt_program(p.slot.ppa, progress, &mut self.rng);
        }
        match self.control.take() {
            Some(ControlOp::Commit { op, start, end }) => {
                // A torn journal write: the page header (batch id + the
                // full batch's CRC) lands first, then the entry stream —
                // cut mid-program, only a prefix of the entries persists
                // under the full batch's checksum. Recovery recomputes the
                // CRC over what survived, sees the mismatch, and discards
                // the batch whole (unless `verify_batch_crc` is off, which
                // reintroduces the half-apply firmware bug).
                let total = (end - start).as_micros().max(1);
                let done = self.now.saturating_since(start).as_micros();
                let progress = (done as f64 / total as f64).clamp(0.0, 1.0);
                let keep = (op.batch.coverage() as f64 * progress).floor() as u64;
                if keep > 0 {
                    let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
                    if self
                        .array
                        .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                        .is_ok()
                    {
                        let (now, full) = (self.now, op.batch.coverage());
                        self.probes.emit_with(now, Layer::Ftl, || {
                            (None, None, ProbeEvent::JournalTorn { kept: keep, full })
                        });
                        self.durable.append_torn(op.page, &op.batch, keep);
                    }
                }
                // The rest of the batch never became durable.
            }
            Some(ControlOp::Checkpoint { op, end, .. }) => {
                // The snapshot never completed: garble what was written of
                // its page; recovery falls back to the previous
                // checkpoint plus a longer journal replay.
                let progress = 1.0
                    - (end.saturating_since(self.now).as_micros() as f64
                        / self
                            .array
                            .timing()
                            .program_duration(self.config.cell_kind, op.page.page)
                            .as_micros()
                            .max(1) as f64)
                        .clamp(0.0, 1.0);
                let (now, id) = (self.now, op.checkpoint.id);
                self.probes.emit_with(now, Layer::Ftl, || {
                    (None, None, ProbeEvent::CheckpointInterrupted { id })
                });
                self.array
                    .interrupt_program(op.page, progress, &mut self.rng);
            }
            Some(ControlOp::Erase { block, .. }) => {
                let now = self.now;
                self.probes.emit_with(now, Layer::Flash, || {
                    (None, None, ProbeEvent::EraseInterrupted { block })
                });
                self.array.interrupt_erase(block);
            }
            None => {}
        }
        self.stats.last_fault_dirty_lost = self.cache.dirty_sectors();
        self.stats.last_fault_map_lost = self.ftl.volatile_mapped_sectors();
        let (now, dirty, map) = (
            self.now,
            self.stats.last_fault_dirty_lost,
            self.stats.last_fault_map_lost,
        );
        self.probes.emit_with(now, Layer::Power, || {
            (None, None, ProbeEvent::VolatileLost { dirty, map })
        });
        self.cache.clear();
        self.direct_queue.clear();
        self.direct_remaining.clear();
        self.gc = None;
        self.array.power_off();
        self.state = PowerState::Dead;
    }

    /// Restores power at `now` and attempts the firmware's recovery
    /// mount: replay the durable journal into a fresh mapping table. On
    /// success, the returned [`RecoveryReport`] says what the rebuild
    /// did — journal batches/entries replayed, torn batches discarded,
    /// map rebuild size, which mount attempt succeeded.
    ///
    /// With a nonzero `mount_failure_rate`, each attempt may fail with
    /// [`DeviceError::MountFailed`] (the host may power-cycle and call
    /// again at a later `now`). After `mount_retry_limit` consecutive
    /// failures the device transitions to a permanent bricked state and
    /// every further call returns [`DeviceError::Bricked`].
    ///
    /// # Errors
    ///
    /// [`DeviceError::MountFailed`] on a transient mount failure,
    /// [`DeviceError::Bricked`] once retries are exhausted, and
    /// [`DeviceError::RecoveryFailed`] when the FTL rebuild itself is
    /// unusable (deterministic — the device bricks).
    ///
    /// # Panics
    ///
    /// Panics if the device is operational or still browning out, or if
    /// `now` precedes the device clock.
    pub fn power_on_recover(&mut self, now: SimTime) -> Result<RecoveryReport, DeviceError> {
        if self.state == PowerState::Bricked {
            return Err(DeviceError::Bricked {
                attempts: self.mount_attempts,
            });
        }
        assert_eq!(
            self.state,
            PowerState::Dead,
            "device must be dead to recover"
        );
        assert!(now >= self.now);
        self.now = now;
        let attempt = self.mount_attempts + 1;
        self.probes.emit_with(now, Layer::Recovery, || {
            (
                None,
                None,
                ProbeEvent::RecoveryStep {
                    step: RecoveryStepKind::MountAttempt,
                    value: u64::from(attempt),
                },
            )
        });
        if self.rng.chance(self.config.mount_failure_rate) {
            self.mount_attempts += 1;
            self.probes.emit_with(now, Layer::Recovery, || {
                (
                    None,
                    None,
                    ProbeEvent::RecoveryStep {
                        step: RecoveryStepKind::MountFailed,
                        value: u64::from(attempt),
                    },
                )
            });
            if self.mount_attempts >= self.config.mount_retry_limit {
                self.state = PowerState::Bricked;
                return Err(DeviceError::Bricked {
                    attempts: self.mount_attempts,
                });
            }
            return Err(DeviceError::MountFailed {
                attempt: self.mount_attempts,
            });
        }
        self.mount_attempts = 0;
        self.array.power_on();
        // The replay itself is a fault site: a second outage mid-recovery
        // re-runs it from the same durable inputs (replay idempotence is
        // one of the sweep oracle's invariants). The mount is modelled as
        // instantaneous, so the span is zero-width at `now`.
        let replay_span = self
            .site_log
            .record(FaultSite::MappingReplay, now, now, None);
        let (ftl, stats) = match Ftl::try_recover_with_stats(
            self.config.ftl,
            &mut self.array,
            &self.durable,
            &self.checkpoints,
            &mut self.rng,
        ) {
            Ok(recovered) => recovered,
            Err(error) => {
                // Deterministic: power-cycling cannot fix an exhausted
                // array, so the device bricks immediately.
                self.state = PowerState::Bricked;
                return Err(DeviceError::RecoveryFailed { error });
            }
        };
        self.ftl = ftl;
        self.emit_recovery_steps(now, replay_span, &stats);
        self.state = PowerState::Operational;
        self.next_commit_at = now + self.config.ftl.commit_interval;
        self.pending.clear();
        self.front = None;
        Ok(RecoveryReport::from_stats(attempt, stats))
    }

    /// Narrates a successful FTL rebuild onto the probe bus, one
    /// `RecoveryStep` per pipeline stage that actually did something.
    fn emit_recovery_steps(&mut self, now: SimTime, span: Option<u64>, stats: &RecoveryStats) {
        if !self.probes.is_enabled() {
            return;
        }
        let mut step = |kind: RecoveryStepKind, value: u64| {
            self.probes.emit_tagged(
                now,
                Layer::Recovery,
                None,
                span,
                ProbeEvent::RecoveryStep { step: kind, value },
            );
        };
        if stats.checkpoint_restored {
            step(
                RecoveryStepKind::CheckpointRestored,
                stats.checkpoint_entries,
            );
        }
        step(RecoveryStepKind::BatchReplayed, stats.batches_replayed);
        if stats.batches_discarded_torn > 0 {
            step(
                RecoveryStepKind::BatchDiscardedTorn,
                stats.batches_discarded_torn,
            );
        }
        if stats.batches_truncated > 0 {
            step(RecoveryStepKind::ReplayTruncated, stats.batches_truncated);
        }
        if stats.scan_adoptions > 0 {
            step(RecoveryStepKind::ScanAdopted, stats.scan_adoptions);
        }
        step(RecoveryStepKind::MapRebuilt, stats.map_entries);
    }

    /// Deprecated spelling of [`Ssd::power_on_recover`] from before the
    /// Result-first API cleanup; the primary entry point now returns
    /// `Result<RecoveryReport, DeviceError>` directly.
    #[deprecated(note = "use `power_on_recover`, which now returns Result<RecoveryReport, _>")]
    pub fn try_power_on_recover(&mut self, now: SimTime) -> Result<(), DeviceError> {
        self.power_on_recover(now).map(|_| ())
    }

    /// Deprecated infallible shim over [`Ssd::power_on_recover`] for
    /// configurations with `mount_failure_rate == 0.0`.
    ///
    /// # Panics
    ///
    /// Panics if the mount fails.
    #[deprecated(note = "use `power_on_recover` and handle the Result")]
    pub fn power_on_recover_infallible(&mut self, now: SimTime) {
        if let Err(e) = self.power_on_recover(now) {
            panic!("power_on_recover on a failing mount: {e}");
        }
    }

    /// Discards a range of sectors (TRIM / DISCARD). Applied immediately
    /// at the current device time: cached copies vanish and the mapping
    /// removals are journaled (so, like writes, an uncommitted trim can
    /// be undone by a power fault — the "ghost data" case).
    ///
    /// # Panics
    ///
    /// Panics if the device is not operational.
    pub fn trim(&mut self, lba: Lba, sectors: SectorCount) {
        assert!(self.is_operational(), "trim needs a powered device");
        for i in 0..sectors.get() {
            let l = Lba::new(lba.index() + i);
            self.cache.invalidate(l);
            self.ftl.trim(l);
        }
        self.schedule_work();
    }

    /// Post-recovery verification read of one sector, bypassing the (now
    /// empty) cache.
    ///
    /// # Panics
    ///
    /// Panics if the device is not operational.
    pub fn verify_read(&mut self, lba: Lba) -> VerifiedContent {
        assert!(self.is_operational(), "verification needs a powered device");
        match self.ftl.lookup(lba) {
            None => VerifiedContent::Unwritten,
            Some(ppa) => {
                let outcome = self.array.read(ppa, &mut self.rng);
                self.emit_ecc_probe(ppa, &outcome);
                match outcome {
                    ReadOutcome::Ok { data, .. } => VerifiedContent::Written(data),
                    ReadOutcome::Uncorrectable => VerifiedContent::Unreadable,
                    ReadOutcome::Erased => VerifiedContent::Unwritten,
                }
            }
        }
    }

    /// Emits the ECC outcome of a read the device just performed (repair
    /// and failure events only; clean reads stay silent).
    fn emit_ecc_probe(&mut self, ppa: pfault_flash::Ppa, outcome: &ReadOutcome) {
        let now = self.now;
        match *outcome {
            ReadOutcome::Ok { repaired, .. } if repaired > 0 => {
                self.probes.emit_with(now, Layer::Flash, || {
                    (
                        None,
                        None,
                        ProbeEvent::EccCorrected {
                            block: ppa.block,
                            page: ppa.page,
                            bits: u64::from(repaired),
                        },
                    )
                });
            }
            ReadOutcome::Uncorrectable => {
                self.probes.emit_with(now, Layer::Flash, || {
                    (
                        None,
                        None,
                        ProbeEvent::EccUncorrectable {
                            block: ppa.block,
                            page: ppa.page,
                        },
                    )
                });
            }
            _ => {}
        }
    }

    /// Scans every mapped sector and reports how many are unreadable — a
    /// SMART-style media self-test (the post-mortem a cautious operator
    /// runs after an outage).
    ///
    /// # Panics
    ///
    /// Panics if the device is not operational.
    pub fn scrub(&mut self) -> ScrubReport {
        assert!(self.is_operational(), "scrub needs a powered device");
        let mapped: Vec<(Lba, pfault_flash::Ppa)> = {
            let mut v: Vec<_> = self.ftl.iter_mapped().collect();
            v.sort_by_key(|(l, _)| *l);
            v
        };
        let mut report = ScrubReport::default();
        for (_, ppa) in mapped {
            report.scanned += 1;
            let outcome = self.array.read(ppa, &mut self.rng);
            self.emit_ecc_probe(ppa, &outcome);
            match outcome {
                ReadOutcome::Ok { data, .. } => {
                    if !data.is_intact() {
                        report.garbled += 1;
                    }
                }
                ReadOutcome::Uncorrectable => report.unreadable += 1,
                ReadOutcome::Erased => report.unreadable += 1,
            }
        }
        report
    }

    /// Drains all dirty state to flash and commits the journal, taking
    /// simulated time (used to reach a clean baseline between campaign
    /// phases).
    pub fn quiesce(&mut self) {
        // Force flush eligibility by advancing until nothing dirty remains.
        let mut guard = 0;
        while self.cache.dirty_sectors() > 0
            || !self.pipeline.is_empty()
            || self.control.is_some()
            || !self.direct_queue.is_empty()
        {
            let step = self
                .next_event()
                .unwrap_or(self.now + self.config.cache.flush_delay);
            self.advance_to(step.max(self.now + SimDuration::from_micros(100)));
            guard += 1;
            assert!(guard < 1_000_000, "quiesce failed to converge");
        }
        self.ftl.close_open_extent();
        if let Ok(Some(op)) = self.ftl.begin_journal_commit() {
            let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
            self.array
                .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                .expect("journal page reserved in order");
            self.ftl.finish_journal_commit(op, &mut self.durable);
            self.stats.commits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::vendor::VendorPreset;
    use pfault_power::FaultInjector;

    fn small_ssd() -> Ssd {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        Ssd::new(config, DetRng::new(7))
    }

    fn drive_until_acked(ssd: &mut Ssd, deadline_ms: u64) -> Vec<Completion> {
        ssd.advance_to(SimTime::from_millis(deadline_ms));
        ssd.drain_completions()
    }

    #[test]
    fn write_is_acked_from_cache_quickly() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(8),
            0xAA,
        ));
        let comps = drive_until_acked(&mut ssd, 5);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].acked());
        // ACK is front-end latency, far faster than a NAND program chain.
        assert!(comps[0].time < SimTime::from_millis(1));
        assert_eq!(ssd.dirty_cache_sectors(), 8);
    }

    #[test]
    fn flush_eventually_drains_cache() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            0xBB,
        ));
        ssd.advance_to(SimTime::from_millis(2_000));
        assert_eq!(ssd.dirty_cache_sectors(), 0, "flusher should have drained");
        assert!(ssd.flash_stats().programs >= 4);
    }

    #[test]
    fn read_completes_and_counts_hits() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(5),
            SectorCount::new(2),
            0xCC,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        ssd.drain_completions();
        ssd.submit(HostCommand::read(2, 0, Lba::new(5), SectorCount::new(2)));
        let comps = drive_until_acked(&mut ssd, 10);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].acked());
        assert_eq!(ssd.stats().cache_hits, 2);
    }

    #[test]
    fn submit_to_dead_device_errors_immediately() {
        let mut ssd = small_ssd();
        let injector = FaultInjector::arduino_atx_loaded();
        let timeline = injector.timeline(SimTime::from_millis(1));
        ssd.power_fail(&timeline);
        ssd.submit(HostCommand::write(
            9,
            0,
            Lba::new(0),
            SectorCount::new(1),
            1,
        ));
        let comps = ssd.drain_completions();
        assert!(comps.iter().any(|c| c.request_id == 9 && !c.acked()));
    }

    #[test]
    fn power_fault_loses_acked_dirty_data() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(10),
            SectorCount::new(4),
            0xDD,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        let comps = ssd.drain_completions();
        assert!(comps[0].acked(), "host holds an ACK");
        // Instant cut before the lazy flush window expires.
        let timeline = FaultInjector::transistor().timeline(SimTime::from_millis(2));
        ssd.power_fail(&timeline);
        assert!(ssd.stats().last_fault_dirty_lost > 0, "dirty data died");
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        // The ACKed data is gone: FWA from the Analyzer's point of view.
        assert_eq!(ssd.verify_read(Lba::new(10)), VerifiedContent::Unwritten);
    }

    #[test]
    fn quiesced_data_survives_power_fault() {
        let mut ssd = small_ssd();
        let cmd = HostCommand::write(1, 0, Lba::new(20), SectorCount::new(4), 0xEE);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        ssd.quiesce();
        let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for i in 0..4 {
            let lba = Lba::new(20 + i);
            match ssd.verify_read(lba) {
                VerifiedContent::Written(data) => {
                    assert_eq!(data, cmd.sector_content(i), "content mismatch at {lba}");
                }
                other => panic!("sector {lba} should survive, got {other:?}"),
            }
        }
    }

    #[test]
    fn supercap_saves_dirty_data() {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.supercap = true;
        let mut ssd = Ssd::new(config, DetRng::new(7));
        let cmd = HostCommand::write(1, 0, Lba::new(30), SectorCount::new(4), 0xFF);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        assert!(ssd.dirty_cache_sectors() > 0);
        let timeline = FaultInjector::arduino_atx_loaded().timeline(SimTime::from_millis(2));
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for i in 0..4 {
            match ssd.verify_read(Lba::new(30 + i)) {
                VerifiedContent::Written(data) => assert_eq!(data, cmd.sector_content(i)),
                other => panic!("supercap should save sector {i}, got {other:?}"),
            }
        }
    }

    #[test]
    fn disabled_cache_acks_only_after_program() {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.cache = CacheConfig::disabled();
        let mut ssd = Ssd::new(config, DetRng::new(7));
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            0x11,
        ));
        ssd.advance_to(SimTime::from_micros(250));
        assert!(
            ssd.drain_completions().is_empty(),
            "no early ACK without cache"
        );
        ssd.advance_to(SimTime::from_millis(50));
        let comps = ssd.drain_completions();
        assert_eq!(comps.len(), 1);
        assert!(comps[0].acked());
        assert_eq!(ssd.dirty_cache_sectors(), 0);
    }

    #[test]
    fn disabled_cache_still_vulnerable_via_volatile_map() {
        // §IV-A: failures persist with the internal cache disabled —
        // because the mapping journal is still volatile.
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.cache = CacheConfig::disabled();
        let mut ssd = Ssd::new(config, DetRng::new(7));
        let cmd = HostCommand::write(1, 0, Lba::new(40), SectorCount::new(4), 0x22);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(50));
        assert!(ssd.drain_completions()[0].acked());
        assert!(ssd.volatile_map_sectors() > 0, "mapping still volatile");
        let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        // Mapping was never committed: data lost despite the ACK.
        assert_eq!(ssd.verify_read(Lba::new(40)), VerifiedContent::Unwritten);
    }

    #[test]
    fn transistor_cut_interrupts_in_flight_program() {
        let mut ssd = small_ssd();
        // Saturate with writes so a program is in flight, then cut
        // instantly.
        for i in 0..64 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(8),
                i,
            ));
        }
        // Cut while dirty data is still accumulating in the cache.
        ssd.advance_to(SimTime::from_millis(3));
        assert!(
            ssd.dirty_cache_sectors() > 0,
            "cache should hold dirty data"
        );
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        assert!(
            ssd.flash_stats().interrupted_programs + ssd.flash_stats().interrupted_erases >= 1
                || ssd.stats().last_fault_dirty_lost > 0,
            "an instant cut mid-workload must leave damage"
        );
    }

    #[test]
    fn iops_saturates_near_config_ceiling() {
        let mut ssd = small_ssd();
        // Submit far more 4 KiB writes than one second of front-end
        // capacity; count ACKs within the first simulated second.
        for i in 0..20_000u64 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i % 500 * 8),
                SectorCount::new(1),
                i,
            ));
        }
        ssd.advance_to(SimTime::from_secs(1));
        let acked = ssd
            .drain_completions()
            .iter()
            .filter(|c| c.acked() && c.time <= SimTime::from_secs(1))
            .count() as f64;
        let ceiling = ssd.config().iops_ceiling();
        assert!(
            acked <= ceiling * 1.05,
            "acked {acked} must not exceed ceiling {ceiling}"
        );
        assert!(
            acked >= ceiling * 0.5,
            "acked {acked} unreasonably below ceiling {ceiling}"
        );
    }

    #[test]
    fn checkpoints_fire_and_recovery_uses_them() {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.ftl.checkpoint_every_batches = 4;
        let mut ssd = Ssd::new(config, DetRng::new(17));
        // Enough distinct writes for several commits and checkpoints.
        let mut cmds = Vec::new();
        for i in 0..40u64 {
            let cmd = HostCommand::write(i, 0, Lba::new(i * 16), SectorCount::new(2), i + 1);
            cmds.push(cmd);
            ssd.submit(cmd);
            ssd.advance_to(ssd.now() + SimDuration::from_millis(5));
        }
        ssd.quiesce();
        assert!(ssd.stats().checkpoints > 0, "checkpoints must have fired");
        let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for cmd in &cmds {
            for i in 0..2 {
                match ssd.verify_read(Lba::new(cmd.lba.index() + i)) {
                    VerifiedContent::Written(d) => assert_eq!(d, cmd.sector_content(i)),
                    other => panic!("request {} sector {i} lost: {other:?}", cmd.request_id),
                }
            }
        }
    }

    #[test]
    fn trim_discards_data_durably_after_commit() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(60),
            SectorCount::new(4),
            0x77,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        ssd.drain_completions();
        ssd.quiesce();
        ssd.trim(Lba::new(60), SectorCount::new(4));
        ssd.quiesce(); // commits the trim entries
        let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for i in 0..4 {
            assert_eq!(
                ssd.verify_read(Lba::new(60 + i)),
                VerifiedContent::Unwritten,
                "trimmed sector {i} must stay gone"
            );
        }
    }

    #[test]
    fn uncommitted_trim_can_resurrect_ghost_data() {
        let mut ssd = small_ssd();
        let cmd = HostCommand::write(1, 0, Lba::new(70), SectorCount::new(2), 0x88);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        ssd.quiesce(); // data durable
        ssd.trim(Lba::new(70), SectorCount::new(2));
        // Instant cut before the trim journal entry commits.
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        // The trim was volatile: the old data reappears.
        for i in 0..2 {
            match ssd.verify_read(Lba::new(70 + i)) {
                VerifiedContent::Written(d) => assert_eq!(d, cmd.sector_content(i)),
                other => panic!("ghost data should be back, got {other:?}"),
            }
        }
    }

    #[test]
    fn flush_barrier_makes_acked_data_survive_instant_cut() {
        let mut ssd = small_ssd();
        let cmd = HostCommand::write(1, 0, Lba::new(10), SectorCount::new(8), 0xF1);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        assert!(ssd.drain_completions()[0].acked());
        ssd.submit_flush(2, 0);
        // Drive until the flush completes.
        let mut guard = 0;
        loop {
            let comps = ssd.drain_completions();
            if comps.iter().any(|c| c.request_id == 2 && c.acked()) {
                break;
            }
            let next = ssd
                .next_event()
                .unwrap_or(ssd.now() + SimDuration::from_millis(1));
            ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
            guard += 1;
            assert!(guard < 100_000, "flush failed to complete");
        }
        assert!(ssd.stats().flushes_acked > 0);
        // Instant cut right after the flush ACK: everything must survive.
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for i in 0..8 {
            match ssd.verify_read(Lba::new(10 + i)) {
                VerifiedContent::Written(d) => assert_eq!(d, cmd.sector_content(i)),
                other => panic!("flushed sector {i} lost: {other:?}"),
            }
        }
    }

    #[test]
    fn flush_waits_for_durability() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(64),
            0xF2,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        ssd.drain_completions();
        let before = ssd.now();
        ssd.submit_flush(2, 0);
        // The flush cannot complete instantly: 64 sectors still owe
        // programs plus a journal commit.
        let comps = ssd.drain_completions();
        assert!(!comps.iter().any(|c| c.request_id == 2));
        ssd.advance_to(before + SimDuration::from_millis(100));
        let comps = ssd.drain_completions();
        let flush = comps
            .iter()
            .find(|c| c.request_id == 2)
            .expect("flush done");
        assert!(flush.acked());
        assert!(flush.time > before);
    }

    #[test]
    fn flush_on_dead_device_errors() {
        let mut ssd = small_ssd();
        let timeline = FaultInjector::transistor().timeline(SimTime::from_millis(1));
        ssd.power_fail(&timeline);
        ssd.submit_flush(9, 0);
        assert!(ssd
            .drain_completions()
            .iter()
            .any(|c| c.request_id == 9 && !c.acked()));
    }

    #[test]
    fn shallow_brownout_is_invisible() {
        let mut ssd = small_ssd();
        let cmd = HostCommand::write(1, 0, Lba::new(80), SectorCount::new(4), 0x99);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        assert!(ssd.drain_completions()[0].acked());
        let event = pfault_power::BrownoutEvent::shallow(ssd.now());
        let severity = ssd.apply_brownout(&event);
        assert_eq!(severity, pfault_power::BrownoutSeverity::Harmless);
        assert!(ssd.is_operational());
        ssd.quiesce();
        for i in 0..4 {
            assert!(matches!(
                ssd.verify_read(Lba::new(80 + i)),
                VerifiedContent::Written(_)
            ));
        }
    }

    #[test]
    fn link_drop_brownout_errors_in_flight_but_keeps_state() {
        let mut ssd = small_ssd();
        // An ACKed write sits dirty in the cache…
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(90),
            SectorCount::new(4),
            0xA1,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        assert!(ssd.drain_completions()[0].acked());
        // …and a large command is still in the front end when the link
        // drops (a steep sag reaches 4.5 V before its ~1.2 ms service).
        ssd.submit(HostCommand::write(
            2,
            0,
            Lba::new(94),
            SectorCount::new(128),
            0xA2,
        ));
        let mut event = pfault_power::BrownoutEvent::shallow(ssd.now());
        event.floor = pfault_power::Millivolts::new(4495); // link-drop depth
        event.sag = SimDuration::from_micros(500);
        event.recovery = SimDuration::from_micros(500);
        let severity = ssd.apply_brownout(&event);
        assert_eq!(severity, pfault_power::BrownoutSeverity::LinkDrop);
        let comps = ssd.drain_completions();
        assert!(comps.iter().any(|c| c.request_id == 2 && !c.acked()));
        assert!(ssd.is_operational(), "controller rode the sag out");
        // The earlier write survives (no volatile state was lost).
        ssd.quiesce();
        assert!(matches!(
            ssd.verify_read(Lba::new(90)),
            VerifiedContent::Written(_)
        ));
    }

    #[test]
    fn deep_brownout_resets_controller_and_loses_volatile_state() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(95),
            SectorCount::new(4),
            0xB1,
        ));
        ssd.advance_to(SimTime::from_micros(300));
        assert!(ssd.drain_completions()[0].acked());
        let event = pfault_power::BrownoutEvent::deep(ssd.now());
        let severity = ssd.apply_brownout(&event);
        assert_eq!(severity, pfault_power::BrownoutSeverity::ControllerReset);
        assert!(ssd.is_operational(), "power came back by itself");
        // The freshly-ACKed write was still cached: gone.
        assert_eq!(ssd.verify_read(Lba::new(95)), VerifiedContent::Unwritten);
    }

    #[test]
    fn scrub_is_clean_on_a_healthy_device_and_dirty_after_eol_fault() {
        let mut ssd = small_ssd();
        for i in 0..8u64 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(4),
                i + 1,
            ));
        }
        ssd.advance_to(SimTime::from_millis(5));
        ssd.drain_completions();
        ssd.quiesce();
        let report = ssd.scrub();
        assert_eq!(report.scanned, 32);
        assert!(report.is_clean(), "{report:?}");

        // Now an end-of-life device: faults leave unreadable pages behind.
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.baseline_wear = 2_900;
        let mut old = Ssd::new(config, DetRng::new(9));
        for i in 0..8u64 {
            old.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(4),
                i + 1,
            ));
        }
        old.advance_to(SimTime::from_millis(5));
        old.drain_completions();
        old.quiesce();
        let timeline = FaultInjector::transistor().timeline(old.now());
        old.power_fail(&timeline);
        old.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        let report = old.scrub();
        assert!(
            report.unreadable > 0,
            "worn media after a fault must show unreadable sectors: {report:?}"
        );
    }

    #[test]
    fn gc_reclaims_space_under_churn() {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(12, 16);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.ftl.gc_low_water_blocks = 4;
        config.cache.flush_delay = SimDuration::ZERO;
        let mut ssd = Ssd::new(config, DetRng::new(9));
        // Overwrite a small working set repeatedly: forces GC.
        for round in 0..40u64 {
            for lba in 0..8u64 {
                ssd.submit(HostCommand::write(
                    round * 8 + lba,
                    0,
                    Lba::new(lba),
                    SectorCount::new(1),
                    round * 100 + lba,
                ));
            }
            ssd.advance_to(ssd.now() + SimDuration::from_millis(50));
        }
        ssd.advance_to(ssd.now() + SimDuration::from_secs(2));
        assert!(ssd.stats().gc_collections > 0, "GC must have run");
        // Device still works after GC.
        ssd.submit(HostCommand::write(
            9_999,
            0,
            Lba::new(3),
            SectorCount::new(1),
            1,
        ));
        ssd.advance_to(ssd.now() + SimDuration::from_millis(100));
        assert!(ssd.drain_completions().iter().any(|c| c.acked()));
    }

    #[test]
    fn site_census_is_deterministic_across_same_seed_runs() {
        let census = |_: u32| {
            let mut ssd = small_ssd();
            ssd.enable_site_recording();
            for i in 0..4u64 {
                ssd.submit(HostCommand::write(
                    i,
                    0,
                    Lba::new(i * 16),
                    SectorCount::new(4),
                    i + 1,
                ));
            }
            ssd.advance_to(SimTime::from_secs(2));
            ssd.site_spans().to_vec()
        };
        let a = census(0);
        let b = census(1);
        assert!(!a.is_empty(), "census must observe program sites");
        assert_eq!(a, b, "same seed must reproduce the same occurrence stream");
        assert!(a
            .iter()
            .any(|s| s.site == crate::sites::FaultSite::CacheFlushProgram));
        assert!(a
            .iter()
            .any(|s| s.site == crate::sites::FaultSite::JournalCommitProgram));
    }

    #[test]
    fn recording_disabled_by_default_costs_nothing() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            1,
        ));
        ssd.advance_to(SimTime::from_secs(1));
        assert!(ssd.site_spans().is_empty());
    }

    #[test]
    fn op_ending_exactly_at_threshold_completes() {
        // Satellite: half-open boundary windows. Census the single cache
        // flush program of a one-sector write, then replay with the cut
        // placed exactly at the span's end (op completes — left-closed
        // window) and strictly inside it (op is interrupted).
        let run = |cut: Option<SimTime>| {
            let mut ssd = small_ssd();
            ssd.enable_site_recording();
            ssd.submit(HostCommand::write(
                1,
                0,
                Lba::new(5),
                SectorCount::new(1),
                0x5A,
            ));
            match cut {
                None => {
                    ssd.advance_to(SimTime::from_secs(1));
                }
                Some(t) => {
                    ssd.power_fail(&FaultTimeline::at_instant(t));
                }
            }
            ssd
        };
        let census = run(None);
        let span = census
            .site_spans()
            .iter()
            .find(|s| s.site == crate::sites::FaultSite::CacheFlushProgram)
            .copied()
            .expect("one flush program must occur");
        assert!(span.end > span.start);

        // Cut exactly at the completion instant: the program finishes.
        let at_end = run(Some(span.end));
        assert_eq!(
            at_end.flash_stats().interrupted_programs,
            0,
            "an op ending exactly at the threshold must complete"
        );
        // Cut strictly inside the span: the program is torn.
        let mid = span.start + SimDuration::from_micros((span.end - span.start).as_micros() / 2);
        let torn = run(Some(mid));
        assert_eq!(
            torn.flash_stats().interrupted_programs,
            1,
            "a cut strictly inside the span must interrupt the program"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn recover_and_deprecated_shims_produce_identical_state() {
        // Satellite: the deprecated shims delegate to the Result-first
        // path; both must rebuild the same device from the same seed.
        let prepare = |_: u32| {
            let mut ssd = small_ssd();
            for i in 0..6u64 {
                ssd.submit(HostCommand::write(
                    i,
                    0,
                    Lba::new(i * 8),
                    SectorCount::new(4),
                    i + 1,
                ));
            }
            ssd.advance_to(SimTime::from_millis(400));
            let timeline = FaultInjector::transistor().timeline(ssd.now());
            ssd.power_fail(&timeline);
            (ssd, timeline)
        };
        let (mut a, tl) = prepare(0);
        let (mut b, _) = prepare(1);
        let at = tl.discharged + SimDuration::from_secs(1);
        a.power_on_recover(at).expect("mount succeeds");
        b.try_power_on_recover(at).expect("mount succeeds");
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.scrub(), b.scrub());
        for i in 0..48u64 {
            assert_eq!(
                a.verify_read(Lba::new(i)),
                b.verify_read(Lba::new(i)),
                "post-recovery content diverged at lba {i}"
            );
        }
    }

    #[test]
    fn mapping_replay_site_recorded_on_recovery() {
        let mut ssd = small_ssd();
        ssd.enable_site_recording();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            1,
        ));
        ssd.advance_to(SimTime::from_millis(10));
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        let replay: Vec<_> = ssd
            .site_spans()
            .iter()
            .filter(|s| s.site == crate::sites::FaultSite::MappingReplay)
            .collect();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].start, replay[0].end, "mount is instantaneous");
    }

    #[test]
    fn probes_narrate_fault_and_recovery() {
        let run = || {
            let mut ssd = small_ssd();
            ssd.enable_probes();
            for i in 0..4u64 {
                ssd.submit(HostCommand::write(
                    i,
                    0,
                    Lba::new(i * 8),
                    SectorCount::new(4),
                    i + 1,
                ));
            }
            ssd.advance_to(SimTime::from_millis(200));
            let timeline = FaultInjector::transistor().timeline(ssd.now());
            ssd.power_fail(&timeline);
            let report = ssd
                .power_on_recover(timeline.discharged + SimDuration::from_secs(1))
                .expect("recovers");
            (ssd, report)
        };
        let (ssd, report) = run();
        let records = ssd.probe_records();
        assert!(!records.is_empty(), "probes must capture the trial");
        let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count();
        assert!(count("cache.insert") >= 4, "one insert per host write");
        assert_eq!(count("power.cut"), 1);
        assert_eq!(count("power.volatile-lost"), 1);
        assert!(
            count("recovery.step") >= 3,
            "mount attempt + replay + map rebuild at minimum"
        );
        assert_eq!(report.mount_attempt, 1);
        assert!(report.map_rebuild_entries > 0, "replay rebuilt the map");
        // Sequence numbers are dense and ordered — the JSONL contract.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        // Determinism: a second identical run produces the same stream.
        let (ssd2, _) = run();
        assert_eq!(records, ssd2.probe_records());
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            1,
        ));
        ssd.advance_to(SimTime::from_millis(10));
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        assert!(ssd.probe_records().is_empty());
    }
}
