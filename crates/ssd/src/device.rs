//! The SSD device: front end, cache, program pipeline, power-fail state
//! machine.
//!
//! The device is event-driven: the platform calls
//! [`Ssd::submit`] / [`Ssd::advance_to`] / [`Ssd::drain_completions`] to run
//! IO, and [`Ssd::power_fail`] / [`Ssd::power_on_recover`] around each
//! injected fault. See the crate-level docs for the architecture.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use pfault_flash::array::{FlashArray, PageData, ReadOutcome};
use pfault_flash::oob::Oob;
use pfault_ftl::{
    CheckpointOp, CheckpointStore, CommitOp, DurableLog, Ftl, GcPlan, JournalScanOutcome,
    RecoveryStats, WriteSlot,
};
use pfault_obs::{Layer, ProbeEvent, ProbeLog, ProbeRecord, ProgramKind, RecoveryStepKind};
use pfault_power::FaultTimeline;
use pfault_sim::checksum::mix64;
use pfault_sim::{DetRng, Lba, SectorCount, SimDuration, SimTime};

use crate::cache::WriteCache;
use crate::completion::{Completion, CompletionKind};
use crate::config::SsdConfig;
use crate::sites::{FaultSite, SiteLog, SiteSpan};

/// A command submitted by the host (one block-layer sub-request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCommand {
    /// Parent request identifier.
    pub request_id: u64,
    /// Sub-request index within the parent.
    pub sub_id: u32,
    /// Starting sector.
    pub lba: Lba,
    /// Length.
    pub sectors: SectorCount,
    /// Write or read.
    pub is_write: bool,
    /// Payload identity for writes (ignored for reads).
    pub payload_tag: u64,
    /// Sector offset of this sub-request within the parent request's
    /// payload (so split requests keep coherent per-sector tags).
    pub payload_offset: u64,
}

impl HostCommand {
    /// A write command (payload offset 0).
    pub fn write(
        request_id: u64,
        sub_id: u32,
        lba: Lba,
        sectors: SectorCount,
        payload_tag: u64,
    ) -> Self {
        HostCommand {
            request_id,
            sub_id,
            lba,
            sectors,
            is_write: true,
            payload_tag,
            payload_offset: 0,
        }
    }

    /// A read command.
    pub fn read(request_id: u64, sub_id: u32, lba: Lba, sectors: SectorCount) -> Self {
        HostCommand {
            request_id,
            sub_id,
            lba,
            sectors,
            is_write: false,
            payload_tag: 0,
            payload_offset: 0,
        }
    }

    /// Sets the payload offset (for split sub-requests).
    pub fn with_payload_offset(mut self, offset: u64) -> Self {
        self.payload_offset = offset;
        self
    }

    /// Content of the `i`-th sector of this command's payload.
    pub fn sector_content(&self, i: u64) -> PageData {
        PageData::from_tag(mix64(self.payload_tag, self.payload_offset + i))
    }
}

/// Result of a media scrub: per-sector readability over everything the
/// mapping table references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Mapped sectors scanned.
    pub scanned: u64,
    /// Sectors whose pages no longer decode (beyond ECC or erased).
    pub unreadable: u64,
    /// Sectors that decode but fail their content checksum.
    pub garbled: u64,
}

impl ScrubReport {
    /// Whether every mapped sector read back clean.
    pub fn is_clean(&self) -> bool {
        self.unreadable == 0 && self.garbled == 0
    }
}

/// Result of a post-recovery verification read of one sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifiedContent {
    /// The sector has no durable mapping: reads as if never written.
    Unwritten,
    /// The sector read back this content (checksum comparison is the
    /// Analyzer's job).
    Written(PageData),
    /// The mapped page is unreadable (beyond ECC).
    Unreadable,
}

/// Cumulative device counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SsdStats {
    /// Write sub-requests acknowledged.
    pub writes_acked: u64,
    /// Read sub-requests acknowledged.
    pub reads_acked: u64,
    /// Sub-requests that failed with a device error.
    pub device_errors: u64,
    /// Read sectors served from the cache.
    pub cache_hits: u64,
    /// Read sectors that went to flash.
    pub cache_misses: u64,
    /// Journal commits completed.
    pub commits: u64,
    /// Mapping checkpoints completed.
    pub checkpoints: u64,
    /// FLUSH barriers acknowledged.
    pub flushes_acked: u64,
    /// GC victims reclaimed.
    pub gc_collections: u64,
    /// Dirty sectors lost in the last power fault.
    pub last_fault_dirty_lost: u64,
    /// Volatile mapping sectors lost in the last power fault.
    pub last_fault_map_lost: u64,
    /// Write/flush commands refused because the device is in read-only
    /// degraded mode.
    pub read_only_rejections: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PowerState {
    /// Normal operation.
    Operational,
    /// Degraded operation: recovery mounted the device read-only (spare
    /// blocks exhausted or mount retries spent after the map rebuilt).
    /// Reads are served; every write is refused.
    ReadOnly,
    /// Host link lost; firmware still (obliviously) working.
    Brownout,
    /// Rail collapsed; nothing works until recovery.
    Dead,
    /// Recovery failed permanently: the device never mounts again.
    Bricked,
}

/// Why a device-level operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// One post-fault mount attempt failed; the host may power-cycle and
    /// retry.
    MountFailed {
        /// Consecutive failed attempts so far.
        attempt: u32,
    },
    /// The device exhausted its mount retries and is permanently dead.
    Bricked {
        /// Total mount attempts made before the firmware gave up.
        attempts: u32,
    },
    /// The mount succeeded but FTL recovery rebuilt an unusable device
    /// (e.g. no free block left). Deterministic — the device bricks.
    RecoveryFailed {
        /// The underlying FTL recovery error.
        error: pfault_ftl::FtlError,
    },
    /// A power cut interrupted the recovery pipeline mid-stage. The
    /// device is dead again, but stages completed before the cut are
    /// checkpointed: the next mount resumes after the last completed
    /// stage boundary instead of restarting the pipeline.
    RecoveryInterrupted {
        /// 1-based pipeline position of the interrupted stage.
        stage: u32,
        /// The mount attempt that was interrupted.
        attempt: u32,
    },
    /// The operation needs mounted firmware, but the device is dead or
    /// browning out.
    NotMounted,
    /// The write path is disabled: recovery degraded the device to
    /// read-only mode.
    ReadOnly,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::MountFailed { attempt } => {
                write!(f, "post-fault mount attempt {attempt} failed")
            }
            DeviceError::Bricked { attempts } => {
                write!(f, "device bricked after {attempts} failed mount attempts")
            }
            DeviceError::RecoveryFailed { error } => {
                write!(f, "post-fault recovery failed: {error}")
            }
            DeviceError::RecoveryInterrupted { stage, attempt } => {
                write!(
                    f,
                    "power cut interrupted recovery stage {stage} (mount attempt {attempt})"
                )
            }
            DeviceError::NotMounted => write!(f, "device is not mounted"),
            DeviceError::ReadOnly => write!(f, "device degraded to read-only mode"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::RecoveryFailed { error } => Some(error),
            _ => None,
        }
    }
}

/// What a successful power-on recovery did, assembled from the FTL's
/// [`RecoveryStats`] plus the device-level mount bookkeeping. Returned
/// by [`Ssd::power_on_recover`] so callers (and campaign telemetry) can
/// attribute recovered state without re-deriving it from probe records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Which mount attempt succeeded (1-based; >1 means earlier attempts
    /// failed and the host power-cycled).
    pub mount_attempt: u32,
    /// Whether a readable mapping checkpoint seeded the rebuild.
    pub checkpoint_restored: bool,
    /// Journal batches replayed cleanly.
    pub journal_batches_replayed: u64,
    /// Mapping entries applied from replayed batches.
    pub journal_entries_replayed: u64,
    /// Torn batches discarded whole by the CRC check.
    pub batches_discarded: u64,
    /// Batches never reached because replay stopped early.
    pub batches_truncated: u64,
    /// Pages adopted by the full-scan OOB reconciliation.
    pub scan_adoptions: u64,
    /// Final size of the rebuilt logical-to-physical map (the "map
    /// rebuild steps" of the recovery pipeline).
    pub map_rebuild_entries: u64,
    /// Whether this mount resumed a recovery that an earlier power cut
    /// (or failed mount) left unfinished.
    pub resumed: bool,
    /// Pipeline stages whose checkpointed results were reused instead of
    /// re-run on this mount.
    pub stages_skipped: u32,
    /// Mapped pages re-read by the dirty-page-verify stage.
    pub verified_pages: u64,
    /// Mapped pages the verify stage could not read back even through
    /// the retry ladder (retirement candidates).
    pub unreadable_pages: u64,
    /// Blocks taken out of service by the retirement stage.
    pub blocks_retired: u64,
    /// Readable sectors relocated out of retired blocks.
    pub pages_relocated: u64,
    /// Whether recovery degraded the device to read-only mode (spare
    /// pool exhausted, or mount retries spent after the map rebuilt).
    pub read_only: bool,
}

impl RecoveryReport {
    fn from_stats(mount_attempt: u32, stats: RecoveryStats) -> Self {
        RecoveryReport {
            mount_attempt,
            checkpoint_restored: stats.checkpoint_restored,
            journal_batches_replayed: stats.batches_replayed,
            journal_entries_replayed: stats.entries_replayed,
            batches_discarded: stats.batches_discarded_torn,
            batches_truncated: stats.batches_truncated,
            scan_adoptions: stats.scan_adoptions,
            map_rebuild_entries: stats.map_entries,
            resumed: false,
            stages_skipped: 0,
            verified_pages: 0,
            unreadable_pages: 0,
            blocks_retired: 0,
            pages_relocated: 0,
            read_only: false,
        }
    }
}

/// The stages of the mechanistic recovery pipeline, in execution order.
/// The verify and retirement stages only run when their config flags
/// (`recovery_verify`, `retire_bad_blocks`) are set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecoveryStage {
    /// Checkpoint selection + journal-page triage.
    JournalScan,
    /// Apply accepted batches over the checkpoint base; FullScan OOB
    /// reconciliation when configured.
    MappingRebuild,
    /// Re-read every mapped page through the retry ladder; nominate
    /// unreadable ones for retirement.
    DirtyPageVerify,
    /// Retire bad blocks, relocating their still-readable sectors.
    BadBlockRetirement,
}

impl RecoveryStage {
    /// 1-based pipeline position (the probe/repro vocabulary).
    fn index(self) -> u32 {
        match self {
            RecoveryStage::JournalScan => 1,
            RecoveryStage::MappingRebuild => 2,
            RecoveryStage::DirtyPageVerify => 3,
            RecoveryStage::BadBlockRetirement => 4,
        }
    }

    /// The fault site spanning this stage's execution window.
    fn site(self) -> FaultSite {
        match self {
            RecoveryStage::JournalScan => FaultSite::RecoveryJournalScan,
            RecoveryStage::MappingRebuild => FaultSite::MappingReplay,
            RecoveryStage::DirtyPageVerify => FaultSite::RecoveryVerify,
            RecoveryStage::BadBlockRetirement => FaultSite::RecoveryRetirement,
        }
    }
}

/// Firmware recovery progress, checkpointed at stage boundaries.
///
/// Held on the device across a mid-recovery power cut or failed mount
/// (modeling firmware that persists its recovery scratch state), so the
/// next mount *resumes* after the last completed stage instead of
/// silently restarting the pipeline. A stage interrupted mid-flight
/// restarts from its own boundary; completed stages never re-run.
#[derive(Debug, Clone, Default)]
struct RecoverySession {
    /// Stage-1 output: checkpoint base + triaged batches.
    scan: Option<JournalScanOutcome>,
    /// Stage-2 output: the rebuilt FTL awaiting verify/installation.
    ftl: Option<Ftl>,
    /// Rebuild statistics from the completed stages.
    stats: RecoveryStats,
    /// Stage-3 output: mapped pages that stayed unreadable through the
    /// retry ladder (retirement candidates). `Some` once verify ran.
    suspects: Option<Vec<(Lba, pfault_flash::Ppa)>>,
    /// Mapped pages the verify stage read back.
    verified_pages: u64,
    /// Blocks retired so far.
    blocks_retired: u64,
    /// Readable sectors relocated out of retired blocks.
    pages_relocated: u64,
    /// Set when retirement exhausted the spare pool: mount read-only.
    degrade_read_only: bool,
}

impl RecoverySession {
    /// Whether `stage`'s checkpointed output is already present.
    fn completed(&self, stage: RecoveryStage) -> bool {
        match stage {
            RecoveryStage::JournalScan => self.scan.is_some(),
            RecoveryStage::MappingRebuild => self.ftl.is_some(),
            RecoveryStage::DirtyPageVerify => self.suspects.is_some(),
            // Retirement is the final stage: its completion consumes the
            // whole session, so a live session never has it done.
            RecoveryStage::BadBlockRetirement => false,
        }
    }
}

/// How one pipeline stage execution ended.
#[derive(Debug, Clone, Copy)]
enum StageRun {
    /// The stage finished and checkpointed; `span` is its fault-site
    /// record (when the site log is enabled).
    Completed { span: Option<u64> },
    /// A power cut landed inside the stage window at `at`; its in-flight
    /// work is lost.
    Interrupted { at: SimTime },
}

#[derive(Debug, Clone, Copy)]
struct FrontOp {
    cmd: HostCommand,
    end: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgramSource {
    CacheFlush,
    Direct { request_id: u64, sub_id: u32 },
    GcRelocation { old_ppa: pfault_flash::Ppa },
}

#[derive(Debug, Clone, Copy)]
struct PipelineOp {
    lba: Lba,
    data: PageData,
    slot: WriteSlot,
    source: ProgramSource,
    start: SimTime,
    end: SimTime,
}

#[derive(Debug, Clone)]
enum ControlOp {
    Commit {
        op: CommitOp,
        start: SimTime,
        end: SimTime,
    },
    Checkpoint {
        op: CheckpointOp,
        start: SimTime,
        end: SimTime,
    },
    Erase {
        block: u64,
        start: SimTime,
        end: SimTime,
    },
}

#[derive(Debug, Clone)]
struct GcState {
    plan: GcPlan,
    pending: VecDeque<(Lba, pfault_flash::Ppa)>,
    in_flight: u32,
}

/// The simulated SSD. See the crate-level docs for an example.
///
/// `Clone` copies the entire device — NAND array, FTL, journal, cache,
/// queues, and the RNG stream position — and is the primitive behind
/// warm-state device images ([`crate::snapshot::DeviceImage`]): a cloned
/// device is indistinguishable from the original under every future
/// operation. After [`Ssd::capture`] freezes the flash arena, the NAND
/// part of the copy is a reference-count bump (copy-on-write overlay);
/// cloning an unfrozen device deep-copies its private overlay.
#[derive(Debug, Clone)]
pub struct Ssd {
    config: SsdConfig,
    now: SimTime,
    rng: DetRng,
    array: FlashArray,
    ftl: Ftl,
    durable: DurableLog,
    checkpoints: CheckpointStore,
    cache: WriteCache,
    state: PowerState,
    pending: VecDeque<HostCommand>,
    front: Option<FrontOp>,
    pipeline: VecDeque<PipelineOp>,
    control: Option<ControlOp>,
    direct_queue: VecDeque<(HostCommand, u64)>, // (cmd, next sector index)
    direct_remaining: HashMap<(u64, u32), u64>,
    gc: Option<GcState>,
    pending_flushes: Vec<(u64, u32)>,
    next_commit_at: SimTime,
    sync_flush_pending: bool,
    completions: Vec<Completion>,
    stats: SsdStats,
    mount_attempts: u32,
    recovery: Option<RecoverySession>,
    site_log: SiteLog,
    probes: ProbeLog,
}

impl Ssd {
    /// Creates a powered-on, empty drive.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SsdConfig, rng: DetRng) -> Self {
        config.validate();
        let mut rng = rng;
        let mut array = FlashArray::with_ecc(config.geometry, config.cell_kind, config.ecc);
        array.set_baseline_wear(config.baseline_wear);
        let ftl = Ftl::new(config.ftl);
        // The periodic-commit phase is arbitrary relative to host activity
        // (the firmware booted whenever it booted), so draw it uniformly:
        // the idle-tail exposure of §IV-A then varies per device instead
        // of cliff-edging at exactly one commit interval.
        let first_commit = SimTime::ZERO
            + config
                .ftl
                .commit_interval
                .mul_f64(0.25 + 0.75 * rng.unit_f64());
        Ssd {
            now: SimTime::ZERO,
            rng,
            array,
            ftl,
            durable: DurableLog::new(),
            checkpoints: CheckpointStore::new(),
            cache: WriteCache::new(config.cache.capacity_sectors),
            state: PowerState::Operational,
            pending: VecDeque::new(),
            front: None,
            pipeline: VecDeque::new(),
            control: None,
            direct_queue: VecDeque::new(),
            direct_remaining: HashMap::new(),
            gc: None,
            pending_flushes: Vec::new(),
            next_commit_at: first_commit,
            sync_flush_pending: false,
            completions: Vec::new(),
            stats: SsdStats::default(),
            mount_attempts: 0,
            recovery: None,
            site_log: SiteLog::new(),
            probes: ProbeLog::new(),
            config,
        }
    }

    /// Turns on the cross-layer probe bus: every subsequent cache, flash,
    /// FTL, power, and recovery transition emits a typed
    /// [`ProbeEvent`]. Off by default — the disabled bus costs one
    /// branch per site and allocates nothing.
    pub fn enable_probes(&mut self) {
        self.probes.enable();
    }

    /// Whether the probe bus is recording.
    pub fn probes_enabled(&self) -> bool {
        self.probes.is_enabled()
    }

    /// The probe records emitted so far (empty unless
    /// [`Ssd::enable_probes`] was called).
    pub fn probe_records(&self) -> &[ProbeRecord] {
        self.probes.records()
    }

    /// Drains the probe records accumulated so far (recording stays on).
    pub fn take_probe_records(&mut self) -> Vec<ProbeRecord> {
        self.probes.take_records()
    }

    /// Forks the device's RNG stream with a trial-specific seed.
    ///
    /// Warm-snapshot trials restore a shared device image and then call
    /// this with the trial seed: the derived stream depends on *both* the
    /// warm stream position (captured in the snapshot) and the seed, so
    /// every trial sees fresh but reproducible device randomness, and a
    /// replayed-from-cold trial that performs the same warm-up and fork
    /// sees the identical stream.
    pub fn reseed_for_trial(&mut self, seed: u64) {
        self.rng = self.rng.fork_index(seed);
    }

    /// Digest of the device's observable state: simulated clock, power
    /// state, NAND array, FTL, durable journal/checkpoint counters, cache
    /// contents, queue depths, and the RNG stream position. Equal digests
    /// mean equal future behaviour; snapshot capture/restore is validated
    /// against this.
    pub fn state_digest(&self) -> u64 {
        use pfault_sim::checksum::mix64;
        let mut h = mix64(0x55D_D16E57, self.now.as_micros());
        h = mix64(h, self.rng.state_fingerprint());
        h = mix64(h, self.array.state_digest());
        h = mix64(h, self.ftl.state_digest());
        h = mix64(h, self.durable.len() as u64);
        h = mix64(h, self.checkpoints.len() as u64);
        let mut dirty: Vec<(u64, u64, u64)> = self
            .cache
            .dirty_entries()
            .into_iter()
            .map(|(lba, data)| (lba.index(), data.tag, data.checksum))
            .collect();
        dirty.sort_unstable();
        for (lba, tag, checksum) in dirty {
            h = mix64(h, lba);
            h = mix64(h, tag);
            h = mix64(h, checksum);
        }
        h = mix64(h, self.cache.resident_sectors());
        h = mix64(h, self.pending.len() as u64);
        h = mix64(h, self.pipeline.len() as u64);
        h = mix64(h, self.completions.len() as u64);
        h = mix64(h, self.next_commit_at.as_micros());
        h = mix64(h, u64::from(self.mount_attempts));
        let state_tag = match self.state {
            PowerState::Operational => 0u64,
            PowerState::ReadOnly => 1,
            PowerState::Brownout => 2,
            PowerState::Dead => 3,
            PowerState::Bricked => 4,
        };
        mix64(h, state_tag)
    }

    /// Freezes the flash arena into a shared immutable base
    /// ([`pfault_flash::array::FlashArray::flatten`]), after which
    /// cloning this device shares the NAND state copy-on-write.
    pub(crate) fn freeze_flash(&mut self) {
        self.array.flatten();
    }

    /// Re-expresses this device's (frozen) flash state as a delta over
    /// `base`'s arena. See
    /// [`pfault_flash::array::FlashArray::rebase_onto`].
    pub(crate) fn rebase_flash_onto(&mut self, base: &Ssd) -> bool {
        self.array.rebase_onto(&base.array)
    }

    /// Blocks materialised in this device's private copy-on-write
    /// overlay: `0` right after a clone of a frozen device, growing as
    /// the trial touches blocks. Diagnostic — campaign engines report it
    /// to size per-trial working sets.
    pub fn flash_overlay_blocks(&self) -> usize {
        self.array.overlay_blocks()
    }

    /// Whether two devices share the same frozen flash base (`Arc`
    /// identity, not content equality).
    pub fn shares_flash_base_with(&self, other: &Ssd) -> bool {
        self.array.shares_base_with(&other.array)
    }

    /// Turns on fault-site recording: every subsequent occurrence of a
    /// [`FaultSite`] is logged with its time span. Off by default —
    /// campaigns pay nothing for the instrumentation.
    pub fn enable_site_recording(&mut self) {
        self.site_log.enable();
    }

    /// The fault-site occurrences recorded so far (empty unless
    /// [`Ssd::enable_site_recording`] was called).
    pub fn site_spans(&self) -> &[SiteSpan] {
        self.site_log.spans()
    }

    /// The durable journal log (read-only; the sweep oracle's reference
    /// replay walks it independently of FTL recovery).
    pub fn durable_log(&self) -> &DurableLog {
        &self.durable
    }

    /// The durable checkpoint store (read-only; sweep-oracle input).
    pub fn checkpoint_store(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Sorted snapshot of the logical→physical mapping. The sweep oracle
    /// compares the post-recovery snapshot against an independent
    /// reference replay of the durable journal.
    pub fn mapped(&self) -> Vec<(Lba, pfault_flash::Ppa)> {
        let mut v: Vec<_> = self.ftl.iter_mapped().collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Current device time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Device counters.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Flash-array counters (programs, erases, interruptions…).
    pub fn flash_stats(&self) -> pfault_flash::array::FlashStats {
        self.array.stats()
    }

    /// Whether the device is powered and reachable.
    pub fn is_operational(&self) -> bool {
        self.state == PowerState::Operational
    }

    /// Whether the device has permanently failed recovery.
    pub fn is_bricked(&self) -> bool {
        self.state == PowerState::Bricked
    }

    /// Whether recovery degraded the device to read-only mode: reads are
    /// served, writes are refused with
    /// [`CompletionKind::ReadOnlyRejected`].
    pub fn is_read_only(&self) -> bool {
        self.state == PowerState::ReadOnly
    }

    /// Mounted (fully or read-only): the firmware serves reads.
    fn is_mounted(&self) -> bool {
        matches!(
            self.state,
            PowerState::Operational | PowerState::ReadOnly
        )
    }

    /// Whether an interrupted recovery pipeline is waiting to be resumed
    /// by the next mount.
    pub fn has_pending_recovery(&self) -> bool {
        self.recovery.is_some()
    }

    /// Dead or bricked: the rail is down, nothing executes.
    fn powered_down(&self) -> bool {
        matches!(self.state, PowerState::Dead | PowerState::Bricked)
    }

    /// Dirty sectors currently in the write cache.
    pub fn dirty_cache_sectors(&self) -> u64 {
        self.cache.dirty_sectors()
    }

    /// Sectors whose mapping is still volatile (journal buffer).
    pub fn volatile_map_sectors(&self) -> u64 {
        self.ftl.volatile_mapped_sectors()
    }

    /// Submits a host sub-request at the current device time.
    ///
    /// Submitting to a dead or browning-out device fails immediately with
    /// a device-error completion — the paper's IO-error condition
    /// ("the request is issued to the SSD when it was unavailable").
    pub fn submit(&mut self, cmd: HostCommand) {
        if self.state == PowerState::ReadOnly && cmd.is_write {
            // Degraded mode: the write path is disabled, reads still
            // work. The host sees [`DeviceError::ReadOnly`] semantics via
            // a distinct completion kind.
            self.stats.read_only_rejections += 1;
            self.completions.push(Completion {
                request_id: cmd.request_id,
                sub_id: cmd.sub_id,
                time: self.now,
                kind: CompletionKind::ReadOnlyRejected,
            });
            return;
        }
        if !self.is_mounted() {
            self.stats.device_errors += 1;
            self.completions.push(Completion {
                request_id: cmd.request_id,
                sub_id: cmd.sub_id,
                time: self.now,
                kind: CompletionKind::DeviceError,
            });
            return;
        }
        self.pending.push_back(cmd);
        self.schedule_work();
    }

    /// Submits a FLUSH barrier: it completes once everything accepted
    /// before it is durable — dirty cache drained, mapping journal
    /// committed, open extent closed. Data acknowledged before a completed
    /// FLUSH survives any subsequent power fault; this is the barrier a
    /// file system's journal relies on, and the designer-facing mitigation
    /// the paper's §V implies.
    pub fn submit_flush(&mut self, request_id: u64, sub_id: u32) {
        if self.state == PowerState::ReadOnly {
            // Nothing can be dirty in read-only mode, but the barrier is
            // a write-path command: refuse it like a write.
            self.stats.read_only_rejections += 1;
            self.completions.push(Completion {
                request_id,
                sub_id,
                time: self.now,
                kind: CompletionKind::ReadOnlyRejected,
            });
            return;
        }
        if self.state != PowerState::Operational {
            self.stats.device_errors += 1;
            self.completions.push(Completion {
                request_id,
                sub_id,
                time: self.now,
                kind: CompletionKind::DeviceError,
            });
            return;
        }
        self.pending_flushes.push((request_id, sub_id));
        self.schedule_work();
        self.maybe_complete_flushes();
    }

    /// Whether everything accepted so far is durable. A FLUSH barrier
    /// orders behind every previously accepted command, so the front-end
    /// queue must be empty too.
    fn all_durable(&self) -> bool {
        self.pending.is_empty()
            && self.front.is_none()
            && self.cache.dirty_sectors() == 0
            && self.pipeline.is_empty()
            && self.direct_queue.is_empty()
            && self.direct_remaining.is_empty()
            && self.ftl.volatile_mapped_sectors() == 0
            && self.control.is_none()
    }

    fn maybe_complete_flushes(&mut self) {
        if self.pending_flushes.is_empty() || !self.all_durable() {
            return;
        }
        for (request_id, sub_id) in std::mem::take(&mut self.pending_flushes) {
            self.stats.flushes_acked += 1;
            self.completions.push(Completion {
                request_id,
                sub_id,
                time: self.now,
                kind: CompletionKind::Acked,
            });
        }
    }

    /// Takes all completions accumulated so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Earliest pending internal event, if any.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        if let Some(f) = &self.front {
            consider(f.end);
        }
        if let Some(p) = self.pipeline.front() {
            consider(p.end);
        }
        match &self.control {
            Some(ControlOp::Commit { end, .. })
            | Some(ControlOp::Checkpoint { end, .. })
            | Some(ControlOp::Erase { end, .. }) => consider(*end),
            None => {}
        }
        // Interval commit becomes actionable at next_commit_at (it also
        // covers the open extent, which it force-closes).
        if self.control.is_none()
            && !self.powered_down()
            && (self.ftl.committable_entries() > 0 || self.ftl.open_extent_sectors() > 0)
        {
            consider(self.next_commit_at.max(self.now));
        }
        // A dirty entry becomes flushable when it ages past the delay.
        if self.has_free_lane()
            && !self.powered_down()
            && self.ftl.available_blocks() > 0
        {
            if let Some(ready) = self.flush_ready_time() {
                consider(ready.max(self.now));
            }
        }
        next
    }

    fn flush_ready_time(&self) -> Option<SimTime> {
        // Conservative: if anything is dirty, it is ready no later than
        // inserted + delay; under pressure it is ready immediately. The
        // event loop re-checks via next_flushable.
        if self.cache.dirty_sectors() == 0 {
            return None;
        }
        // Cheap bound: ready now if the FIFO head qualifies (aged past
        // the delay, or cache under pressure), else "now + small step".
        // The event loop re-checks exactly via next_flushable.
        let inserted_at = self.cache.peek_flushable_inserted_at()?;
        let under_pressure = self.cache.dirty_sectors() as f64
            >= self.cache.capacity() as f64 * self.config.cache.pressure_watermark;
        let old_enough =
            self.now.saturating_since(inserted_at) >= self.config.cache.flush_delay;
        if old_enough || under_pressure {
            Some(self.now)
        } else {
            Some(self.now + SimDuration::from_millis(5))
        }
    }

    /// Advances device time to `t`, processing internal events in order.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance into the past");
        while let Some(e) = self.next_event() {
            if e > t {
                break;
            }
            self.now = self.now.max(e);
            self.process_due_events();
            self.schedule_work();
        }
        self.now = t;
        self.schedule_work();
    }

    fn process_due_events(&mut self) {
        let now = self.now;
        if let Some(f) = self.front {
            if f.end <= now {
                self.front = None;
                self.finish_front(f);
            }
        }
        while self.pipeline.front().is_some_and(|p| p.end <= now) {
            let p = self.pipeline.pop_front().expect("front checked above");
            self.finish_program(p);
        }
        let control_done = match &self.control {
            Some(ControlOp::Commit { end, .. })
            | Some(ControlOp::Checkpoint { end, .. })
            | Some(ControlOp::Erase { end, .. }) => *end <= now,
            None => false,
        };
        if control_done {
            let op = self.control.take().expect("control op checked above");
            self.finish_control(op);
        }
        self.maybe_complete_flushes();
    }

    fn finish_front(&mut self, f: FrontOp) {
        let cmd = f.cmd;
        if cmd.is_write {
            if self.config.cache.enabled {
                // Insert all sectors dirty and ACK.
                for i in 0..cmd.sectors.get() {
                    let lba = Lba::new(cmd.lba.index() + i);
                    self.cache.insert(lba, cmd.sector_content(i), f.end);
                }
                let dirty = self.cache.dirty_sectors();
                self.probes.emit_with(f.end, Layer::Cache, || {
                    (
                        Some(cmd.request_id),
                        None,
                        ProbeEvent::CacheInsert {
                            lba: cmd.lba.index(),
                            dirty,
                        },
                    )
                });
                self.stats.writes_acked += 1;
                self.completions.push(Completion {
                    request_id: cmd.request_id,
                    sub_id: cmd.sub_id,
                    time: f.end,
                    kind: CompletionKind::Acked,
                });
            } else {
                // Direct write: sectors feed the pipeline; ACK on the last
                // program.
                self.direct_remaining
                    .insert((cmd.request_id, cmd.sub_id), cmd.sectors.get());
                self.direct_queue.push_back((cmd, 0));
            }
        } else {
            // Read service finished; account hit/miss statistics.
            for i in 0..cmd.sectors.get() {
                let lba = Lba::new(cmd.lba.index() + i);
                if self.cache.lookup(lba).is_some() {
                    self.stats.cache_hits += 1;
                } else {
                    self.stats.cache_misses += 1;
                }
            }
            self.stats.reads_acked += 1;
            self.completions.push(Completion {
                request_id: cmd.request_id,
                sub_id: cmd.sub_id,
                time: f.end,
                kind: CompletionKind::Acked,
            });
        }
    }

    fn finish_program(&mut self, p: PipelineOp) {
        // The program committed to the array at completion time.
        let oob = Oob::user(p.lba, p.slot.seq);
        self.array
            .program(p.slot.ppa, p.data, oob)
            .expect("pipeline programs are reserved in order");
        self.probes.emit_with(p.end, Layer::Flash, || {
            (
                Ssd::program_request(&p.source),
                None,
                ProbeEvent::ProgramEnd {
                    kind: Ssd::program_kind(&p.source),
                    block: p.slot.ppa.block,
                    page: p.slot.ppa.page,
                    us: (p.end - p.start).as_micros(),
                },
            )
        });
        if let ProgramSource::GcRelocation { old_ppa } = p.source {
            self.probes.emit_with(p.end, Layer::Ftl, || {
                (
                    None,
                    None,
                    ProbeEvent::GcMove {
                        lba: p.lba.index(),
                        from_block: old_ppa.block,
                        to_block: p.slot.ppa.block,
                    },
                )
            });
        }
        match p.source {
            ProgramSource::CacheFlush => {
                self.ftl.finish_user_write(&p.slot);
                self.cache.flush_complete(p.lba, p.data);
            }
            ProgramSource::Direct { request_id, sub_id } => {
                self.ftl.finish_user_write(&p.slot);
                // The tracking entry is gone if the host link dropped
                // mid-request (the command was already errored); the
                // program itself still lands.
                if let Some(remaining) = self.direct_remaining.get_mut(&(request_id, sub_id)) {
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.direct_remaining.remove(&(request_id, sub_id));
                        self.stats.writes_acked += 1;
                        if self.state == PowerState::Operational {
                            self.completions.push(Completion {
                                request_id,
                                sub_id,
                                time: p.end,
                                kind: CompletionKind::Acked,
                            });
                        }
                    }
                }
            }
            ProgramSource::GcRelocation { old_ppa } => {
                // Publish only if the host has not overwritten it meanwhile.
                if self.ftl.lookup(p.lba) == Some(old_ppa) {
                    self.ftl.finish_user_write(&p.slot);
                }
                if let Some(gc) = &mut self.gc {
                    gc.in_flight -= 1;
                }
            }
        }
    }

    fn finish_control(&mut self, op: ControlOp) {
        match op {
            ControlOp::Commit { op, start, end } => {
                // Journal page content: the batch id, tagged as journal.
                let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
                self.array
                    .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                    .expect("journal pages are reserved in order");
                self.probes.emit_with(end, Layer::Ftl, || {
                    (
                        None,
                        None,
                        ProbeEvent::JournalCommit {
                            entries: op.batch.entries.len() as u64,
                            coverage: op.batch.coverage(),
                            us: (end - start).as_micros(),
                        },
                    )
                });
                self.ftl.finish_journal_commit(op, &mut self.durable);
                self.stats.commits += 1;
            }
            ControlOp::Checkpoint { op, start, end } => {
                let data = PageData::from_tag(mix64(0xC4EC_0000, op.checkpoint.id));
                self.array
                    .program(op.page, data, Oob::checkpoint(op.checkpoint.id, op.seq))
                    .expect("checkpoint pages are reserved in order");
                self.probes.emit_with(end, Layer::Ftl, || {
                    (
                        None,
                        None,
                        ProbeEvent::CheckpointEnd {
                            id: op.checkpoint.id,
                            us: (end - start).as_micros(),
                        },
                    )
                });
                self.ftl.finish_checkpoint(op, &mut self.checkpoints);
                self.checkpoints.prune(4);
                self.stats.checkpoints += 1;
            }
            ControlOp::Erase { block, start, end } => {
                self.array.erase(block).expect("gc erases a full block");
                let count = self.array.erase_count(block);
                self.probes.emit_with(end, Layer::Flash, || {
                    (
                        None,
                        None,
                        ProbeEvent::EraseEnd {
                            block,
                            us: (end - start).as_micros(),
                        },
                    )
                });
                self.ftl.finish_gc(block, count);
                self.stats.gc_collections += 1;
                self.gc = None;
            }
        }
    }

    fn schedule_work(&mut self) {
        if self.powered_down() {
            return;
        }
        self.start_front();
        // Read-only mode keeps the whole write path parked: no flushes,
        // no commits, no GC. (Brownout keeps working obliviously.)
        if self.state != PowerState::ReadOnly {
            self.start_pipeline();
            self.start_control();
        }
    }

    fn start_front(&mut self) {
        if !self.is_mounted() {
            return; // host link gone
        }
        if self.front.is_some() {
            return;
        }
        let Some(cmd) = self.pending.front().copied() else {
            return;
        };
        if cmd.is_write && self.config.cache.enabled {
            let n = cmd.sectors.get();
            if !self.cache.has_room_for(n) {
                self.cache.evict_clean(n);
            }
            if !self.cache.has_room_for(n) {
                return; // back-pressure: wait for flushes
            }
        }
        self.pending.pop_front();
        let duration = self.config.command_overhead
            + self.config.per_sector_transfer * cmd.sectors.get()
            + if !cmd.is_write && !self.all_sectors_cached(&cmd) {
                self.config.read_latency
            } else {
                SimDuration::ZERO
            };
        self.front = Some(FrontOp {
            cmd,
            end: self.now + duration,
        });
    }

    fn all_sectors_cached(&self, cmd: &HostCommand) -> bool {
        (0..cmd.sectors.get()).all(|i| self.cache.lookup(Lba::new(cmd.lba.index() + i)).is_some())
    }

    fn effective_program_duration(&self, page: u64) -> SimDuration {
        let raw = self
            .array
            .timing()
            .program_duration(self.config.cell_kind, page);
        ((raw * u64::from(self.config.program_lanes)) / u64::from(self.config.channels))
            .max(SimDuration::from_micros(5))
    }

    /// Ops still executing (their program has not finished; finished ops
    /// may linger at the back of the queue waiting for in-order
    /// retirement and do not occupy a lane).
    fn executing_programs(&self) -> u32 {
        let now = self.now;
        self.pipeline.iter().filter(|p| p.end > now).count() as u32
    }

    /// Whether a program lane is open. Executing ops never outnumber
    /// queued ops, so a short queue skips the per-op scan entirely.
    fn has_free_lane(&self) -> bool {
        self.pipeline.len() < self.config.program_lanes as usize
            || self.executing_programs() < self.config.program_lanes
    }

    fn start_pipeline(&mut self) {
        // Count once and track increments: every started program ends
        // strictly in the future, so it joins the executing set.
        let mut executing = self.executing_programs();
        while executing < self.config.program_lanes {
            if !self.start_one_program() {
                break;
            }
            executing += 1;
        }
    }

    /// Logs a user-data program occurrence, plus the paired-page site when
    /// the program endangers earlier wordline siblings. Returns the span
    /// id of the primary site (for probe tagging) when recording is on.
    fn record_program_site(
        &mut self,
        site: FaultSite,
        slot: &WriteSlot,
        end: SimTime,
    ) -> Option<u64> {
        if !self.site_log.is_enabled() {
            return None;
        }
        let span = self.site_log.record(site, self.now, end, Some(slot.ppa));
        if pfault_flash::pairing::endangers_earlier(self.config.cell_kind, slot.ppa.page) {
            self.site_log.record(
                FaultSite::PairedSecondProgram,
                self.now,
                end,
                Some(slot.ppa),
            );
        }
        span
    }

    /// The probe-bus kind for a pipeline op's source.
    fn program_kind(source: &ProgramSource) -> ProgramKind {
        match source {
            ProgramSource::CacheFlush => ProgramKind::CacheFlush,
            ProgramSource::Direct { .. } => ProgramKind::Direct,
            ProgramSource::GcRelocation { .. } => ProgramKind::GcReloc,
        }
    }

    /// The host request a pipeline op is attributable to, when any.
    fn program_request(source: &ProgramSource) -> Option<u64> {
        match source {
            ProgramSource::Direct { request_id, .. } => Some(*request_id),
            _ => None,
        }
    }

    /// Starts at most one program op; returns whether one was started.
    fn start_one_program(&mut self) -> bool {
        // In-order retirement is enforced at pop time: an op whose
        // program finishes early simply retires when the ops ahead of it
        // do.
        // 1. Direct (cache-off) write sectors.
        if let Some((cmd, idx)) = self.direct_queue.front().copied() {
            let lba = Lba::new(cmd.lba.index() + idx);
            match self.ftl.begin_user_write(lba) {
                Ok(slot) => {
                    if idx + 1 >= cmd.sectors.get() {
                        self.direct_queue.pop_front();
                    } else {
                        self.direct_queue.front_mut().expect("front exists").1 += 1;
                    }
                    let duration = self.effective_program_duration(slot.ppa.page);
                    let end = self.now + duration;
                    let span = self.record_program_site(FaultSite::DirectProgram, &slot, end);
                    let now = self.now;
                    self.probes.emit_with(now, Layer::Flash, || {
                        (
                            Some(cmd.request_id),
                            span,
                            ProbeEvent::ProgramStart {
                                kind: ProgramKind::Direct,
                                block: slot.ppa.block,
                                page: slot.ppa.page,
                            },
                        )
                    });
                    self.pipeline.push_back(PipelineOp {
                        lba,
                        data: cmd.sector_content(idx),
                        slot,
                        source: ProgramSource::Direct {
                            request_id: cmd.request_id,
                            sub_id: cmd.sub_id,
                        },
                        start: self.now,
                        end,
                    });
                    return true;
                }
                Err(_) => return false, // out of blocks: wait for GC
            }
        }
        // 2. Cache flushes. A pending FLUSH barrier overrides the lazy
        // timer: everything dirty is immediately eligible.
        let (delay, watermark) = if self.pending_flushes.is_empty() {
            (
                self.config.cache.flush_delay,
                self.config.cache.pressure_watermark,
            )
        } else {
            (SimDuration::ZERO, 0.0)
        };
        if let Some((lba, data)) = self.cache.next_flushable(self.now, delay, watermark) {
            match self.ftl.begin_user_write(lba) {
                Ok(slot) => {
                    let duration = self.effective_program_duration(slot.ppa.page);
                    let end = self.now + duration;
                    let span = self.record_program_site(FaultSite::CacheFlushProgram, &slot, end);
                    let now = self.now;
                    let dirty = self.cache.dirty_sectors();
                    self.probes.emit_with(now, Layer::Cache, || {
                        (
                            None,
                            span,
                            ProbeEvent::CacheEvict {
                                lba: lba.index(),
                                dirty,
                            },
                        )
                    });
                    self.probes.emit_with(now, Layer::Flash, || {
                        (
                            None,
                            span,
                            ProbeEvent::ProgramStart {
                                kind: ProgramKind::CacheFlush,
                                block: slot.ppa.block,
                                page: slot.ppa.page,
                            },
                        )
                    });
                    self.pipeline.push_back(PipelineOp {
                        lba,
                        data,
                        slot,
                        source: ProgramSource::CacheFlush,
                        start: self.now,
                        end,
                    });
                    return true;
                }
                Err(_) => {
                    self.cache.flush_aborted(lba);
                    return false;
                }
            }
        }
        // 3. GC relocations.
        let reloc = self.gc.as_mut().and_then(|gc| {
            gc.pending.pop_front().inspect(|_r| {
                gc.in_flight += 1;
            })
        });
        if let Some((lba, old_ppa)) = reloc {
            // Read the live data synchronously (array state lookup).
            let outcome = self.read_media(old_ppa);
            let data = match outcome {
                ReadOutcome::Ok { data, .. } => data,
                // Unreadable victim data: nothing to relocate.
                _ => {
                    if let Some(gc) = &mut self.gc {
                        gc.in_flight -= 1;
                    }
                    return false;
                }
            };
            if let Ok(slot) = self.ftl.begin_user_write(lba) {
                let duration = self.effective_program_duration(slot.ppa.page);
                let end = self.now + duration;
                let span = self.record_program_site(FaultSite::GcRelocProgram, &slot, end);
                let now = self.now;
                self.probes.emit_with(now, Layer::Flash, || {
                    (
                        None,
                        span,
                        ProbeEvent::ProgramStart {
                            kind: ProgramKind::GcReloc,
                            block: slot.ppa.block,
                            page: slot.ppa.page,
                        },
                    )
                });
                self.pipeline.push_back(PipelineOp {
                    lba,
                    data,
                    slot,
                    source: ProgramSource::GcRelocation { old_ppa },
                    start: self.now,
                    end,
                });
                return true;
            } else if let Some(gc) = &mut self.gc {
                gc.in_flight -= 1;
            }
        }
        false
    }

    fn start_control(&mut self) {
        if self.control.is_some() {
            return;
        }
        // The periodic full sync ticks on an absolute cadence (anchored at
        // boot with a random phase): when a tick passes, the open extent
        // is force-closed so the next commit covers it. This bounds idle
        // exposure by the commit interval (§IV-A's ~700 ms tail) while
        // backlog-driven commits — which do NOT close the open extent —
        // keep the under-load window tight (§IV-D's extent penalty
        // survives on hot runs).
        if self.now >= self.next_commit_at {
            if self.ftl.open_extent_sectors() > 0 {
                self.ftl.close_open_extent();
            }
            self.sync_flush_pending = true;
            while self.next_commit_at <= self.now {
                self.next_commit_at += self.config.ftl.commit_interval;
            }
        }
        // A pending FLUSH barrier needs the whole journal durable now:
        // close the open extent and force a commit regardless of backlog.
        if !self.pending_flushes.is_empty() {
            if self.ftl.open_extent_sectors() > 0 {
                self.ftl.close_open_extent();
            }
            if self.ftl.committable_entries() > 0 {
                self.sync_flush_pending = true;
            }
        }
        let commit_due = self.ftl.commit_due_by_count()
            || (self.sync_flush_pending && self.ftl.committable_entries() > 0);
        if commit_due {
            if let Ok(Some(op)) = self.ftl.begin_journal_commit() {
                self.sync_flush_pending = false;
                let duration = self
                    .array
                    .timing()
                    .program_duration(self.config.cell_kind, op.page.page);
                let end = self.now + duration;
                let span = self.site_log.record(
                    FaultSite::JournalCommitProgram,
                    self.now,
                    end,
                    Some(op.page),
                );
                let now = self.now;
                self.probes.emit_with(now, Layer::Flash, || {
                    (
                        None,
                        span,
                        ProbeEvent::ProgramStart {
                            kind: ProgramKind::Journal,
                            block: op.page.block,
                            page: op.page.page,
                        },
                    )
                });
                self.control = Some(ControlOp::Commit {
                    op,
                    start: self.now,
                    end,
                });
                return;
            }
        }
        // Checkpoint: bound recovery replay once enough batches piled up.
        if self.ftl.checkpoint_due() {
            if let Ok(op) = self.ftl.begin_checkpoint() {
                // A full-map snapshot is bigger than one page program;
                // model it as a handful of page programs back to back.
                let duration = self
                    .array
                    .timing()
                    .program_duration(self.config.cell_kind, op.page.page)
                    * 4;
                let end = self.now + duration;
                let span = self.site_log.record(
                    FaultSite::CheckpointProgram,
                    self.now,
                    end,
                    Some(op.page),
                );
                let now = self.now;
                let entries = op.checkpoint.len() as u64;
                let id = op.checkpoint.id;
                self.probes.emit_with(now, Layer::Ftl, || {
                    (None, span, ProbeEvent::CheckpointBegin { id, entries })
                });
                self.control = Some(ControlOp::Checkpoint {
                    op,
                    start: self.now,
                    end,
                });
                return;
            }
        }
        // Garbage collection.
        if self.gc.is_none() && self.ftl.gc_needed() {
            if let Some(plan) = self.ftl.gc_plan() {
                let pending: VecDeque<_> = plan.relocations.iter().copied().collect();
                self.gc = Some(GcState {
                    plan,
                    pending,
                    in_flight: 0,
                });
            }
        }
        if let Some(gc) = &self.gc {
            if gc.pending.is_empty() && gc.in_flight == 0 {
                let block = gc.plan.victim;
                let duration = self.array.timing().erase;
                let end = self.now + duration;
                let span = self.site_log.record(
                    FaultSite::GcErase,
                    self.now,
                    end,
                    Some(pfault_flash::Ppa::new(block, 0)),
                );
                let now = self.now;
                self.probes.emit_with(now, Layer::Flash, || {
                    (None, span, ProbeEvent::EraseStart { block })
                });
                self.control = Some(ControlOp::Erase {
                    block,
                    start: self.now,
                    end,
                });
            }
        }
    }

    /// Applies a power fault.
    ///
    /// The device advances to `timeline.host_lost` normally (the rail is
    /// still ≥ 4.5 V), then the host link dies: every unacknowledged
    /// command fails with a device error. Firmware without a supercap keeps
    /// working obliviously until `timeline.flash_unreliable`; whatever is
    /// in flight then is interrupted, and all volatile state (cache,
    /// mapping table, journal buffer) is lost. With a supercap the firmware
    /// instead panic-flushes from stored energy.
    ///
    /// # Panics
    ///
    /// Panics if the timeline starts in the device's past.
    pub fn power_fail(&mut self, timeline: &FaultTimeline) {
        self.advance_to(timeline.host_lost);
        self.probes
            .emit(timeline.host_lost, Layer::Power, timeline.probe_event());
        self.state = PowerState::Brownout;
        self.fail_host_side(timeline.host_lost);

        if self.config.supercap {
            self.panic_flush();
            self.die_cleanly();
            return;
        }

        // Oblivious firmware: flush/commit continue until the rail is too
        // low for reliable NAND operations.
        self.advance_to(timeline.flash_unreliable);
        self.die_hard();
    }

    /// Errors out every host-visible command that has not been ACKed: the
    /// link is gone.
    fn fail_host_side(&mut self, at: SimTime) {
        let errors_before = self.stats.device_errors;
        let error = |request_id: u64,
                     sub_id: u32,
                     completions: &mut Vec<Completion>,
                     stats: &mut SsdStats| {
            stats.device_errors += 1;
            completions.push(Completion {
                request_id,
                sub_id,
                time: at,
                kind: CompletionKind::DeviceError,
            });
        };
        for cmd in std::mem::take(&mut self.pending) {
            error(
                cmd.request_id,
                cmd.sub_id,
                &mut self.completions,
                &mut self.stats,
            );
        }
        if let Some(f) = self.front.take() {
            error(
                f.cmd.request_id,
                f.cmd.sub_id,
                &mut self.completions,
                &mut self.stats,
            );
        }
        let direct_outstanding: Vec<(u64, u32)> = self.direct_remaining.keys().copied().collect();
        for (request_id, sub_id) in direct_outstanding {
            error(request_id, sub_id, &mut self.completions, &mut self.stats);
        }
        self.direct_remaining.clear();
        self.direct_queue.clear();
        for (request_id, sub_id) in std::mem::take(&mut self.pending_flushes) {
            error(request_id, sub_id, &mut self.completions, &mut self.stats);
        }
        let errored = self.stats.device_errors - errors_before;
        self.probes.emit_with(at, Layer::Host, || {
            (None, None, ProbeEvent::HostLinkLost { inflight: errored })
        });
    }

    /// Applies a transient voltage sag and returns its classified
    /// severity. Harmless sags pass unnoticed; a link-drop sag errors the
    /// in-flight host commands but preserves all internal state; a deeper
    /// sag resets the controller — volatile state dies exactly as in a
    /// full outage — but power returns by itself at the sag's end and the
    /// firmware recovers immediately.
    ///
    /// # Panics
    ///
    /// Panics if the sag starts in the device's past.
    pub fn apply_brownout(
        &mut self,
        event: &pfault_power::BrownoutEvent,
    ) -> pfault_power::BrownoutSeverity {
        use pfault_power::psu::{FLASH_UNRELIABLE_MV, HOST_LOSS_MV};
        use pfault_power::BrownoutSeverity;
        let nominal = crate::config::NOMINAL_RAIL;
        let severity = event.severity();
        match severity {
            BrownoutSeverity::Harmless => {
                self.advance_to(event.end());
            }
            BrownoutSeverity::LinkDrop => {
                let (down, up) = event
                    .window_below(HOST_LOSS_MV, nominal)
                    .expect("link-drop sag crosses host loss");
                self.advance_to(down);
                self.state = PowerState::Brownout;
                self.fail_host_side(down);
                // Internal work continues through the dip.
                self.advance_to(up);
                self.state = PowerState::Operational;
                self.advance_to(event.end());
            }
            BrownoutSeverity::ControllerReset | BrownoutSeverity::CoreLoss => {
                let (down, _) = event
                    .window_below(HOST_LOSS_MV, nominal)
                    .expect("reset sag crosses host loss");
                self.advance_to(down);
                self.state = PowerState::Brownout;
                self.fail_host_side(down);
                let (reset_at, _) = event
                    .window_below(FLASH_UNRELIABLE_MV, nominal)
                    .expect("reset sag crosses the brownout detector");
                self.advance_to(reset_at);
                self.die_hard();
                // Power returns by itself at the sag's end; a config with
                // mount failures would panic here exactly as before the
                // Result-first cleanup.
                self.power_on_recover(event.end())
                    .expect("sag recovery remounts");
            }
        }
        severity
    }

    /// Supercap-powered orderly shutdown: finish the in-flight program,
    /// flush every dirty sector, close the open extent, and commit the
    /// journal — all from stored energy.
    fn panic_flush(&mut self) {
        while let Some(p) = self.pipeline.pop_front() {
            self.finish_program(p);
        }
        if let Some(op) = self.control.take() {
            self.finish_control(op);
        }
        let dirty = self.cache.dirty_entries();
        for (lba, data) in dirty {
            if let Ok(slot) = self.ftl.begin_user_write(lba) {
                let oob = Oob::user(lba, slot.seq);
                if self.array.program(slot.ppa, data, oob).is_ok() {
                    self.ftl.finish_user_write(&slot);
                    self.cache.flush_complete(lba, data);
                }
            }
        }
        self.ftl.close_open_extent();
        while let Ok(Some(op)) = self.ftl.begin_journal_commit() {
            let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
            if self
                .array
                .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                .is_ok()
            {
                // Supercap commits burn stored energy, not simulated
                // time: the whole panic flush is modelled as instant.
                let (now, entries, coverage) =
                    (self.now, op.batch.entries.len() as u64, op.batch.coverage());
                self.probes.emit_with(now, Layer::Ftl, || {
                    (
                        None,
                        None,
                        ProbeEvent::JournalCommit {
                            entries,
                            coverage,
                            us: 0,
                        },
                    )
                });
                self.ftl.finish_journal_commit(op, &mut self.durable);
                self.stats.commits += 1;
            } else {
                break;
            }
        }
    }

    fn die_cleanly(&mut self) {
        self.stats.last_fault_dirty_lost = self.cache.dirty_sectors();
        self.stats.last_fault_map_lost = self.ftl.volatile_mapped_sectors();
        let (now, dirty, map) = (
            self.now,
            self.stats.last_fault_dirty_lost,
            self.stats.last_fault_map_lost,
        );
        self.probes.emit_with(now, Layer::Power, || {
            (None, None, ProbeEvent::VolatileLost { dirty, map })
        });
        self.cache.clear();
        self.pipeline.clear();
        self.control = None;
        self.direct_queue.clear();
        self.direct_remaining.clear();
        self.gc = None;
        self.array.power_off();
        self.state = PowerState::Dead;
    }

    fn die_hard(&mut self) {
        // Interrupt everything mid-operation at the reset instant: ops
        // whose own program already finished retire normally (their data
        // is on the array even if the in-order bookkeeping lagged), the
        // rest are cut mid-ISPP.
        let inflight: Vec<PipelineOp> = self.pipeline.drain(..).collect();
        for p in inflight {
            if p.end <= self.now {
                self.finish_program(p);
                continue;
            }
            let total = (p.end - p.start).as_micros().max(1);
            let done = self.now.saturating_since(p.start).as_micros();
            let progress = (done as f64 / total as f64).clamp(0.0, 1.0);
            let now = self.now;
            self.probes.emit_with(now, Layer::Flash, || {
                (
                    Ssd::program_request(&p.source),
                    None,
                    ProbeEvent::ProgramInterrupted {
                        kind: Ssd::program_kind(&p.source),
                        block: p.slot.ppa.block,
                        page: p.slot.ppa.page,
                        progress_permille: (progress * 1000.0) as u64,
                    },
                )
            });
            self.array
                .interrupt_program(p.slot.ppa, progress, &mut self.rng);
        }
        match self.control.take() {
            Some(ControlOp::Commit { op, start, end }) => {
                // A torn journal write: the page header (batch id + the
                // full batch's CRC) lands first, then the entry stream —
                // cut mid-program, only a prefix of the entries persists
                // under the full batch's checksum. Recovery recomputes the
                // CRC over what survived, sees the mismatch, and discards
                // the batch whole (unless `verify_batch_crc` is off, which
                // reintroduces the half-apply firmware bug).
                let total = (end - start).as_micros().max(1);
                let done = self.now.saturating_since(start).as_micros();
                let progress = (done as f64 / total as f64).clamp(0.0, 1.0);
                let keep = (op.batch.coverage() as f64 * progress).floor() as u64;
                if keep > 0 {
                    let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
                    if self
                        .array
                        .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                        .is_ok()
                    {
                        let (now, full) = (self.now, op.batch.coverage());
                        self.probes.emit_with(now, Layer::Ftl, || {
                            (None, None, ProbeEvent::JournalTorn { kept: keep, full })
                        });
                        self.durable.append_torn(op.page, &op.batch, keep);
                    }
                }
                // The rest of the batch never became durable.
            }
            Some(ControlOp::Checkpoint { op, end, .. }) => {
                // The snapshot never completed: garble what was written of
                // its page; recovery falls back to the previous
                // checkpoint plus a longer journal replay.
                let progress = 1.0
                    - (end.saturating_since(self.now).as_micros() as f64
                        / self
                            .array
                            .timing()
                            .program_duration(self.config.cell_kind, op.page.page)
                            .as_micros()
                            .max(1) as f64)
                        .clamp(0.0, 1.0);
                let (now, id) = (self.now, op.checkpoint.id);
                self.probes.emit_with(now, Layer::Ftl, || {
                    (None, None, ProbeEvent::CheckpointInterrupted { id })
                });
                self.array
                    .interrupt_program(op.page, progress, &mut self.rng);
            }
            Some(ControlOp::Erase { block, .. }) => {
                let now = self.now;
                self.probes.emit_with(now, Layer::Flash, || {
                    (None, None, ProbeEvent::EraseInterrupted { block })
                });
                self.array.interrupt_erase(block);
            }
            None => {}
        }
        self.stats.last_fault_dirty_lost = self.cache.dirty_sectors();
        self.stats.last_fault_map_lost = self.ftl.volatile_mapped_sectors();
        let (now, dirty, map) = (
            self.now,
            self.stats.last_fault_dirty_lost,
            self.stats.last_fault_map_lost,
        );
        self.probes.emit_with(now, Layer::Power, || {
            (None, None, ProbeEvent::VolatileLost { dirty, map })
        });
        self.cache.clear();
        self.direct_queue.clear();
        self.direct_remaining.clear();
        self.gc = None;
        self.array.power_off();
        self.state = PowerState::Dead;
    }

    /// Restores power at `now` and runs the firmware's staged recovery
    /// pipeline on simulated time: journal scan → mapping rebuild →
    /// dirty-page verify (with `recovery_verify`) → bad-block retirement
    /// (with `retire_bad_blocks`). On success, the returned
    /// [`RecoveryReport`] says what the pipeline did — batches replayed,
    /// torn batches discarded, pages verified, blocks retired, and
    /// whether the mount resumed an earlier interrupted recovery.
    ///
    /// With a nonzero `mount_failure_rate`, each stage may die on a
    /// transient firmware fault (one full pipeline pass fails with
    /// exactly the configured rate); the host may power-cycle and call
    /// again at a later `now`, and the mount resumes after the last
    /// completed stage. After `mount_retry_limit` consecutive failures
    /// the device bricks — unless the mapping was already rebuilt, in
    /// which case it mounts read-only instead.
    ///
    /// # Errors
    ///
    /// [`DeviceError::MountFailed`] on a transient mount failure,
    /// [`DeviceError::Bricked`] once retries are exhausted before a
    /// usable map existed, and [`DeviceError::RecoveryFailed`] when the
    /// rebuild itself is unusable (deterministic — the device bricks).
    ///
    /// # Panics
    ///
    /// Panics if the device is operational or still browning out, or if
    /// `now` precedes the device clock.
    pub fn power_on_recover(&mut self, now: SimTime) -> Result<RecoveryReport, DeviceError> {
        self.run_recovery(now, None)
    }

    /// Like [`Ssd::power_on_recover`], but a second power cut strikes
    /// while the pipeline runs: if the mount is still in flight when the
    /// rail collapses (`cut.flash_unreliable`), the working stage is
    /// interrupted, the device is dead again, and the call returns
    /// [`DeviceError::RecoveryInterrupted`]. Stages completed before the
    /// cut stay checkpointed in firmware scratch state — the next mount
    /// resumes after the last completed boundary. A pipeline that
    /// finishes at or before the cut instant mounts normally; the caller
    /// then owns delivering the cut to the now-operational device.
    ///
    /// # Errors
    ///
    /// [`DeviceError::RecoveryInterrupted`] when the cut lands inside
    /// the pipeline, plus everything [`Ssd::power_on_recover`] returns.
    ///
    /// # Panics
    ///
    /// Panics if the device is operational or still browning out, or if
    /// `now` precedes the device clock.
    pub fn power_on_recover_interruptible(
        &mut self,
        now: SimTime,
        cut: &FaultTimeline,
    ) -> Result<RecoveryReport, DeviceError> {
        self.run_recovery(now, Some(cut.flash_unreliable))
    }

    /// The pipeline stages this configuration runs. Retirement needs the
    /// verify stage's candidates, so it only runs when both flags are on.
    fn enabled_stages(&self) -> Vec<RecoveryStage> {
        let mut stages = vec![RecoveryStage::JournalScan, RecoveryStage::MappingRebuild];
        if self.config.recovery_verify {
            stages.push(RecoveryStage::DirtyPageVerify);
            if self.config.ftl.retire_bad_blocks {
                stages.push(RecoveryStage::BadBlockRetirement);
            }
        }
        stages
    }

    /// Per-stage transient failure probability, derived from the
    /// whole-mount `mount_failure_rate` so that one full pipeline pass
    /// (no resume) fails with exactly the configured rate.
    fn stage_failure_odds(&self, stages: usize) -> f64 {
        let rate = self.config.mount_failure_rate;
        if rate <= 0.0 || rate >= 1.0 {
            return rate.clamp(0.0, 1.0);
        }
        1.0 - (1.0 - rate).powf(1.0 / stages as f64)
    }

    fn run_recovery(
        &mut self,
        now: SimTime,
        interrupt_at: Option<SimTime>,
    ) -> Result<RecoveryReport, DeviceError> {
        if self.state == PowerState::Bricked {
            return Err(DeviceError::Bricked {
                attempts: self.mount_attempts,
            });
        }
        assert_eq!(
            self.state,
            PowerState::Dead,
            "device must be dead to recover"
        );
        assert!(now >= self.now);
        self.now = now;
        let attempt = self.mount_attempts + 1;
        self.probes.emit_with(now, Layer::Recovery, || {
            (
                None,
                None,
                ProbeEvent::RecoveryStep {
                    step: RecoveryStepKind::MountAttempt,
                    value: u64::from(attempt),
                },
            )
        });
        let stages = self.enabled_stages();
        let p_stage = self.stage_failure_odds(stages.len());
        let mut session = self.recovery.take().unwrap_or_default();
        let skipped = stages.iter().filter(|&&s| session.completed(s)).count() as u32;
        let resumed = skipped > 0;
        if resumed {
            self.probes.emit_with(now, Layer::Recovery, || {
                (
                    None,
                    None,
                    ProbeEvent::RecoveryStep {
                        step: RecoveryStepKind::Resumed,
                        value: u64::from(skipped),
                    },
                )
            });
        }
        self.array.power_on();
        let mut rebuild_span: Option<u64> = None;
        for stage in stages {
            if session.completed(stage) {
                continue;
            }
            let idx = stage.index();
            let start = self.now;
            self.probes.emit_with(start, Layer::Recovery, || {
                (
                    None,
                    None,
                    ProbeEvent::RecoveryStep {
                        step: RecoveryStepKind::StageStarted,
                        value: u64::from(idx),
                    },
                )
            });
            // Transient firmware fault at the stage boundary: this mount
            // attempt dies; completed stages stay checkpointed. The draw
            // happens only with a nonzero rate, so failure-free configs
            // keep their RNG streams bit-identical.
            if p_stage > 0.0 && self.rng.chance(p_stage) {
                return self.fail_mount(stage, attempt, resumed, skipped, session);
            }
            match self.run_stage(stage, &mut session, interrupt_at) {
                StageRun::Completed { span } => {
                    if stage == RecoveryStage::MappingRebuild {
                        rebuild_span = span;
                        let ftl = session.ftl.as_ref().expect("rebuild just completed");
                        if ftl.available_blocks() == 0 {
                            // Deterministic: a rebuild that consumes every
                            // block is unusable, and power-cycling cannot
                            // fix it — the device bricks immediately.
                            self.state = PowerState::Bricked;
                            self.array.power_off();
                            return Err(DeviceError::RecoveryFailed {
                                error: pfault_ftl::FtlError::RecoveryExhausted {
                                    blocks: self.config.ftl.geometry.blocks(),
                                },
                            });
                        }
                    }
                }
                StageRun::Interrupted { at } => {
                    self.now = self.now.max(at);
                    let t = self.now;
                    self.probes.emit_with(t, Layer::Recovery, || {
                        (
                            None,
                            None,
                            ProbeEvent::RecoveryStep {
                                step: RecoveryStepKind::StageInterrupted,
                                value: u64::from(idx),
                            },
                        )
                    });
                    self.array.power_off();
                    self.recovery = Some(session);
                    return Err(DeviceError::RecoveryInterrupted {
                        stage: idx,
                        attempt,
                    });
                }
            }
        }
        self.install_mount(attempt, resumed, skipped, session, rebuild_span)
    }

    /// One mount attempt died on a transient firmware fault: account it,
    /// keep the session's checkpointed stages, and either report the
    /// failure, degrade to read-only (retries spent but the map already
    /// rebuilt), or brick (retries spent before a usable map existed).
    fn fail_mount(
        &mut self,
        stage: RecoveryStage,
        attempt: u32,
        resumed: bool,
        skipped: u32,
        mut session: RecoverySession,
    ) -> Result<RecoveryReport, DeviceError> {
        self.mount_attempts += 1;
        let now = self.now;
        let idx = stage.index();
        self.probes.emit_with(now, Layer::Recovery, || {
            (
                None,
                None,
                ProbeEvent::RecoveryStep {
                    step: RecoveryStepKind::StageFailed,
                    value: u64::from(idx),
                },
            )
        });
        self.probes.emit_with(now, Layer::Recovery, || {
            (
                None,
                None,
                ProbeEvent::RecoveryStep {
                    step: RecoveryStepKind::MountFailed,
                    value: u64::from(attempt),
                },
            )
        });
        if self.mount_attempts >= self.config.mount_retry_limit {
            if session.ftl.is_some() {
                // Graceful degradation instead of a brick: the mapping is
                // already rebuilt, only the later stages keep dying.
                // Mount read-only — the paper's drives that came back
                // partially rather than not at all.
                session.degrade_read_only = true;
                return self.install_mount(attempt, resumed, skipped, session, None);
            }
            self.state = PowerState::Bricked;
            self.array.power_off();
            return Err(DeviceError::Bricked {
                attempts: self.mount_attempts,
            });
        }
        self.array.power_off();
        self.recovery = Some(session);
        Err(DeviceError::MountFailed {
            attempt: self.mount_attempts,
        })
    }

    /// Installs the session's rebuilt FTL and mounts the device —
    /// operational, or read-only when the session demands degradation.
    fn install_mount(
        &mut self,
        attempt: u32,
        resumed: bool,
        skipped: u32,
        mut session: RecoverySession,
        span: Option<u64>,
    ) -> Result<RecoveryReport, DeviceError> {
        let ftl = session.ftl.take().expect("mapping rebuild completed");
        self.ftl = ftl;
        let now = self.now;
        let stats = session.stats;
        self.emit_recovery_steps(now, span, &stats);
        let read_only = session.degrade_read_only;
        if read_only {
            let retired = session.blocks_retired;
            self.probes.emit_with(now, Layer::Recovery, || {
                (
                    None,
                    None,
                    ProbeEvent::RecoveryStep {
                        step: RecoveryStepKind::ReadOnlyFallback,
                        value: retired,
                    },
                )
            });
            self.state = PowerState::ReadOnly;
        } else {
            self.state = PowerState::Operational;
        }
        self.mount_attempts = 0;
        self.next_commit_at = now + self.config.ftl.commit_interval;
        self.pending.clear();
        self.front = None;
        let mut report = RecoveryReport::from_stats(attempt, stats);
        report.resumed = resumed;
        report.stages_skipped = skipped;
        report.verified_pages = session.verified_pages;
        report.unreadable_pages = session.suspects.as_ref().map_or(0, |s| s.len() as u64);
        report.blocks_retired = session.blocks_retired;
        report.pages_relocated = session.pages_relocated;
        report.read_only = read_only;
        Ok(report)
    }

    /// Executes one pipeline stage on simulated time. A stage that
    /// completes records its fault-site span and checkpoints its output
    /// into the session; a stage cut mid-window discards its in-flight
    /// work (the session keeps only earlier boundaries), modelling
    /// volatile stage state dying with the rail.
    fn run_stage(
        &mut self,
        stage: RecoveryStage,
        session: &mut RecoverySession,
        interrupt_at: Option<SimTime>,
    ) -> StageRun {
        let start = self.now;
        let interrupted = |end: SimTime| interrupt_at.is_some_and(|cut| cut < end);
        match stage {
            RecoveryStage::JournalScan => {
                let reads_before = self.array.stats().reads;
                let scan = pfault_ftl::journal_scan(
                    &self.config.ftl,
                    &mut self.array,
                    &self.durable,
                    &self.checkpoints,
                    &mut self.rng,
                );
                // Checkpoint snapshots span several pages (their program
                // is modelled as 4 back-to-back page programs); their
                // read-back costs the same factor.
                let ckpt_reads = scan.stats.checkpoints_unreadable
                    + u64::from(scan.stats.checkpoint_restored);
                let reads = (self.array.stats().reads - reads_before) + 3 * ckpt_reads;
                let end = start + self.array.timing().read * reads.max(1);
                if interrupted(end) {
                    return StageRun::Interrupted {
                        at: interrupt_at.expect("checked"),
                    };
                }
                self.now = end;
                let span = self.site_log.record(stage.site(), start, end, None);
                session.scan = Some(scan);
                StageRun::Completed { span }
            }
            RecoveryStage::MappingRebuild => {
                let scan = session.scan.as_ref().expect("journal scan completed");
                let reads_before = self.array.stats().reads;
                let (ftl, stats) = pfault_ftl::mapping_rebuild(
                    self.config.ftl,
                    &mut self.array,
                    &self.durable,
                    &self.checkpoints,
                    scan,
                    &mut self.rng,
                );
                let scan_reads = self.array.stats().reads - reads_before;
                // CPU-bound batch application, plus the FullScan policy's
                // re-reads when configured.
                let cpu = SimDuration::from_micros(
                    stats.entries_replayed / 32 + stats.map_entries / 64 + 1,
                );
                let end = start + cpu + self.array.timing().read * scan_reads;
                if interrupted(end) {
                    return StageRun::Interrupted {
                        at: interrupt_at.expect("checked"),
                    };
                }
                self.now = end;
                let span = self.site_log.record(stage.site(), start, end, None);
                session.stats = stats;
                session.ftl = Some(ftl);
                StageRun::Completed { span }
            }
            RecoveryStage::DirtyPageVerify => {
                let mapped: Vec<(Lba, pfault_flash::Ppa)> = {
                    let ftl = session.ftl.as_ref().expect("mapping rebuild completed");
                    let mut v: Vec<_> = ftl.iter_mapped().collect();
                    v.sort_by_key(|(l, _)| *l);
                    v
                };
                let reads_before = self.array.stats().reads;
                let mut suspects = Vec::new();
                for &(lba, ppa) in &mapped {
                    match self.read_media(ppa) {
                        ReadOutcome::Ok { .. } => {}
                        _ => suspects.push((lba, ppa)),
                    }
                }
                // Retry-ladder rungs count as reads too, so the stage
                // naturally takes longer on marginal media.
                let reads = self.array.stats().reads - reads_before;
                let end = start + self.array.timing().read * reads.max(1);
                if interrupted(end) {
                    return StageRun::Interrupted {
                        at: interrupt_at.expect("checked"),
                    };
                }
                self.now = end;
                let span = self.site_log.record(stage.site(), start, end, None);
                session.verified_pages = mapped.len() as u64;
                let unreadable = suspects.len() as u64;
                if unreadable > 0 {
                    let t = self.now;
                    self.probes.emit_with(t, Layer::Recovery, || {
                        (
                            None,
                            span,
                            ProbeEvent::RecoveryStep {
                                step: RecoveryStepKind::VerifyUnreadable,
                                value: unreadable,
                            },
                        )
                    });
                }
                session.suspects = Some(suspects);
                StageRun::Completed { span }
            }
            RecoveryStage::BadBlockRetirement => {
                let suspects = session.suspects.clone().unwrap_or_default();
                if suspects.is_empty() {
                    // Nothing to retire: the stage is a boundary check.
                    let end = start + SimDuration::from_micros(1);
                    if interrupted(end) {
                        return StageRun::Interrupted {
                            at: interrupt_at.expect("checked"),
                        };
                    }
                    self.now = end;
                    let span = self.site_log.record(stage.site(), start, end, None);
                    return StageRun::Completed { span };
                }
                let bad_blocks: std::collections::BTreeSet<u64> =
                    suspects.iter().map(|&(_, ppa)| ppa.block).collect();
                let relocate: Vec<(Lba, pfault_flash::Ppa)> = {
                    let ftl = session.ftl.as_ref().expect("mapping rebuild completed");
                    let mut v: Vec<_> = ftl
                        .iter_mapped()
                        .filter(|(lba, ppa)| {
                            bad_blocks.contains(&ppa.block) && !suspects.contains(&(*lba, *ppa))
                        })
                        .collect();
                    v.sort_by_key(|(l, _)| *l);
                    v
                };
                // The stage's time budget is planned up front (read +
                // program per relocation, one closing journal commit): a
                // cut anywhere in the window loses the whole stage, since
                // relocations are volatile until their mapping batch
                // commits at the end.
                let timing = self.array.timing();
                let per_page = timing.read + timing.program_upper;
                let planned = per_page * relocate.len() as u64 + timing.program_upper;
                let end = start + planned;
                if interrupted(end) {
                    return StageRun::Interrupted {
                        at: interrupt_at.expect("checked"),
                    };
                }
                self.now = end;
                let span = self.site_log.record(stage.site(), start, end, None);
                // Retire first: the blocks never serve again even if
                // relocation stalls.
                for &block in &bad_blocks {
                    let ftl = session.ftl.as_mut().expect("rebuild completed");
                    if ftl.is_retired(block) {
                        continue;
                    }
                    ftl.retire_block(block);
                    session.blocks_retired += 1;
                    let t = self.now;
                    self.probes.emit_with(t, Layer::Recovery, || {
                        (
                            None,
                            span,
                            ProbeEvent::RecoveryStep {
                                step: RecoveryStepKind::BlockRetired,
                                value: block,
                            },
                        )
                    });
                }
                // Relocate what still reads back; sectors unreadable even
                // through the ladder keep their (marginal) mapping into
                // the retired block — the loss shows up at read time.
                for &(lba, old_ppa) in &relocate {
                    let data = match self.read_media(old_ppa) {
                        ReadOutcome::Ok { data, .. } => data,
                        _ => continue,
                    };
                    let slot = match session
                        .ftl
                        .as_mut()
                        .expect("rebuild completed")
                        .begin_user_write(lba)
                    {
                        Ok(slot) => slot,
                        Err(_) => {
                            // No block left to relocate into: stop and
                            // pin the device read-only.
                            session.degrade_read_only = true;
                            break;
                        }
                    };
                    let oob = Oob::user(lba, slot.seq);
                    if self.array.program(slot.ppa, data, oob).is_ok() {
                        session
                            .ftl
                            .as_mut()
                            .expect("rebuild completed")
                            .finish_user_write(&slot);
                        session.pages_relocated += 1;
                    }
                }
                // Commit the relocation mappings durably: without this,
                // the next cut would resurrect pointers into retired
                // blocks.
                let ftl = session.ftl.as_mut().expect("rebuild completed");
                ftl.close_open_extent();
                if let Ok(Some(op)) = ftl.begin_journal_commit() {
                    let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
                    if self
                        .array
                        .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                        .is_ok()
                    {
                        session
                            .ftl
                            .as_mut()
                            .expect("rebuild completed")
                            .finish_journal_commit(op, &mut self.durable);
                        self.stats.commits += 1;
                    }
                }
                let retired_total = session
                    .ftl
                    .as_ref()
                    .expect("rebuild completed")
                    .retired_blocks();
                if retired_total > self.config.ftl.spare_blocks {
                    session.degrade_read_only = true;
                }
                StageRun::Completed { span }
            }
        }
    }

    /// Narrates a successful FTL rebuild onto the probe bus, one
    /// `RecoveryStep` per pipeline stage that actually did something.
    fn emit_recovery_steps(&mut self, now: SimTime, span: Option<u64>, stats: &RecoveryStats) {
        if !self.probes.is_enabled() {
            return;
        }
        let mut step = |kind: RecoveryStepKind, value: u64| {
            self.probes.emit_tagged(
                now,
                Layer::Recovery,
                None,
                span,
                ProbeEvent::RecoveryStep { step: kind, value },
            );
        };
        if stats.checkpoint_restored {
            step(
                RecoveryStepKind::CheckpointRestored,
                stats.checkpoint_entries,
            );
        }
        step(RecoveryStepKind::BatchReplayed, stats.batches_replayed);
        if stats.batches_discarded_torn > 0 {
            step(
                RecoveryStepKind::BatchDiscardedTorn,
                stats.batches_discarded_torn,
            );
        }
        if stats.batches_truncated > 0 {
            step(RecoveryStepKind::ReplayTruncated, stats.batches_truncated);
        }
        if stats.scan_adoptions > 0 {
            step(RecoveryStepKind::ScanAdopted, stats.scan_adoptions);
        }
        step(RecoveryStepKind::MapRebuilt, stats.map_entries);
    }

    /// Reads one physical page through the ECC read-retry ladder,
    /// emitting the flash-layer probes: `flash.read-retry` when rungs
    /// engaged, plus the usual ECC repair/failure events. With
    /// `read_retry_limit == 0` this is exactly a plain array read.
    fn read_media(&mut self, ppa: pfault_flash::Ppa) -> ReadOutcome {
        let retries_before = self.array.stats().read_retries;
        let recovered_before = self.array.stats().retry_recovered_reads;
        let outcome = self
            .array
            .read_with_retries(ppa, self.config.read_retry_limit, &mut self.rng);
        let rungs = self.array.stats().read_retries - retries_before;
        if rungs > 0 {
            let recovered =
                u64::from(self.array.stats().retry_recovered_reads > recovered_before);
            let now = self.now;
            self.probes.emit_with(now, Layer::Flash, || {
                (
                    None,
                    None,
                    ProbeEvent::ReadRetry {
                        block: ppa.block,
                        page: ppa.page,
                        rungs,
                        recovered,
                    },
                )
            });
        }
        self.emit_ecc_probe(ppa, &outcome);
        outcome
    }

    /// Discards a range of sectors (TRIM / DISCARD). Applied immediately
    /// at the current device time: cached copies vanish and the mapping
    /// removals are journaled (so, like writes, an uncommitted trim can
    /// be undone by a power fault — the "ghost data" case).
    ///
    /// # Panics
    ///
    /// Panics if the device is not operational.
    pub fn trim(&mut self, lba: Lba, sectors: SectorCount) {
        assert!(self.is_operational(), "trim needs a powered device");
        for i in 0..sectors.get() {
            let l = Lba::new(lba.index() + i);
            self.cache.invalidate(l);
            self.ftl.trim(l);
        }
        self.schedule_work();
    }

    /// Post-recovery verification read of one sector, bypassing the (now
    /// empty) cache. Works on read-only-degraded devices too.
    ///
    /// # Panics
    ///
    /// Panics if the device is not mounted.
    pub fn verify_read(&mut self, lba: Lba) -> VerifiedContent {
        assert!(self.is_mounted(), "verification needs a mounted device");
        match self.ftl.lookup(lba) {
            None => VerifiedContent::Unwritten,
            Some(ppa) => match self.read_media(ppa) {
                ReadOutcome::Ok { data, .. } => VerifiedContent::Written(data),
                ReadOutcome::Uncorrectable => VerifiedContent::Unreadable,
                ReadOutcome::Erased => VerifiedContent::Unwritten,
            },
        }
    }

    /// Emits the ECC outcome of a read the device just performed (repair
    /// and failure events only; clean reads stay silent).
    fn emit_ecc_probe(&mut self, ppa: pfault_flash::Ppa, outcome: &ReadOutcome) {
        let now = self.now;
        match *outcome {
            ReadOutcome::Ok { repaired, .. } if repaired > 0 => {
                self.probes.emit_with(now, Layer::Flash, || {
                    (
                        None,
                        None,
                        ProbeEvent::EccCorrected {
                            block: ppa.block,
                            page: ppa.page,
                            bits: u64::from(repaired),
                        },
                    )
                });
            }
            ReadOutcome::Uncorrectable => {
                self.probes.emit_with(now, Layer::Flash, || {
                    (
                        None,
                        None,
                        ProbeEvent::EccUncorrectable {
                            block: ppa.block,
                            page: ppa.page,
                        },
                    )
                });
            }
            _ => {}
        }
    }

    /// Scans every mapped sector and reports how many are unreadable — a
    /// SMART-style media self-test (the post-mortem a cautious operator
    /// runs after an outage). Reads go through the read-retry ladder, so
    /// a drive with retries configured scrubs cleaner than a bare read
    /// pass would suggest. Works on read-only-degraded devices.
    ///
    /// # Errors
    ///
    /// [`DeviceError::NotMounted`] when the device is dead, bricked, or
    /// browning out ([`DeviceError::Bricked`] for the bricked case) —
    /// instead of the panic this method used to raise.
    pub fn scrub(&mut self) -> Result<ScrubReport, DeviceError> {
        if self.state == PowerState::Bricked {
            return Err(DeviceError::Bricked {
                attempts: self.mount_attempts,
            });
        }
        if !self.is_mounted() {
            return Err(DeviceError::NotMounted);
        }
        let mapped: Vec<(Lba, pfault_flash::Ppa)> = {
            let mut v: Vec<_> = self.ftl.iter_mapped().collect();
            v.sort_by_key(|(l, _)| *l);
            v
        };
        let mut report = ScrubReport::default();
        for (_, ppa) in mapped {
            report.scanned += 1;
            match self.read_media(ppa) {
                ReadOutcome::Ok { data, .. } => {
                    if !data.is_intact() {
                        report.garbled += 1;
                    }
                }
                ReadOutcome::Uncorrectable => report.unreadable += 1,
                ReadOutcome::Erased => report.unreadable += 1,
            }
        }
        Ok(report)
    }

    /// Drains all dirty state to flash and commits the journal, taking
    /// simulated time (used to reach a clean baseline between campaign
    /// phases).
    pub fn quiesce(&mut self) {
        // Force flush eligibility by advancing until nothing dirty remains.
        let mut guard = 0;
        while self.cache.dirty_sectors() > 0
            || !self.pipeline.is_empty()
            || self.control.is_some()
            || !self.direct_queue.is_empty()
        {
            let step = self
                .next_event()
                .unwrap_or(self.now + self.config.cache.flush_delay);
            self.advance_to(step.max(self.now + SimDuration::from_micros(100)));
            guard += 1;
            assert!(guard < 1_000_000, "quiesce failed to converge");
        }
        self.ftl.close_open_extent();
        if let Ok(Some(op)) = self.ftl.begin_journal_commit() {
            let data = PageData::from_tag(mix64(0x4A4E_4C00, op.batch.id));
            self.array
                .program(op.page, data, Oob::journal(op.batch.id, op.seq))
                .expect("journal page reserved in order");
            self.ftl.finish_journal_commit(op, &mut self.durable);
            self.stats.commits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::vendor::VendorPreset;
    use pfault_power::FaultInjector;

    fn small_ssd() -> Ssd {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        Ssd::new(config, DetRng::new(7))
    }

    fn drive_until_acked(ssd: &mut Ssd, deadline_ms: u64) -> Vec<Completion> {
        ssd.advance_to(SimTime::from_millis(deadline_ms));
        ssd.drain_completions()
    }

    #[test]
    fn write_is_acked_from_cache_quickly() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(8),
            0xAA,
        ));
        let comps = drive_until_acked(&mut ssd, 5);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].acked());
        // ACK is front-end latency, far faster than a NAND program chain.
        assert!(comps[0].time < SimTime::from_millis(1));
        assert_eq!(ssd.dirty_cache_sectors(), 8);
    }

    #[test]
    fn flush_eventually_drains_cache() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            0xBB,
        ));
        ssd.advance_to(SimTime::from_millis(2_000));
        assert_eq!(ssd.dirty_cache_sectors(), 0, "flusher should have drained");
        assert!(ssd.flash_stats().programs >= 4);
    }

    #[test]
    fn read_completes_and_counts_hits() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(5),
            SectorCount::new(2),
            0xCC,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        ssd.drain_completions();
        ssd.submit(HostCommand::read(2, 0, Lba::new(5), SectorCount::new(2)));
        let comps = drive_until_acked(&mut ssd, 10);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].acked());
        assert_eq!(ssd.stats().cache_hits, 2);
    }

    #[test]
    fn submit_to_dead_device_errors_immediately() {
        let mut ssd = small_ssd();
        let injector = FaultInjector::arduino_atx_loaded();
        let timeline = injector.timeline(SimTime::from_millis(1));
        ssd.power_fail(&timeline);
        ssd.submit(HostCommand::write(
            9,
            0,
            Lba::new(0),
            SectorCount::new(1),
            1,
        ));
        let comps = ssd.drain_completions();
        assert!(comps.iter().any(|c| c.request_id == 9 && !c.acked()));
    }

    #[test]
    fn power_fault_loses_acked_dirty_data() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(10),
            SectorCount::new(4),
            0xDD,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        let comps = ssd.drain_completions();
        assert!(comps[0].acked(), "host holds an ACK");
        // Instant cut before the lazy flush window expires.
        let timeline = FaultInjector::transistor().timeline(SimTime::from_millis(2));
        ssd.power_fail(&timeline);
        assert!(ssd.stats().last_fault_dirty_lost > 0, "dirty data died");
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        // The ACKed data is gone: FWA from the Analyzer's point of view.
        assert_eq!(ssd.verify_read(Lba::new(10)), VerifiedContent::Unwritten);
    }

    #[test]
    fn quiesced_data_survives_power_fault() {
        let mut ssd = small_ssd();
        let cmd = HostCommand::write(1, 0, Lba::new(20), SectorCount::new(4), 0xEE);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        ssd.quiesce();
        let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for i in 0..4 {
            let lba = Lba::new(20 + i);
            match ssd.verify_read(lba) {
                VerifiedContent::Written(data) => {
                    assert_eq!(data, cmd.sector_content(i), "content mismatch at {lba}");
                }
                other => panic!("sector {lba} should survive, got {other:?}"),
            }
        }
    }

    #[test]
    fn supercap_saves_dirty_data() {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.supercap = true;
        let mut ssd = Ssd::new(config, DetRng::new(7));
        let cmd = HostCommand::write(1, 0, Lba::new(30), SectorCount::new(4), 0xFF);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        assert!(ssd.dirty_cache_sectors() > 0);
        let timeline = FaultInjector::arduino_atx_loaded().timeline(SimTime::from_millis(2));
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for i in 0..4 {
            match ssd.verify_read(Lba::new(30 + i)) {
                VerifiedContent::Written(data) => assert_eq!(data, cmd.sector_content(i)),
                other => panic!("supercap should save sector {i}, got {other:?}"),
            }
        }
    }

    #[test]
    fn disabled_cache_acks_only_after_program() {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.cache = CacheConfig::disabled();
        let mut ssd = Ssd::new(config, DetRng::new(7));
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            0x11,
        ));
        ssd.advance_to(SimTime::from_micros(250));
        assert!(
            ssd.drain_completions().is_empty(),
            "no early ACK without cache"
        );
        ssd.advance_to(SimTime::from_millis(50));
        let comps = ssd.drain_completions();
        assert_eq!(comps.len(), 1);
        assert!(comps[0].acked());
        assert_eq!(ssd.dirty_cache_sectors(), 0);
    }

    #[test]
    fn disabled_cache_still_vulnerable_via_volatile_map() {
        // §IV-A: failures persist with the internal cache disabled —
        // because the mapping journal is still volatile.
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.cache = CacheConfig::disabled();
        let mut ssd = Ssd::new(config, DetRng::new(7));
        let cmd = HostCommand::write(1, 0, Lba::new(40), SectorCount::new(4), 0x22);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(50));
        assert!(ssd.drain_completions()[0].acked());
        assert!(ssd.volatile_map_sectors() > 0, "mapping still volatile");
        let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        // Mapping was never committed: data lost despite the ACK.
        assert_eq!(ssd.verify_read(Lba::new(40)), VerifiedContent::Unwritten);
    }

    #[test]
    fn transistor_cut_interrupts_in_flight_program() {
        let mut ssd = small_ssd();
        // Saturate with writes so a program is in flight, then cut
        // instantly.
        for i in 0..64 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(8),
                i,
            ));
        }
        // Cut while dirty data is still accumulating in the cache.
        ssd.advance_to(SimTime::from_millis(3));
        assert!(
            ssd.dirty_cache_sectors() > 0,
            "cache should hold dirty data"
        );
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        assert!(
            ssd.flash_stats().interrupted_programs + ssd.flash_stats().interrupted_erases >= 1
                || ssd.stats().last_fault_dirty_lost > 0,
            "an instant cut mid-workload must leave damage"
        );
    }

    #[test]
    fn iops_saturates_near_config_ceiling() {
        let mut ssd = small_ssd();
        // Submit far more 4 KiB writes than one second of front-end
        // capacity; count ACKs within the first simulated second.
        for i in 0..20_000u64 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i % 500 * 8),
                SectorCount::new(1),
                i,
            ));
        }
        ssd.advance_to(SimTime::from_secs(1));
        let acked = ssd
            .drain_completions()
            .iter()
            .filter(|c| c.acked() && c.time <= SimTime::from_secs(1))
            .count() as f64;
        let ceiling = ssd.config().iops_ceiling();
        assert!(
            acked <= ceiling * 1.05,
            "acked {acked} must not exceed ceiling {ceiling}"
        );
        assert!(
            acked >= ceiling * 0.5,
            "acked {acked} unreasonably below ceiling {ceiling}"
        );
    }

    #[test]
    fn checkpoints_fire_and_recovery_uses_them() {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.ftl.checkpoint_every_batches = 4;
        let mut ssd = Ssd::new(config, DetRng::new(17));
        // Enough distinct writes for several commits and checkpoints.
        let mut cmds = Vec::new();
        for i in 0..40u64 {
            let cmd = HostCommand::write(i, 0, Lba::new(i * 16), SectorCount::new(2), i + 1);
            cmds.push(cmd);
            ssd.submit(cmd);
            ssd.advance_to(ssd.now() + SimDuration::from_millis(5));
        }
        ssd.quiesce();
        assert!(ssd.stats().checkpoints > 0, "checkpoints must have fired");
        let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for cmd in &cmds {
            for i in 0..2 {
                match ssd.verify_read(Lba::new(cmd.lba.index() + i)) {
                    VerifiedContent::Written(d) => assert_eq!(d, cmd.sector_content(i)),
                    other => panic!("request {} sector {i} lost: {other:?}", cmd.request_id),
                }
            }
        }
    }

    #[test]
    fn trim_discards_data_durably_after_commit() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(60),
            SectorCount::new(4),
            0x77,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        ssd.drain_completions();
        ssd.quiesce();
        ssd.trim(Lba::new(60), SectorCount::new(4));
        ssd.quiesce(); // commits the trim entries
        let timeline = FaultInjector::arduino_atx_loaded().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for i in 0..4 {
            assert_eq!(
                ssd.verify_read(Lba::new(60 + i)),
                VerifiedContent::Unwritten,
                "trimmed sector {i} must stay gone"
            );
        }
    }

    #[test]
    fn uncommitted_trim_can_resurrect_ghost_data() {
        let mut ssd = small_ssd();
        let cmd = HostCommand::write(1, 0, Lba::new(70), SectorCount::new(2), 0x88);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        ssd.quiesce(); // data durable
        ssd.trim(Lba::new(70), SectorCount::new(2));
        // Instant cut before the trim journal entry commits.
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        // The trim was volatile: the old data reappears.
        for i in 0..2 {
            match ssd.verify_read(Lba::new(70 + i)) {
                VerifiedContent::Written(d) => assert_eq!(d, cmd.sector_content(i)),
                other => panic!("ghost data should be back, got {other:?}"),
            }
        }
    }

    #[test]
    fn flush_barrier_makes_acked_data_survive_instant_cut() {
        let mut ssd = small_ssd();
        let cmd = HostCommand::write(1, 0, Lba::new(10), SectorCount::new(8), 0xF1);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        assert!(ssd.drain_completions()[0].acked());
        ssd.submit_flush(2, 0);
        // Drive until the flush completes.
        let mut guard = 0;
        loop {
            let comps = ssd.drain_completions();
            if comps.iter().any(|c| c.request_id == 2 && c.acked()) {
                break;
            }
            let next = ssd
                .next_event()
                .unwrap_or(ssd.now() + SimDuration::from_millis(1));
            ssd.advance_to(next.max(ssd.now() + SimDuration::from_micros(1)));
            guard += 1;
            assert!(guard < 100_000, "flush failed to complete");
        }
        assert!(ssd.stats().flushes_acked > 0);
        // Instant cut right after the flush ACK: everything must survive.
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        for i in 0..8 {
            match ssd.verify_read(Lba::new(10 + i)) {
                VerifiedContent::Written(d) => assert_eq!(d, cmd.sector_content(i)),
                other => panic!("flushed sector {i} lost: {other:?}"),
            }
        }
    }

    #[test]
    fn flush_waits_for_durability() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(64),
            0xF2,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        ssd.drain_completions();
        let before = ssd.now();
        ssd.submit_flush(2, 0);
        // The flush cannot complete instantly: 64 sectors still owe
        // programs plus a journal commit.
        let comps = ssd.drain_completions();
        assert!(!comps.iter().any(|c| c.request_id == 2));
        ssd.advance_to(before + SimDuration::from_millis(100));
        let comps = ssd.drain_completions();
        let flush = comps
            .iter()
            .find(|c| c.request_id == 2)
            .expect("flush done");
        assert!(flush.acked());
        assert!(flush.time > before);
    }

    #[test]
    fn flush_on_dead_device_errors() {
        let mut ssd = small_ssd();
        let timeline = FaultInjector::transistor().timeline(SimTime::from_millis(1));
        ssd.power_fail(&timeline);
        ssd.submit_flush(9, 0);
        assert!(ssd
            .drain_completions()
            .iter()
            .any(|c| c.request_id == 9 && !c.acked()));
    }

    #[test]
    fn shallow_brownout_is_invisible() {
        let mut ssd = small_ssd();
        let cmd = HostCommand::write(1, 0, Lba::new(80), SectorCount::new(4), 0x99);
        ssd.submit(cmd);
        ssd.advance_to(SimTime::from_millis(1));
        assert!(ssd.drain_completions()[0].acked());
        let event = pfault_power::BrownoutEvent::shallow(ssd.now());
        let severity = ssd.apply_brownout(&event);
        assert_eq!(severity, pfault_power::BrownoutSeverity::Harmless);
        assert!(ssd.is_operational());
        ssd.quiesce();
        for i in 0..4 {
            assert!(matches!(
                ssd.verify_read(Lba::new(80 + i)),
                VerifiedContent::Written(_)
            ));
        }
    }

    #[test]
    fn link_drop_brownout_errors_in_flight_but_keeps_state() {
        let mut ssd = small_ssd();
        // An ACKed write sits dirty in the cache…
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(90),
            SectorCount::new(4),
            0xA1,
        ));
        ssd.advance_to(SimTime::from_millis(1));
        assert!(ssd.drain_completions()[0].acked());
        // …and a large command is still in the front end when the link
        // drops (a steep sag reaches 4.5 V before its ~1.2 ms service).
        ssd.submit(HostCommand::write(
            2,
            0,
            Lba::new(94),
            SectorCount::new(128),
            0xA2,
        ));
        let mut event = pfault_power::BrownoutEvent::shallow(ssd.now());
        event.floor = pfault_power::Millivolts::new(4495); // link-drop depth
        event.sag = SimDuration::from_micros(500);
        event.recovery = SimDuration::from_micros(500);
        let severity = ssd.apply_brownout(&event);
        assert_eq!(severity, pfault_power::BrownoutSeverity::LinkDrop);
        let comps = ssd.drain_completions();
        assert!(comps.iter().any(|c| c.request_id == 2 && !c.acked()));
        assert!(ssd.is_operational(), "controller rode the sag out");
        // The earlier write survives (no volatile state was lost).
        ssd.quiesce();
        assert!(matches!(
            ssd.verify_read(Lba::new(90)),
            VerifiedContent::Written(_)
        ));
    }

    #[test]
    fn deep_brownout_resets_controller_and_loses_volatile_state() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(95),
            SectorCount::new(4),
            0xB1,
        ));
        ssd.advance_to(SimTime::from_micros(300));
        assert!(ssd.drain_completions()[0].acked());
        let event = pfault_power::BrownoutEvent::deep(ssd.now());
        let severity = ssd.apply_brownout(&event);
        assert_eq!(severity, pfault_power::BrownoutSeverity::ControllerReset);
        assert!(ssd.is_operational(), "power came back by itself");
        // The freshly-ACKed write was still cached: gone.
        assert_eq!(ssd.verify_read(Lba::new(95)), VerifiedContent::Unwritten);
    }

    #[test]
    fn scrub_is_clean_on_a_healthy_device_and_dirty_after_eol_fault() {
        let mut ssd = small_ssd();
        for i in 0..8u64 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(4),
                i + 1,
            ));
        }
        ssd.advance_to(SimTime::from_millis(5));
        ssd.drain_completions();
        ssd.quiesce();
        let report = ssd.scrub().expect("healthy device scrubs");
        assert_eq!(report.scanned, 32);
        assert!(report.is_clean(), "{report:?}");

        // Now an end-of-life device: faults leave unreadable pages behind.
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.baseline_wear = 2_900;
        let mut old = Ssd::new(config, DetRng::new(9));
        for i in 0..8u64 {
            old.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(4),
                i + 1,
            ));
        }
        old.advance_to(SimTime::from_millis(5));
        old.drain_completions();
        old.quiesce();
        let timeline = FaultInjector::transistor().timeline(old.now());
        old.power_fail(&timeline);
        old.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        let report = old.scrub().expect("recovered device scrubs");
        assert!(
            report.unreadable > 0,
            "worn media after a fault must show unreadable sectors: {report:?}"
        );
    }

    #[test]
    fn gc_reclaims_space_under_churn() {
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(12, 16);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.ftl.gc_low_water_blocks = 4;
        config.cache.flush_delay = SimDuration::ZERO;
        let mut ssd = Ssd::new(config, DetRng::new(9));
        // Overwrite a small working set repeatedly: forces GC.
        for round in 0..40u64 {
            for lba in 0..8u64 {
                ssd.submit(HostCommand::write(
                    round * 8 + lba,
                    0,
                    Lba::new(lba),
                    SectorCount::new(1),
                    round * 100 + lba,
                ));
            }
            ssd.advance_to(ssd.now() + SimDuration::from_millis(50));
        }
        ssd.advance_to(ssd.now() + SimDuration::from_secs(2));
        assert!(ssd.stats().gc_collections > 0, "GC must have run");
        // Device still works after GC.
        ssd.submit(HostCommand::write(
            9_999,
            0,
            Lba::new(3),
            SectorCount::new(1),
            1,
        ));
        ssd.advance_to(ssd.now() + SimDuration::from_millis(100));
        assert!(ssd.drain_completions().iter().any(|c| c.acked()));
    }

    #[test]
    fn site_census_is_deterministic_across_same_seed_runs() {
        let census = |_: u32| {
            let mut ssd = small_ssd();
            ssd.enable_site_recording();
            for i in 0..4u64 {
                ssd.submit(HostCommand::write(
                    i,
                    0,
                    Lba::new(i * 16),
                    SectorCount::new(4),
                    i + 1,
                ));
            }
            ssd.advance_to(SimTime::from_secs(2));
            ssd.site_spans().to_vec()
        };
        let a = census(0);
        let b = census(1);
        assert!(!a.is_empty(), "census must observe program sites");
        assert_eq!(a, b, "same seed must reproduce the same occurrence stream");
        assert!(a
            .iter()
            .any(|s| s.site == crate::sites::FaultSite::CacheFlushProgram));
        assert!(a
            .iter()
            .any(|s| s.site == crate::sites::FaultSite::JournalCommitProgram));
    }

    #[test]
    fn recording_disabled_by_default_costs_nothing() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            1,
        ));
        ssd.advance_to(SimTime::from_secs(1));
        assert!(ssd.site_spans().is_empty());
    }

    #[test]
    fn op_ending_exactly_at_threshold_completes() {
        // Satellite: half-open boundary windows. Census the single cache
        // flush program of a one-sector write, then replay with the cut
        // placed exactly at the span's end (op completes — left-closed
        // window) and strictly inside it (op is interrupted).
        let run = |cut: Option<SimTime>| {
            let mut ssd = small_ssd();
            ssd.enable_site_recording();
            ssd.submit(HostCommand::write(
                1,
                0,
                Lba::new(5),
                SectorCount::new(1),
                0x5A,
            ));
            match cut {
                None => {
                    ssd.advance_to(SimTime::from_secs(1));
                }
                Some(t) => {
                    ssd.power_fail(&FaultTimeline::at_instant(t));
                }
            }
            ssd
        };
        let census = run(None);
        let span = census
            .site_spans()
            .iter()
            .find(|s| s.site == crate::sites::FaultSite::CacheFlushProgram)
            .copied()
            .expect("one flush program must occur");
        assert!(span.end > span.start);

        // Cut exactly at the completion instant: the program finishes.
        let at_end = run(Some(span.end));
        assert_eq!(
            at_end.flash_stats().interrupted_programs,
            0,
            "an op ending exactly at the threshold must complete"
        );
        // Cut strictly inside the span: the program is torn.
        let mid = span.start + SimDuration::from_micros((span.end - span.start).as_micros() / 2);
        let torn = run(Some(mid));
        assert_eq!(
            torn.flash_stats().interrupted_programs,
            1,
            "a cut strictly inside the span must interrupt the program"
        );
    }

    #[test]
    fn cut_during_recovery_resumes_from_stage_boundary() {
        // Tentpole acceptance: a cut inside the mapping-rebuild stage
        // leaves a resumable session; the next mount skips the already
        // completed journal scan and rebuilds the same mapping the
        // uninterrupted twin gets.
        let prepare = |_: u32| {
            let mut ssd = small_ssd();
            ssd.enable_site_recording();
            for i in 0..6u64 {
                ssd.submit(HostCommand::write(
                    i,
                    0,
                    Lba::new(i * 8),
                    SectorCount::new(4),
                    i + 1,
                ));
            }
            ssd.advance_to(SimTime::from_millis(400));
            let timeline = FaultInjector::transistor().timeline(ssd.now());
            ssd.power_fail(&timeline);
            (ssd, timeline)
        };
        // Census twin: learn where the rebuild stage sits in time.
        let (mut census, tl) = prepare(0);
        let at = tl.discharged + SimDuration::from_secs(1);
        census.power_on_recover(at).expect("mount succeeds");
        let rebuild = *census
            .site_spans()
            .iter()
            .find(|s| s.site == crate::sites::FaultSite::MappingReplay)
            .expect("rebuild span recorded");
        assert!(rebuild.end > rebuild.start, "rebuild takes simulated time");
        let mid = rebuild.start
            + SimDuration::from_micros((rebuild.end - rebuild.start).as_micros() / 2);

        let (mut ssd, _) = prepare(1);
        let err = ssd
            .power_on_recover_interruptible(at, &pfault_power::FaultTimeline::at_instant(mid))
            .expect_err("cut lands inside the rebuild stage");
        assert_eq!(
            err,
            DeviceError::RecoveryInterrupted {
                stage: 2,
                attempt: 1
            }
        );
        assert!(ssd.has_pending_recovery());
        assert!(!ssd.is_mounted());

        // The second mount resumes after the completed journal scan —
        // it does not silently restart the pipeline.
        let report = ssd
            .power_on_recover(ssd.now() + SimDuration::from_secs(1))
            .expect("resumed mount succeeds");
        assert!(report.resumed, "second mount must resume the session");
        assert_eq!(report.stages_skipped, 1, "journal scan was checkpointed");
        assert!(!ssd.has_pending_recovery());
        assert!(ssd.is_operational());
        let scans = ssd
            .site_spans()
            .iter()
            .filter(|s| s.site == crate::sites::FaultSite::RecoveryJournalScan)
            .count();
        assert_eq!(scans, 1, "the resumed mount must not re-run stage 1");
        assert_eq!(
            ssd.mapped(),
            census.mapped(),
            "resumed recovery must rebuild the same mapping as the twin"
        );
    }

    #[test]
    fn retirement_exhaustion_degrades_to_read_only() {
        // End-of-life media plus a fault leaves unreadable pages; with
        // verify + retirement on and no spare blocks, recovery retires
        // past the spare pool and mounts the device read-only.
        let mut config = VendorPreset::SsdA.config();
        config.geometry = pfault_flash::FlashGeometry::new(512, 64);
        config.ftl = pfault_ftl::FtlConfig::for_geometry(config.geometry);
        config.baseline_wear = 2_900;
        config.recovery_verify = true;
        config.ftl.retire_bad_blocks = true;
        config.ftl.spare_blocks = 0;
        let mut ssd = Ssd::new(config, DetRng::new(9));
        for i in 0..8u64 {
            ssd.submit(HostCommand::write(
                i,
                0,
                Lba::new(i * 8),
                SectorCount::new(4),
                i + 1,
            ));
        }
        ssd.advance_to(SimTime::from_millis(5));
        ssd.drain_completions();
        ssd.quiesce();
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        let report = ssd
            .power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("mount succeeds in degraded mode");
        assert!(
            report.unreadable_pages > 0,
            "worn media after a fault must fail verification: {report:?}"
        );
        assert!(report.blocks_retired > 0, "{report:?}");
        assert!(report.read_only, "{report:?}");
        assert!(ssd.is_read_only());
        assert!(!ssd.is_operational());

        // Writes are refused with a distinct completion and tallied.
        ssd.submit(HostCommand::write(
            100,
            0,
            Lba::new(0),
            SectorCount::new(1),
            42,
        ));
        let rejected = ssd.drain_completions();
        assert!(
            rejected
                .iter()
                .any(|c| c.kind == CompletionKind::ReadOnlyRejected),
            "{rejected:?}"
        );
        assert!(ssd.stats().read_only_rejections > 0);

        // Reads still serve: the device is degraded, not dead.
        ssd.submit(HostCommand::read(101, 0, Lba::new(0), SectorCount::new(1)));
        ssd.advance_to(ssd.now() + SimDuration::from_millis(5));
        let reads = ssd.drain_completions();
        assert!(
            reads.iter().any(Completion::acked),
            "reads must still be served read-only: {reads:?}"
        );
        assert!(ssd.scrub().is_ok(), "scrub works on a read-only device");
    }

    #[test]
    fn mapping_replay_site_recorded_on_recovery() {
        let mut ssd = small_ssd();
        ssd.enable_site_recording();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            1,
        ));
        ssd.advance_to(SimTime::from_millis(10));
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        let replay: Vec<_> = ssd
            .site_spans()
            .iter()
            .filter(|s| s.site == crate::sites::FaultSite::MappingReplay)
            .collect();
        assert_eq!(replay.len(), 1);
        assert!(
            replay[0].end > replay[0].start,
            "the rebuild stage occupies a real window on simulated time"
        );
    }

    #[test]
    fn probes_narrate_fault_and_recovery() {
        let run = || {
            let mut ssd = small_ssd();
            ssd.enable_probes();
            for i in 0..4u64 {
                ssd.submit(HostCommand::write(
                    i,
                    0,
                    Lba::new(i * 8),
                    SectorCount::new(4),
                    i + 1,
                ));
            }
            ssd.advance_to(SimTime::from_millis(200));
            let timeline = FaultInjector::transistor().timeline(ssd.now());
            ssd.power_fail(&timeline);
            let report = ssd
                .power_on_recover(timeline.discharged + SimDuration::from_secs(1))
                .expect("recovers");
            (ssd, report)
        };
        let (ssd, report) = run();
        let records = ssd.probe_records();
        assert!(!records.is_empty(), "probes must capture the trial");
        let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count();
        assert!(count("cache.insert") >= 4, "one insert per host write");
        assert_eq!(count("power.cut"), 1);
        assert_eq!(count("power.volatile-lost"), 1);
        assert!(
            count("recovery.step") >= 3,
            "mount attempt + replay + map rebuild at minimum"
        );
        assert_eq!(report.mount_attempt, 1);
        assert!(report.map_rebuild_entries > 0, "replay rebuilt the map");
        // Sequence numbers are dense and ordered — the JSONL contract.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        // Determinism: a second identical run produces the same stream.
        let (ssd2, _) = run();
        assert_eq!(records, ssd2.probe_records());
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let mut ssd = small_ssd();
        ssd.submit(HostCommand::write(
            1,
            0,
            Lba::new(0),
            SectorCount::new(4),
            1,
        ));
        ssd.advance_to(SimTime::from_millis(10));
        let timeline = FaultInjector::transistor().timeline(ssd.now());
        ssd.power_fail(&timeline);
        ssd.power_on_recover(timeline.discharged + SimDuration::from_secs(1))
            .expect("recovers");
        assert!(ssd.probe_records().is_empty());
    }
}
