//! Vendor presets — the paper's Table I drives.
//!
//! | SSD | Size   | Interface | Cache | ECC      | Cell | Year |
//! |-----|--------|-----------|-------|----------|------|------|
//! | A   | 256 GB | SATA      | yes   | yes      | MLC  | 2013 |
//! | B   | 120 GB | SATA      | yes   | LDPC     | TLC  | 2015 |
//! | C   | 120 GB | SATA      | yes   | yes      | MLC  | n/a  |
//!
//! The physical geometries are sized to the advertised capacities; block
//! state materialises lazily, so memory use scales with data written, not
//! with capacity.

use serde::{Deserialize, Serialize};

use pfault_flash::ecc::EccScheme;
use pfault_flash::geometry::FlashGeometry;
use pfault_flash::CellKind;
use pfault_ftl::FtlConfig;
use pfault_sim::storage::GIB;

use crate::config::SsdConfig;

/// The three drive models of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VendorPreset {
    /// SSD A: 256 GB MLC (2013), BCH-class ECC.
    SsdA,
    /// SSD B: 120 GB TLC (2015), LDPC ECC.
    SsdB,
    /// SSD C: 120 GB MLC, BCH-class ECC.
    SsdC,
}

impl VendorPreset {
    /// All Table I presets, in order.
    pub fn all() -> [VendorPreset; 3] {
        [VendorPreset::SsdA, VendorPreset::SsdB, VendorPreset::SsdC]
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            VendorPreset::SsdA => "SSD A (256GB MLC 2013)",
            VendorPreset::SsdB => "SSD B (120GB TLC LDPC 2015)",
            VendorPreset::SsdC => "SSD C (120GB MLC)",
        }
    }

    /// Advertised capacity in bytes.
    pub fn capacity_bytes(self) -> u64 {
        match self {
            VendorPreset::SsdA => 256 * GIB,
            VendorPreset::SsdB | VendorPreset::SsdC => 120 * GIB,
        }
    }

    /// Cell technology.
    pub fn cell_kind(self) -> CellKind {
        match self {
            VendorPreset::SsdA | VendorPreset::SsdC => CellKind::Mlc,
            VendorPreset::SsdB => CellKind::Tlc,
        }
    }

    /// ECC scheme.
    pub fn ecc(self) -> EccScheme {
        match self {
            VendorPreset::SsdA => EccScheme::bch_mlc(),
            VendorPreset::SsdB => EccScheme::ldpc_tlc(),
            // SSD C is an older controller: slightly weaker BCH.
            VendorPreset::SsdC => EccScheme::Bch { t: 24 },
        }
    }

    /// Full device configuration for this preset.
    pub fn config(self) -> SsdConfig {
        // 256 pages per block of 4 KiB → 1 MiB blocks; enough blocks to
        // exceed the advertised capacity (with spare area).
        let pages_per_block = 256;
        let block_bytes = pages_per_block * 4096;
        let blocks = (self.capacity_bytes() / block_bytes) * 108 / 100; // ~8 % OP
        let geometry = FlashGeometry::new(blocks, pages_per_block);
        let mut config = SsdConfig::consumer(geometry, self.cell_kind(), self.ecc());
        config.ftl = FtlConfig::for_geometry(geometry);
        if self == VendorPreset::SsdB {
            // TLC pipeline is slower per page; more channels compensate.
            config.channels = 240;
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_properties() {
        assert_eq!(VendorPreset::SsdA.cell_kind(), CellKind::Mlc);
        assert_eq!(VendorPreset::SsdB.cell_kind(), CellKind::Tlc);
        assert_eq!(VendorPreset::SsdC.cell_kind(), CellKind::Mlc);
        assert!(matches!(VendorPreset::SsdB.ecc(), EccScheme::Ldpc { .. }));
        assert_eq!(VendorPreset::SsdA.capacity_bytes(), 256 * GIB);
        assert_eq!(VendorPreset::SsdC.capacity_bytes(), 120 * GIB);
    }

    #[test]
    fn configs_validate_and_overprovision() {
        for preset in VendorPreset::all() {
            let c = preset.config();
            c.validate();
            assert!(
                c.geometry.capacity_bytes() > preset.capacity_bytes(),
                "{preset:?} must have spare blocks"
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            VendorPreset::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
