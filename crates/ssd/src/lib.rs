//! Device-level SSD model.
//!
//! [`device::Ssd`] assembles the substrates into the drive the platform
//! injects faults into:
//!
//! * a serialized **controller front end** whose per-command overhead sets
//!   the random-write IOPS ceiling (§IV-F observes saturation near
//!   6 900 IOPS);
//! * a volatile **DRAM write-back cache** ([`cache::WriteCache`]) — writes
//!   are ACKed on cache insert, flushed to NAND later (the FWA mechanism,
//!   §III-B), with a disable knob (§IV-A's disabled-cache experiment) and
//!   an optional supercapacitor (power-loss protection, §I);
//! * a **program pipeline** modelling channel-parallel NAND programs, with
//!   in-flight operations interruptible by the rail collapse;
//! * the **FTL** with its volatile mapping journal (`pfault-ftl`);
//! * a **power-fail state machine**: on a fault the host link dies at
//!   4.5 V, the oblivious firmware keeps flushing until 4.0 V, anything in
//!   flight at 4.0 V is interrupted, and all volatile state evaporates.
//!   [`device::Ssd::power_on_recover`] then replays the durable journal.
//!
//! Vendor presets ([`vendor`]) mirror the paper's Table I drives.
//!
//! # Example
//!
//! ```
//! use pfault_ssd::device::{HostCommand, Ssd};
//! use pfault_ssd::vendor::VendorPreset;
//! use pfault_sim::{DetRng, Lba, SectorCount, SimTime};
//!
//! let mut ssd = Ssd::new(VendorPreset::SsdA.config(), DetRng::new(1));
//! ssd.submit(HostCommand::write(1, 0, Lba::new(0), SectorCount::new(8), 0xFEED));
//! ssd.advance_to(SimTime::from_millis(10));
//! let completions = ssd.drain_completions();
//! assert_eq!(completions.len(), 1);
//! assert!(completions[0].acked());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The lint gate (`make lint-core`) denies unwrap() in library code;
// tests may unwrap freely.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cache;
pub mod completion;
pub mod config;
pub mod device;
pub mod sites;
pub mod snapshot;
pub mod vendor;

pub use completion::{Completion, CompletionKind};
pub use config::{CacheConfig, SsdConfig};
pub use device::{DeviceError, HostCommand, RecoveryReport, Ssd, VerifiedContent};
pub use sites::{FaultSite, SiteLog, SiteSpan};
pub use snapshot::DeviceImage;
pub use vendor::VendorPreset;
