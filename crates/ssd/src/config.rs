//! SSD device configuration.

use serde::{Deserialize, Serialize};

use pfault_flash::ecc::EccScheme;
use pfault_flash::geometry::FlashGeometry;
use pfault_flash::CellKind;
use pfault_ftl::FtlConfig;
use pfault_sim::SimDuration;

/// Nominal 5 V rail the device is powered from.
pub const NOMINAL_RAIL: pfault_power::Millivolts = pfault_power::Millivolts::new(5000);

/// DRAM write-back cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Whether the write-back cache is enabled (§IV-A tests both).
    pub enabled: bool,
    /// Cache capacity in 4 KiB sectors.
    pub capacity_sectors: u64,
    /// How long a dirty entry may age before the flusher picks it up
    /// (absent cache pressure).
    pub flush_delay: SimDuration,
    /// Flush immediately once dirty occupancy exceeds this fraction.
    pub pressure_watermark: f64,
}

impl CacheConfig {
    /// A consumer-class default: an 8 MiB dirty budget and a 2 ms lazy
    /// flush timer. The timer, not cache pressure, governs flushing in
    /// steady state, so the dirty population scales with the write rate —
    /// which is what makes the Fig 5 failure counts track the write
    /// fraction.
    pub fn consumer_default() -> Self {
        CacheConfig {
            enabled: true,
            capacity_sectors: 2048,
            flush_delay: SimDuration::from_millis(2),
            pressure_watermark: 0.9,
        }
    }

    /// The same cache, disabled (writes go straight to NAND).
    pub fn disabled() -> Self {
        CacheConfig {
            enabled: false,
            ..CacheConfig::consumer_default()
        }
    }
}

/// Full device configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Physical array geometry.
    pub geometry: FlashGeometry,
    /// Cell technology (Table I: MLC or TLC).
    pub cell_kind: CellKind,
    /// ECC scheme (Table I: BCH-class, or LDPC for SSD B).
    pub ecc: EccScheme,
    /// Write-back cache.
    pub cache: CacheConfig,
    /// Supercapacitor-backed power-loss protection: on undervoltage the
    /// firmware panic-flushes cache and journal from stored energy.
    pub supercap: bool,
    /// Translation-layer tunables.
    pub ftl: FtlConfig,
    /// Controller per-command overhead; its reciprocal is the small-IO
    /// IOPS ceiling (≈145 µs → ≈6 900 IOPS, §IV-F).
    pub command_overhead: SimDuration,
    /// DMA transfer cost per 4 KiB sector through the front end.
    pub per_sector_transfer: SimDuration,
    /// Channel-level program parallelism: aggregate program throughput is
    /// `channels / page_program_time`.
    pub channels: u32,
    /// Concurrent program operations in flight (die-level lanes). Each
    /// lane's effective latency is `page_program_time * lanes / channels`;
    /// everything in flight when the rail collapses is interrupted.
    pub program_lanes: u32,
    /// Flash read latency (array + transfer) for cache misses.
    pub read_latency: SimDuration,
    /// Block-layer segment limit: larger host requests split into
    /// sub-requests of at most this many sectors.
    pub max_segment_sectors: u64,
    /// Program/erase cycles the device has already served (end-of-life
    /// studies): every block starts with this wear.
    pub baseline_wear: u32,
    /// Probability that one post-fault mount (recovery boot) fails and
    /// the host must power-cycle and retry. The paper observed drives
    /// that needed several cycles — and one that never came back.
    pub mount_failure_rate: f64,
    /// Consecutive failed mounts after which the device is permanently
    /// bricked — unless the mapping was already rebuilt, in which case it
    /// degrades to read-only mode instead.
    pub mount_retry_limit: u32,
    /// Run the dirty-page-verify recovery stage: after the mapping
    /// rebuild the firmware re-reads every mapped page (through the
    /// read-retry ladder) and nominates unreadable ones for bad-block
    /// retirement. Off by default — the fault-space sweeper's strict
    /// mapping oracle assumes recovery performs no extra work.
    pub recovery_verify: bool,
    /// Shifted-threshold re-reads the controller attempts after an
    /// uncorrectable nominal read before giving up (the ECC read-retry
    /// ladder). `0` disables the ladder: every read costs exactly one
    /// array access, as before.
    pub read_retry_limit: u32,
}

impl SsdConfig {
    /// A baseline consumer SATA drive over `geometry`.
    pub fn consumer(geometry: FlashGeometry, cell_kind: CellKind, ecc: EccScheme) -> Self {
        SsdConfig {
            geometry,
            cell_kind,
            ecc,
            cache: CacheConfig::consumer_default(),
            supercap: false,
            ftl: FtlConfig::for_geometry(geometry),
            command_overhead: SimDuration::from_micros(137),
            per_sector_transfer: SimDuration::from_micros(8),
            channels: 128,
            program_lanes: 8,
            read_latency: SimDuration::from_micros(90),
            max_segment_sectors: 128,
            baseline_wear: 0,
            mount_failure_rate: 0.0,
            mount_retry_limit: 3,
            recovery_verify: false,
            read_retry_limit: 0,
        }
    }

    /// Replaces the array geometry, re-deriving the FTL tunables that
    /// scale with it (chainable builder).
    #[must_use]
    pub fn with_geometry(mut self, geometry: FlashGeometry) -> Self {
        self.geometry = geometry;
        self.ftl = FtlConfig::for_geometry(geometry);
        self
    }

    /// Replaces the write-back cache configuration (chainable builder).
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Enables or removes the supercapacitor power-loss protection
    /// (chainable builder).
    #[must_use]
    pub fn with_supercap(mut self, supercap: bool) -> Self {
        self.supercap = supercap;
        self
    }

    /// Sets the post-fault mount failure behaviour (chainable builder).
    #[must_use]
    pub fn with_mount_failures(mut self, rate: f64, retry_limit: u32) -> Self {
        self.mount_failure_rate = rate;
        self.mount_retry_limit = retry_limit;
        self
    }

    /// Starts every block with this many program/erase cycles already
    /// served — the end-of-life studies (chainable builder).
    #[must_use]
    pub fn with_baseline_wear(mut self, cycles: u32) -> Self {
        self.baseline_wear = cycles;
        self
    }

    /// Enables or disables the dirty-page-verify recovery stage
    /// (chainable builder).
    #[must_use]
    pub fn with_recovery_verify(mut self, verify: bool) -> Self {
        self.recovery_verify = verify;
        self
    }

    /// Sets the depth of the ECC read-retry ladder (chainable builder).
    #[must_use]
    pub fn with_read_retries(mut self, retries: u32) -> Self {
        self.read_retry_limit = retries;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate values.
    pub fn validate(&self) {
        assert!(self.channels > 0, "need at least one channel");
        assert!(
            self.program_lanes > 0 && self.program_lanes <= self.channels,
            "lanes must be in 1..=channels"
        );
        assert!(
            self.max_segment_sectors > 0,
            "segment limit must be positive"
        );
        assert!(
            self.cache.capacity_sectors > 0,
            "cache capacity must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.cache.pressure_watermark),
            "pressure watermark must be a fraction"
        );
        assert!(
            (0.0..=1.0).contains(&self.mount_failure_rate),
            "mount failure rate must be a probability"
        );
        assert!(
            self.mount_retry_limit > 0,
            "mount retry limit must be positive"
        );
        self.ftl.validate();
    }

    /// Small-IO IOPS ceiling implied by the front-end overheads
    /// (one 4 KiB command per `command_overhead + per_sector_transfer`).
    pub fn iops_ceiling(&self) -> f64 {
        1_000_000.0
            / (self.command_overhead.as_micros() + self.per_sector_transfer.as_micros()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SsdConfig {
        SsdConfig::consumer(
            FlashGeometry::new(1 << 14, 256),
            CellKind::Mlc,
            EccScheme::bch_mlc(),
        )
    }

    #[test]
    fn consumer_config_is_valid() {
        base().validate();
    }

    #[test]
    fn iops_ceiling_is_near_paper_saturation() {
        let iops = base().iops_ceiling();
        assert!(
            (6_500.0..7_200.0).contains(&iops),
            "ceiling {iops} should be near the paper's ~6 900"
        );
    }

    #[test]
    fn builders_chain_and_rederive_ftl() {
        let geometry = FlashGeometry::new(1 << 12, 128);
        let c = base()
            .with_geometry(geometry)
            .with_cache(CacheConfig::disabled())
            .with_supercap(true)
            .with_mount_failures(0.25, 5)
            .with_baseline_wear(3000);
        assert_eq!(c.geometry, geometry);
        assert_eq!(
            c.ftl,
            FtlConfig::for_geometry(geometry),
            "geometry change must re-derive the FTL tunables"
        );
        assert!(!c.cache.enabled);
        assert!(c.supercap);
        assert!((c.mount_failure_rate - 0.25).abs() < f64::EPSILON);
        assert_eq!(c.mount_retry_limit, 5);
        assert_eq!(c.baseline_wear, 3000);
        c.validate();
    }

    #[test]
    fn cache_disabled_preserves_other_fields() {
        let c = CacheConfig::disabled();
        assert!(!c.enabled);
        assert_eq!(
            c.capacity_sectors,
            CacheConfig::consumer_default().capacity_sectors
        );
    }

    #[test]
    #[should_panic(expected = "need at least one channel")]
    fn zero_channels_rejected() {
        let mut c = base();
        c.channels = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "pressure watermark must be a fraction")]
    fn bad_watermark_rejected() {
        let mut c = base();
        c.cache.pressure_watermark = 2.0;
        c.validate();
    }
}
