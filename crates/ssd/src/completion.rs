//! Host-visible command completions.

use serde::{Deserialize, Serialize};

use pfault_sim::SimTime;

/// How a sub-request ended, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompletionKind {
    /// The device acknowledged the command.
    Acked,
    /// The device vanished (power fault) before acknowledging.
    DeviceError,
    /// The write was refused because recovery degraded the device to
    /// read-only mode (the command was received; the write path is
    /// permanently disabled).
    ReadOnlyRejected,
}

/// One completion event for a sub-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// Parent request identifier.
    pub request_id: u64,
    /// Sub-request index.
    pub sub_id: u32,
    /// When the host observed the completion.
    pub time: SimTime,
    /// Outcome.
    pub kind: CompletionKind,
}

impl Completion {
    /// Whether the command was acknowledged.
    pub fn acked(&self) -> bool {
        matches!(self.kind, CompletionKind::Acked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acked_predicate() {
        let ok = Completion {
            request_id: 1,
            sub_id: 0,
            time: SimTime::ZERO,
            kind: CompletionKind::Acked,
        };
        let err = Completion {
            kind: CompletionKind::DeviceError,
            ..ok
        };
        assert!(ok.acked());
        assert!(!err.acked());
    }
}
