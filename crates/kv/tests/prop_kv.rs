//! Property tests for the application-consistency layer: recovery
//! replay idempotence and fault-free cleanliness, across vendor
//! presets, workload shapes, cut phases, and seeds.

use proptest::prelude::*;

use pfault_power::FaultInjector;
use pfault_sim::{DetRng, SimDuration};
use pfault_ssd::{Ssd, VendorPreset};

use pfault_kv::{run_kv_trial, AppOp, KvOpStream, KvStore, KvTrialConfig, KvWorkloadKind};

fn preset_of(idx: usize) -> VendorPreset {
    [VendorPreset::SsdA, VendorPreset::SsdB, VendorPreset::SsdC][idx % 3]
}

fn kind_of(idx: usize) -> KvWorkloadKind {
    KvWorkloadKind::all()[idx % 3]
}

proptest! {
    // ------------- replay twice must equal replay once -------------

    /// After a power cut and a successful recovery, rebuilding again
    /// from the same durable image must land on the identical memtable
    /// and the identical replay tally: WAL replay keys off durable
    /// sequence numbers, so it has no one-shot side effects to lose.
    #[test]
    fn recovery_replay_is_idempotent(
        seed: u64,
        preset_idx in 0usize..3,
        kind_idx in 0usize..3,
        verify_crc: bool,
        phase in 100u64..900,
    ) {
        let cfg = KvTrialConfig::standard(
            preset_of(preset_idx),
            true,
            verify_crc,
            kind_of(kind_idx),
            phase,
        );
        let rng = DetRng::new(seed);
        let ssd = Ssd::new(cfg.ssd, rng.fork("device"));
        let mut store = KvStore::new(ssd, cfg.kv);
        let mut stream = KvOpStream::new(cfg.workload, cfg.kv.key_space, rng.fork("workload"));
        let injector = FaultInjector::transistor();

        let cut_at = cfg.ops * cfg.cut_phase_permille / 1000;
        let mut timeline = None;
        for i in 0..cfg.ops {
            if store.crashed() {
                break;
            }
            let (arrival, op) = stream.next();
            store.advance_to(arrival);
            if store.crashed() {
                break;
            }
            if timeline.is_none() && i >= cut_at {
                let tl = injector.timeline(store.now() + SimDuration::from_micros(500));
                store.arm_cut(tl);
                timeline = Some(tl);
            }
            match op {
                AppOp::Get { key } => {
                    let _ = store.get(key);
                }
                AppOp::Op(op) => {
                    if store.apply_op(op).is_err() {
                        break;
                    }
                }
            }
        }
        let tl = timeline.unwrap_or_else(|| {
            let tl = injector.timeline(store.now() + SimDuration::from_micros(1));
            store.arm_cut(tl);
            tl
        });
        if !store.crashed() {
            store.advance_to(tl.discharged + SimDuration::from_micros(1));
        }

        // A failed recovery (retry budget exhausted on transient mount
        // faults) has no state to replay — the property is vacuous.
        if let Ok(report) = store.recover(tl.discharged + SimDuration::from_secs(1)) {
            let once = store.memtable().clone();
            let again = store.reload().expect("reload after successful recovery");
            prop_assert_eq!(&once, store.memtable(), "second replay changed the memtable");
            prop_assert_eq!(report.replay, again, "second replay changed the tally");
            let third = store.reload().expect("reload is repeatable");
            prop_assert_eq!(&once, store.memtable());
            prop_assert_eq!(again, third);
        }
    }

    // ------------- no fault in, no divergence out -------------

    /// With no injected outage and no transient mount faults, the
    /// oracle must see a byte-perfect store: zero surfaced errors and
    /// zero silent poison for every preset, workload, and seed.
    #[test]
    fn zero_faults_mean_zero_divergences(
        seed: u64,
        preset_idx in 0usize..3,
        kind_idx in 0usize..3,
        verify_crc: bool,
    ) {
        let mut cfg = KvTrialConfig::standard(
            preset_of(preset_idx),
            true,
            verify_crc,
            kind_of(kind_idx),
            500,
        );
        cfg.inject_fault = false;
        cfg.ssd = cfg.ssd.with_mount_failures(0.0, 3);
        let outcome = run_kv_trial(&cfg, seed);
        prop_assert_eq!(outcome.surfaced, 0, "clean trial surfaced an error");
        prop_assert_eq!(outcome.silent_poison, 0, "clean trial poisoned state");
        prop_assert!(!outcome.failed, "clean trial failed outright");
        prop_assert_eq!(outcome.journal_torn.len(), 0, "clean trial tore a batch");
    }
}
