//! The WAL'd KV store proper.
//!
//! Write path: every `put`/`delete` appends one CRC-framed record to the
//! circular WAL (device-ACK fast — possibly only into the drive's
//! volatile cache), and the operation is acknowledged to the caller only
//! when a **group commit** issues a FLUSH barrier and the device reports
//! it durable. Periodically the store compacts into one of two
//! alternating checkpoint regions: all key sectors, then a seal sector,
//! then a *single* FLUSH for the whole region — the classic
//! single-barrier checkpoint pattern, which leaves a window where the
//! seal's mapping update and the value updates it seals ride the same
//! potentially-torn FTL journal batch.
//!
//! Crash path: [`KvStore::recover`] power-cycles the device with bounded
//! exponential backoff against transient [`DeviceError`]s, then rebuilds
//! state by choosing the newest readable seal, loading that region's
//! value sectors, and replaying the WAL tail. Replay is resumable and
//! idempotent ([`KvStore::reload`] re-runs it from scratch). If device
//! recovery degrades to read-only, the store follows suit: reads keep
//! working, writes return [`KvError::ReadOnly`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use pfault_obs::{Layer, ProbeEvent, ProbeLog, ProbeRecord};
use pfault_power::FaultTimeline;
use pfault_sim::{Lba, SectorCount, SimTime};
use pfault_ssd::{
    CompletionKind, DeviceError, HostCommand, RecoveryReport, Ssd, VerifiedContent,
};
use pfault_trace::BlockTracer;

use crate::config::KvConfig;
use crate::frame::{Frame, FrameCodec, KvOp};

/// Bound on event-pump iterations per host command; tripping it means
/// the device model stopped making progress, which is a simulator bug
/// worth a loud panic rather than a silent hang.
const PUMP_GUARD: u32 = 5_000_000;

/// Application-visible store errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvError {
    /// A power fault tore the operation down mid-flight; the store needs
    /// [`KvStore::recover`].
    Crashed,
    /// The device degraded to read-only; mutations are refused but reads
    /// still work.
    ReadOnly,
    /// The device is unrecoverable (bricked, recovery failed, or the
    /// host exhausted its mount retries).
    Failed,
    /// The store detected it lost this key (unreadable or torn
    /// checkpoint sector with no WAL record to repair it) — a *surfaced*
    /// loss, reported honestly instead of returning stale data.
    Corrupt {
        /// The lost key.
        key: u64,
    },
    /// The key is outside the configured key space.
    KeyOutOfRange {
        /// The offending key.
        key: u64,
    },
    /// [`KvStore::recover`] was called but the store has not crashed.
    NotCrashed,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Crashed => write!(f, "store crashed; recovery required"),
            KvError::ReadOnly => write!(f, "store is read-only"),
            KvError::Failed => write!(f, "store device is unrecoverable"),
            KvError::Corrupt { key } => write!(f, "key {key} lost to corruption"),
            KvError::KeyOutOfRange { key } => write!(f, "key {key} outside key space"),
            KvError::NotCrashed => write!(f, "recover called on a store that has not crashed"),
        }
    }
}

impl std::error::Error for KvError {}

/// Store lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvHealth {
    /// Serving reads and writes.
    Active,
    /// Power fault took the device down; [`KvStore::recover`] required.
    Crashed,
    /// Device recovery degraded to read-only; serving reads only.
    ReadOnly,
    /// Unrecoverable.
    Failed,
}

/// Cumulative store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvStats {
    /// WAL records appended (device-ACKed).
    pub wal_appends: u64,
    /// Group commits completed (FLUSH barriers ACKed).
    pub commits: u64,
    /// Operations acknowledged durable to the application.
    pub committed_ops: u64,
    /// Checkpoint compactions sealed.
    pub checkpoints: u64,
    /// Host-side power-cycle retries spent against transient mount
    /// errors.
    pub mount_retries: u64,
}

/// What WAL replay found while rebuilding state from the device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvReplayStats {
    /// Consecutive intact records applied.
    pub replayed: u64,
    /// Records rejected by CRC/frame checks (torn or foreign content).
    pub discarded: u64,
    /// Stale records from a previous ring lap (detected via embedded
    /// sequence numbers and not applied).
    pub stale: u64,
    /// Keys left marked corrupt after replay (checkpoint sectors lost
    /// and no WAL record repaired them).
    pub corrupt_keys: u64,
    /// Checkpoint generation the rebuild anchored on (0 = none found).
    pub generation: u64,
}

/// The application-level view of one recovery.
#[derive(Debug, Clone)]
pub struct KvRecoveryReport {
    /// The device's own recovery report from the successful mount.
    pub device: RecoveryReport,
    /// Host-side power-cycle retries before the mount succeeded.
    pub retries: u32,
    /// WAL replay outcome.
    pub replay: KvReplayStats,
    /// Whether the store (following the device) is now read-only.
    pub read_only: bool,
}

/// Outcome of pumping one host command to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IoStatus {
    Acked,
    Crashed,
    ReadOnly,
    Dead,
}

/// What one sector read parsed into.
enum ReadFrame {
    Ok(Frame),
    Unwritten,
    Damaged,
}

/// A crash-consistent WAL'd key-value store running on a simulated SSD.
pub struct KvStore {
    ssd: Ssd,
    cfg: KvConfig,
    codec: FrameCodec,
    tracer: BlockTracer,
    probes: ProbeLog,
    health: KvHealth,
    /// Authoritative in-memory state of *acknowledged* operations.
    memtable: BTreeMap<u64, u64>,
    /// Keys whose durable state was detectably lost; reads surface
    /// [`KvError::Corrupt`] until a later write repairs them.
    corrupt: BTreeSet<u64>,
    /// Appended but not yet group-committed operations, in seq order.
    pending: VecDeque<(u64, KvOp)>,
    next_seq: u64,
    acked_seq: u64,
    sealed_upto: u64,
    generation: u64,
    committed_since_ckpt: u64,
    next_request: u64,
    armed: Option<FaultTimeline>,
    stats: KvStats,
}

impl KvStore {
    /// Wraps a freshly formatted device.
    pub fn new(ssd: Ssd, cfg: KvConfig) -> Self {
        cfg.validate();
        let mut probes = ProbeLog::new();
        probes.enable();
        KvStore {
            ssd,
            cfg,
            codec: FrameCodec::new(),
            tracer: BlockTracer::new(SectorCount::ONE),
            probes,
            health: KvHealth::Active,
            memtable: BTreeMap::new(),
            corrupt: BTreeSet::new(),
            pending: VecDeque::new(),
            next_seq: 1,
            acked_seq: 0,
            sealed_upto: 0,
            generation: 0,
            committed_since_ckpt: 0,
            next_request: 1,
            armed: None,
            stats: KvStats::default(),
        }
    }

    /// Current simulated time at the device.
    pub fn now(&self) -> SimTime {
        self.ssd.now()
    }

    /// Lifecycle state.
    pub fn health(&self) -> KvHealth {
        self.health
    }

    /// Whether a power fault has taken the store down (recovery needed).
    pub fn crashed(&self) -> bool {
        matches!(self.health, KvHealth::Crashed)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Checkpoint generation currently anchored.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Keys currently marked as detectably lost.
    pub fn corrupt_keys(&self) -> u64 {
        self.corrupt.len() as u64
    }

    /// Snapshot of the acknowledged in-memory state (for tests and the
    /// idempotence oracle).
    pub fn memtable(&self) -> &BTreeMap<u64, u64> {
        &self.memtable
    }

    /// The device under the store (read access for experiments that
    /// cross-check device-layer probes and stats against the oracle).
    pub fn device(&self) -> &Ssd {
        &self.ssd
    }

    /// Mutable device access (e.g. to enable device-layer probes before
    /// driving a trial).
    pub fn device_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// Drains the store's application-layer probe records.
    pub fn take_probe_records(&mut self) -> Vec<ProbeRecord> {
        self.probes.take_records()
    }

    /// Emits the trial's final oracle verdict as an `app.outcome` probe.
    pub fn probe_outcome(&mut self, surfaced: u64, masked: u64, silent_poison: u64) {
        let now = self.ssd.now();
        self.probes.emit(
            now,
            Layer::App,
            ProbeEvent::AppOutcome {
                surfaced,
                masked,
                silent_poison,
            },
        );
    }

    /// Arms a power-fault timeline: the store's event pump fires
    /// [`Ssd::power_fail`] the moment simulated time would cross
    /// `timeline.commanded`, so cuts land *inside* commit and checkpoint
    /// flush windows rather than between operations.
    pub fn arm_cut(&mut self, timeline: FaultTimeline) {
        self.armed = Some(timeline);
    }

    // ------------------------------------------------------------------
    // Event pump
    // ------------------------------------------------------------------

    fn cut_due(&self, next: Option<SimTime>) -> bool {
        match (&self.armed, next) {
            (Some(tl), Some(t)) => t >= tl.commanded,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    fn fire_cut(&mut self) {
        if let Some(tl) = self.armed.take() {
            self.ssd.power_fail(&tl);
            self.health = KvHealth::Crashed;
        }
    }

    /// Runs the device until `request_id` completes (or the world ends).
    fn pump_for(&mut self, request_id: u64) -> IoStatus {
        for _ in 0..PUMP_GUARD {
            for c in self.ssd.drain_completions() {
                if c.request_id == request_id {
                    return match c.kind {
                        CompletionKind::Acked => IoStatus::Acked,
                        CompletionKind::ReadOnlyRejected => IoStatus::ReadOnly,
                        CompletionKind::DeviceError => {
                            if self.crashed() {
                                IoStatus::Crashed
                            } else {
                                IoStatus::Dead
                            }
                        }
                    };
                }
            }
            let next = self.ssd.next_event();
            if self.cut_due(next) {
                self.fire_cut();
                continue;
            }
            match next {
                Some(t) => self.ssd.advance_to(t),
                // No event will ever complete this command.
                None => return IoStatus::Dead,
            }
        }
        panic!("device event pump stopped making progress for request {request_id}");
    }

    /// Advances idle time (between operations), honouring an armed cut.
    /// Instants at or before the device's current time are a no-op (the
    /// workload's arrival pacing can lag behind IO-consumed time).
    pub fn advance_to(&mut self, t: SimTime) {
        if matches!(self.health, KvHealth::Crashed | KvHealth::Failed) {
            return;
        }
        if t <= self.ssd.now() {
            return;
        }
        if let Some(tl) = self.armed {
            if tl.commanded <= t {
                // Let the device work right up to the cut, then pull the
                // plug.
                while let Some(e) = self.ssd.next_event() {
                    if e >= tl.commanded {
                        break;
                    }
                    self.ssd.advance_to(e);
                }
                self.fire_cut();
                let _ = self.ssd.drain_completions();
                return;
            }
        }
        self.ssd.advance_to(t);
        let _ = self.ssd.drain_completions();
    }

    // ------------------------------------------------------------------
    // Device IO helpers
    // ------------------------------------------------------------------

    fn write_frame(&mut self, lba: Lba, frame: Frame) -> IoStatus {
        let tag = self.codec.encode(frame);
        let id = self.next_request;
        self.next_request += 1;
        let now = self.ssd.now();
        let subs = self.tracer.queue_request(id, lba, SectorCount::ONE, true, now);
        for sub in &subs {
            self.tracer.dispatch(id, sub.sub_id, self.ssd.now());
            self.ssd
                .submit(HostCommand::write(id, sub.sub_id, sub.lba, sub.sectors, tag));
        }
        let status = self.pump_for(id);
        let done = self.ssd.now();
        for sub in &subs {
            match status {
                IoStatus::Acked => self.tracer.complete(id, sub.sub_id, done),
                _ => self.tracer.error(id, sub.sub_id, done),
            }
        }
        status
    }

    fn flush(&mut self) -> IoStatus {
        let id = self.next_request;
        self.next_request += 1;
        self.ssd.submit_flush(id, 0);
        self.pump_for(id)
    }

    fn fail_from(&mut self, status: IoStatus) -> KvError {
        match status {
            IoStatus::Crashed => KvError::Crashed,
            IoStatus::ReadOnly => {
                self.health = KvHealth::ReadOnly;
                KvError::ReadOnly
            }
            IoStatus::Dead => {
                self.health = KvHealth::Failed;
                KvError::Failed
            }
            IoStatus::Acked => unreachable!("acked IO is not a failure"),
        }
    }

    fn require_active(&self) -> Result<(), KvError> {
        match self.health {
            KvHealth::Active => Ok(()),
            KvHealth::Crashed => Err(KvError::Crashed),
            KvHealth::ReadOnly => Err(KvError::ReadOnly),
            KvHealth::Failed => Err(KvError::Failed),
        }
    }

    fn apply(memtable: &mut BTreeMap<u64, u64>, corrupt: &mut BTreeSet<u64>, op: KvOp) {
        match op {
            KvOp::Put { key, value } => {
                memtable.insert(key, value);
            }
            KvOp::Delete { key } => {
                memtable.remove(&key);
            }
        }
        // A fresh write repairs a detectably-lost key.
        corrupt.remove(&op.key());
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Inserts or overwrites a key. Returns the number of operations
    /// acknowledged durable by any group commit this call triggered
    /// (including earlier pending ones); `0` means the op is appended
    /// but not yet acknowledged.
    pub fn put(&mut self, key: u64, value: u64) -> Result<u64, KvError> {
        self.append(KvOp::Put { key, value })
    }

    /// Removes a key. Acknowledgement semantics as [`KvStore::put`].
    pub fn delete(&mut self, key: u64) -> Result<u64, KvError> {
        self.append(KvOp::Delete { key })
    }

    /// Applies one [`KvOp`] (dispatch helper for trial drivers).
    pub fn apply_op(&mut self, op: KvOp) -> Result<u64, KvError> {
        self.append(op)
    }

    fn append(&mut self, op: KvOp) -> Result<u64, KvError> {
        self.require_active()?;
        let key = op.key();
        if key >= self.cfg.key_space {
            return Err(KvError::KeyOutOfRange { key });
        }
        let mut acked = self.reserve_wal_slot()?;
        let seq = self.next_seq;
        match self.write_frame(self.cfg.wal_lba(seq), Frame::Record { seq, op }) {
            IoStatus::Acked => {
                self.next_seq += 1;
                self.pending.push_back((seq, op));
                self.stats.wal_appends += 1;
                let now = self.ssd.now();
                self.probes.emit(
                    now,
                    Layer::App,
                    ProbeEvent::AppWalAppend {
                        slot: seq % self.cfg.wal_slots,
                        seq,
                    },
                );
                if self.pending.len() as u64 >= self.cfg.group_commit_ops {
                    acked += self.commit()?;
                }
                Ok(acked)
            }
            other => Err(self.fail_from(other)),
        }
    }

    /// Makes room in the WAL ring, force-committing and compacting if
    /// the next append would overwrite a record no checkpoint covers.
    fn reserve_wal_slot(&mut self) -> Result<u64, KvError> {
        let live = self.next_seq - 1 - self.sealed_upto;
        if live + 1 > self.cfg.wal_slots {
            let acked = self.commit_inner()?;
            self.checkpoint()?;
            return Ok(acked);
        }
        Ok(0)
    }

    /// Group commit: FLUSH barrier, then acknowledge every pending
    /// operation. Runs a checkpoint compaction when the cadence is due.
    /// Returns the number of operations acknowledged.
    pub fn commit(&mut self) -> Result<u64, KvError> {
        self.require_active()?;
        let acked = self.commit_inner()?;
        if self.committed_since_ckpt >= self.cfg.checkpoint_every_ops {
            self.checkpoint()?;
        }
        Ok(acked)
    }

    fn commit_inner(&mut self) -> Result<u64, KvError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let started = self.ssd.now();
        match self.flush() {
            IoStatus::Acked => {
                let n = self.pending.len() as u64;
                while let Some((seq, op)) = self.pending.pop_front() {
                    Self::apply(&mut self.memtable, &mut self.corrupt, op);
                    self.acked_seq = seq;
                }
                self.committed_since_ckpt += n;
                self.stats.commits += 1;
                self.stats.committed_ops += n;
                let now = self.ssd.now();
                let us = now.saturating_since(started).as_micros();
                self.probes
                    .emit(now, Layer::App, ProbeEvent::AppCommit { ops: n, us });
                Ok(n)
            }
            other => Err(self.fail_from(other)),
        }
    }

    /// Compacts acknowledged state into the next checkpoint region with
    /// the *eager-seal, single-barrier* pattern: the seal sector at the
    /// region header is rewritten first, then every key's sector (value
    /// or tombstone) in ascending order, then one FLUSH for the lot. The
    /// store trusts the barrier to make the region atomic — on the
    /// device, seal + values ride a single FTL journal extent, and a
    /// torn journal program persists a *prefix* of it: the seal and the
    /// first values, without the tail they claim to seal. Firmware that
    /// verifies batch CRCs discards the tear whole (the previous
    /// generation's seal wins and WAL replay repairs everything);
    /// firmware that half-applies anchors recovery on the new seal over
    /// stale value sectors — which carry no generation and decode
    /// cleanly. That is the silent-poison vector.
    fn checkpoint(&mut self) -> Result<(), KvError> {
        debug_assert!(
            self.pending.is_empty(),
            "checkpoint must follow a completed commit"
        );
        let generation = self.generation + 1;
        let region = self.cfg.region_of(generation);
        let entries = self.memtable.len() as u64;
        let status = self.write_frame(
            self.cfg.seal_lba(region),
            Frame::CkptSeal {
                generation,
                upto_seq: self.acked_seq,
                entries,
            },
        );
        if status != IoStatus::Acked {
            return Err(self.fail_from(status));
        }
        for key in 0..self.cfg.key_space {
            let value = self.memtable.get(&key).copied();
            let status = self.write_frame(
                self.cfg.value_lba(region, key),
                Frame::CkptValue { key, value },
            );
            if status != IoStatus::Acked {
                return Err(self.fail_from(status));
            }
        }
        match self.flush() {
            IoStatus::Acked => {
                self.generation = generation;
                self.sealed_upto = self.acked_seq;
                self.committed_since_ckpt = 0;
                self.stats.checkpoints += 1;
                let now = self.ssd.now();
                self.probes.emit(
                    now,
                    Layer::App,
                    ProbeEvent::AppCheckpoint {
                        generation,
                        entries,
                    },
                );
                Ok(())
            }
            other => Err(self.fail_from(other)),
        }
    }

    /// Commits any pending operations and quiesces the device (clean
    /// shutdown). Returns the operations acknowledged by the final
    /// commit.
    pub fn shutdown(&mut self) -> Result<u64, KvError> {
        let acked = self.commit()?;
        self.ssd.quiesce();
        let _ = self.ssd.drain_completions();
        Ok(acked)
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Looks up a key. `Ok(None)` means absent; [`KvError::Corrupt`]
    /// means the store knows it lost this key.
    pub fn get(&self, key: u64) -> Result<Option<u64>, KvError> {
        if key >= self.cfg.key_space {
            return Err(KvError::KeyOutOfRange { key });
        }
        match self.health {
            KvHealth::Crashed => Err(KvError::Crashed),
            KvHealth::Failed => Err(KvError::Failed),
            KvHealth::Active | KvHealth::ReadOnly => {
                if self.corrupt.contains(&key) {
                    return Err(KvError::Corrupt { key });
                }
                Ok(self.memtable.get(&key).copied())
            }
        }
    }

    /// Returns all present `(key, value)` pairs in `[lo, hi]`,
    /// skipping keys marked corrupt (reads of those surface errors via
    /// [`KvStore::get`]).
    pub fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, u64)>, KvError> {
        match self.health {
            KvHealth::Crashed => Err(KvError::Crashed),
            KvHealth::Failed => Err(KvError::Failed),
            KvHealth::Active | KvHealth::ReadOnly => Ok(self
                .memtable
                .range(lo..=hi)
                .filter(|(k, _)| !self.corrupt.contains(k))
                .map(|(&k, &v)| (k, v))
                .collect()),
        }
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    fn read_frame(&mut self, lba: Lba) -> ReadFrame {
        match self.ssd.verify_read(lba) {
            VerifiedContent::Unwritten => ReadFrame::Unwritten,
            VerifiedContent::Unreadable => ReadFrame::Damaged,
            VerifiedContent::Written(data) => {
                if !data.is_intact() {
                    // Per-record CRC catches torn/garbled content.
                    return ReadFrame::Damaged;
                }
                match self.codec.decode(data.tag) {
                    Some(frame) => ReadFrame::Ok(frame),
                    None => ReadFrame::Damaged,
                }
            }
        }
    }

    /// Rebuilds in-memory state from the device: newest readable seal,
    /// that region's value sectors, then WAL tail replay. Pure function
    /// of durable device state — running it twice yields the same state.
    fn rebuild(&mut self) -> KvReplayStats {
        self.memtable.clear();
        self.corrupt.clear();
        self.pending.clear();

        let mut best: Option<(u64, u64)> = None;
        for region in 0..2u64 {
            if let ReadFrame::Ok(Frame::CkptSeal {
                generation,
                upto_seq,
                ..
            }) = self.read_frame(self.cfg.seal_lba(region))
            {
                // A seal must sit in the region its generation writes;
                // anything else is cross-wired damage, ignored here.
                let in_place = self.cfg.region_of(generation) == region;
                if in_place && best.is_none_or(|(g, _)| generation > g) {
                    best = Some((generation, upto_seq));
                }
            }
        }
        let (generation, upto) = best.unwrap_or((0, 0));

        if generation > 0 {
            let region = self.cfg.region_of(generation);
            for key in 0..self.cfg.key_space {
                match self.read_frame(self.cfg.value_lba(region, key)) {
                    ReadFrame::Ok(Frame::CkptValue { key: k, value }) if k == key => {
                        if let Some(v) = value {
                            self.memtable.insert(key, v);
                        }
                    }
                    // Under a durable seal every key sector was written:
                    // a missing, foreign, or unreadable sector is a
                    // detected loss of that key.
                    ReadFrame::Ok(_) | ReadFrame::Damaged | ReadFrame::Unwritten => {
                        self.corrupt.insert(key);
                    }
                }
            }
        }

        let mut replayed = 0u64;
        let mut discarded = 0u64;
        let mut stale = 0u64;
        let mut seq = upto + 1;
        while seq <= upto + self.cfg.wal_slots {
            match self.read_frame(self.cfg.wal_lba(seq)) {
                ReadFrame::Ok(Frame::Record { seq: s, op }) if s == seq => {
                    Self::apply(&mut self.memtable, &mut self.corrupt, op);
                    replayed += 1;
                    seq += 1;
                    continue;
                }
                // A record from a previous lap of the ring: the embedded
                // sequence number exposes it as stale. End of log.
                ReadFrame::Ok(Frame::Record { .. }) => stale += 1,
                // Foreign frame or CRC failure: torn append. End of log.
                ReadFrame::Ok(_) | ReadFrame::Damaged => discarded += 1,
                ReadFrame::Unwritten => {}
            }
            break;
        }

        self.generation = generation;
        self.sealed_upto = upto;
        self.acked_seq = upto + replayed;
        self.next_seq = self.acked_seq + 1;
        self.committed_since_ckpt = replayed;

        KvReplayStats {
            replayed,
            discarded,
            stale,
            corrupt_keys: self.corrupt.len() as u64,
            generation,
        }
    }

    /// Recovers from a power fault: power-cycles the device with bounded
    /// exponential backoff against transient mount errors, then rebuilds
    /// state from the durable image. Degrades to read-only if the device
    /// does; gives up ([`KvError::Failed`]) on terminal device errors or
    /// when the retry budget is spent.
    pub fn recover(&mut self, at: SimTime) -> Result<KvRecoveryReport, KvError> {
        if !self.crashed() {
            return Err(KvError::NotCrashed);
        }
        let mut t = at;
        let mut backoff = self.cfg.recover_backoff;
        let mut retries = 0u32;
        let device = loop {
            match self.ssd.power_on_recover(t) {
                Ok(report) => break report,
                Err(DeviceError::MountFailed { .. })
                | Err(DeviceError::RecoveryInterrupted { .. }) => {
                    retries += 1;
                    self.stats.mount_retries += 1;
                    if retries > self.cfg.recover_retry_limit {
                        self.health = KvHealth::Failed;
                        return Err(KvError::Failed);
                    }
                    t += backoff;
                    backoff = backoff * 2;
                }
                Err(
                    DeviceError::Bricked { .. }
                    | DeviceError::RecoveryFailed { .. }
                    | DeviceError::NotMounted
                    | DeviceError::ReadOnly,
                ) => {
                    self.health = KvHealth::Failed;
                    return Err(KvError::Failed);
                }
            }
        };
        let read_only = self.ssd.is_read_only();
        self.health = if read_only {
            KvHealth::ReadOnly
        } else {
            KvHealth::Active
        };
        if read_only {
            let now = self.ssd.now();
            self.probes
                .emit(
                    now,
                    Layer::App,
                    ProbeEvent::AppReadOnly {
                        retries: u64::from(retries),
                    },
                );
        }
        let replay = self.rebuild();
        let now = self.ssd.now();
        self.probes.emit(
            now,
            Layer::App,
            ProbeEvent::AppWalReplay {
                replayed: replay.replayed,
                discarded: replay.discarded,
                stale: replay.stale,
            },
        );
        Ok(KvRecoveryReport {
            device,
            retries,
            replay,
            read_only,
        })
    }

    /// Re-runs the rebuild from durable device state on a mounted store
    /// (replay-twice ≡ replay-once check). Requires a prior successful
    /// [`KvStore::recover`] or a healthy store with everything
    /// committed.
    pub fn reload(&mut self) -> Result<KvReplayStats, KvError> {
        match self.health {
            KvHealth::Active | KvHealth::ReadOnly => Ok(self.rebuild()),
            KvHealth::Crashed => Err(KvError::Crashed),
            KvHealth::Failed => Err(KvError::Failed),
        }
    }
}
