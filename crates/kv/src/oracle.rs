//! Application-level divergence oracle.
//!
//! Tracks the linearized history of *acknowledged* operations alongside
//! the set of operations that were issued but never acknowledged when
//! the power failed (whose effects are legitimately indeterminate — a
//! WAL record may or may not have become durable). After recovery it
//! audits the store and classifies the outcome with the taxonomy of
//! Fang et al.'s storage-fault study:
//!
//! * **surfaced** — the application *sees* the fault: a key reads back
//!   an error, the store is read-only, or the store is lost wholesale;
//! * **masked** — a fault was injected but WAL replay absorbed it: every
//!   acknowledged datum reads back correct with no error;
//! * **silent poison** — an acknowledged datum is wrong or missing with
//!   *no* error, or a never-written ghost value appears: the
//!   application-level false write acknowledgment.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::frame::KvOp;
use crate::store::{KvHealth, KvStore};

/// The oracle's classification of one post-outage audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvVerdict {
    /// App-visible fault consequences: per-key read errors, read-only
    /// degradation (counted once), or total store loss (counted as every
    /// trusted key).
    pub surfaced: u64,
    /// 1 if a fault was injected and the audit found zero divergences.
    pub masked: u64,
    /// Acknowledged data wrong/lost with no error, or ghost values.
    pub silent_poison: u64,
}

/// Linearized-history oracle for one store.
#[derive(Debug)]
pub struct KvOracle {
    key_space: u64,
    /// Issued, not yet acknowledged, in issue order.
    staged: VecDeque<KvOp>,
    /// Expected value per key from acknowledged history.
    committed: BTreeMap<u64, u64>,
    /// Keys with at least one acknowledged operation.
    touched: BTreeSet<u64>,
    /// Acceptable alternative states per key from operations in flight
    /// at the crash (`None` = acceptably absent).
    unacked: BTreeMap<u64, Vec<Option<u64>>>,
    /// Total acknowledged operations.
    pub acked_ops: u64,
}

impl KvOracle {
    /// An oracle for a store over `0..key_space`.
    pub fn new(key_space: u64) -> Self {
        KvOracle {
            key_space,
            staged: VecDeque::new(),
            committed: BTreeMap::new(),
            touched: BTreeSet::new(),
            unacked: BTreeMap::new(),
            acked_ops: 0,
        }
    }

    /// Records an operation the moment it is issued to the store.
    pub fn stage(&mut self, op: KvOp) {
        self.staged.push_back(op);
    }

    /// Moves the oldest `n` staged operations into acknowledged history
    /// (the store acknowledges in issue order — group commit drains the
    /// pending queue FIFO).
    ///
    /// # Panics
    ///
    /// Panics if the store acknowledged more operations than were
    /// staged, which would be a harness bug.
    pub fn ack(&mut self, n: u64) {
        for _ in 0..n {
            let op = self
                .staged
                .pop_front()
                .expect("store acknowledged more operations than were staged");
            match op {
                KvOp::Put { key, value } => {
                    self.committed.insert(key, value);
                }
                KvOp::Delete { key } => {
                    self.committed.remove(&key);
                }
            }
            self.touched.insert(op.key());
            self.acked_ops += 1;
        }
    }

    /// Marks every still-staged operation as in-flight at the crash: its
    /// effect (applied or not) is acceptable either way.
    pub fn crash(&mut self) {
        while let Some(op) = self.staged.pop_front() {
            let candidate = match op {
                KvOp::Put { value, .. } => Some(value),
                KvOp::Delete { .. } => None,
            };
            self.unacked.entry(op.key()).or_default().push(candidate);
        }
    }

    /// Audits the recovered store against acknowledged history.
    /// `damaged` says whether a fault was actually injected (gates the
    /// `masked` classification).
    pub fn judge(&self, store: &KvStore, damaged: bool) -> KvVerdict {
        let mut v = KvVerdict::default();
        match store.health() {
            KvHealth::Failed | KvHealth::Crashed => {
                // The store is lost wholesale. Every key the application
                // trusted is gone — but it *knows*: surfaced, not silent.
                v.surfaced = (self.touched.len() as u64).max(1);
            }
            health => {
                if matches!(health, KvHealth::ReadOnly) {
                    // Availability loss is app-visible.
                    v.surfaced += 1;
                }
                for &key in &self.touched {
                    let expected = self.committed.get(&key).copied();
                    match store.get(key) {
                        Err(_) => v.surfaced += 1,
                        Ok(observed) => {
                            let acceptable = observed == expected
                                || self
                                    .unacked
                                    .get(&key)
                                    .is_some_and(|c| c.contains(&observed));
                            if !acceptable {
                                v.silent_poison += 1;
                            }
                        }
                    }
                }
                // Ghost values: keys the application never successfully
                // nor tentatively wrote must not exist.
                if let Ok(entries) = store.scan(0, self.key_space.saturating_sub(1)) {
                    for (key, _) in entries {
                        if !self.touched.contains(&key) && !self.unacked.contains_key(&key) {
                            v.silent_poison += 1;
                        }
                    }
                }
            }
        }
        if damaged && v.surfaced == 0 && v.silent_poison == 0 {
            v.masked = 1;
        }
        v
    }
}
