//! CRC-framed on-device records and the tag codec.
//!
//! Every sector the store writes carries exactly one frame. On the
//! simulated medium a sector's content is a 64-bit identity tag
//! ([`pfault_flash::PageData`]), so "serializing" a frame means deriving
//! a collision-resistant tag from its fields, and "parsing" a sector
//! means looking the tag back up in the codec's table. The device-side
//! checksum ([`pfault_flash::PageData::is_intact`]) stands in for the
//! per-record CRC: a torn or garbled program fails the CRC and the frame
//! is rejected, exactly like a real WAL record with a bad checksum.
//!
//! Deliberate format asymmetry (the studied failure mode): WAL
//! [`Frame::Record`]s embed their sequence number, so a stale sector
//! left over from a previous ring lap is *detectable* at replay. But
//! [`Frame::CkptValue`] frames carry only `key` and `value` — like a
//! heap-file page, they embed **no generation** — so a checkpoint sector
//! whose mapping reverted to an older generation decodes cleanly and is
//! indistinguishable from fresh data. That blindspot is the
//! application-level false-write-acknowledgment vector the oracle hunts.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pfault_sim::checksum::mix64;

/// Domain separators for the tag derivation, one per frame shape.
const RECORD_MAGIC: u64 = 0x57A1_4ECD_0001;
const PUT_MAGIC: u64 = 0x57A1_4ECD_0002;
const DELETE_MAGIC: u64 = 0x57A1_4ECD_0003;
const VALUE_MAGIC: u64 = 0x57A1_4ECD_0004;
const TOMBSTONE_MAGIC: u64 = 0x57A1_4ECD_0005;
const SEAL_MAGIC: u64 = 0x57A1_4ECD_0006;

/// One logical mutation carried by a WAL record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvOp {
    /// Insert or overwrite `key` with `value`.
    Put {
        /// Target key.
        key: u64,
        /// New value.
        value: u64,
    },
    /// Remove `key`.
    Delete {
        /// Target key.
        key: u64,
    },
}

impl KvOp {
    /// The key this operation mutates.
    pub fn key(&self) -> u64 {
        match *self {
            KvOp::Put { key, .. } | KvOp::Delete { key } => key,
        }
    }
}

/// Every frame shape the store writes, one per sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// A WAL record: sequence number plus the operation it logs.
    Record {
        /// Monotonic WAL sequence number (starts at 1).
        seq: u64,
        /// The logged operation.
        op: KvOp,
    },
    /// A checkpoint value sector: the compacted state of one key.
    /// `None` is an explicit tombstone (the key is absent). Carries no
    /// generation — see the module docs for why that matters.
    CkptValue {
        /// The key this sector compacts.
        key: u64,
        /// Present value, or `None` for a tombstone.
        value: Option<u64>,
    },
    /// A checkpoint seal: the region header, rewritten in place *before*
    /// the region's value sectors (the eager-seal pattern — one flush
    /// barrier covers header and body together). It declares the
    /// checkpoint and records how much WAL it subsumes.
    CkptSeal {
        /// Checkpoint generation (1-based; regions alternate by parity).
        generation: u64,
        /// Highest WAL sequence number the checkpoint covers.
        upto_seq: u64,
        /// Live (non-tombstone) entries in the region.
        entries: u64,
    },
}

impl Frame {
    /// The deterministic content tag for this frame.
    fn tag(&self) -> u64 {
        match *self {
            Frame::Record { seq, op } => {
                let op_tag = match op {
                    KvOp::Put { key, value } => mix64(key, mix64(value, PUT_MAGIC)),
                    KvOp::Delete { key } => mix64(key, DELETE_MAGIC),
                };
                mix64(seq, mix64(op_tag, RECORD_MAGIC))
            }
            Frame::CkptValue { key, value } => match value {
                Some(v) => mix64(key, mix64(v, VALUE_MAGIC)),
                None => mix64(key, TOMBSTONE_MAGIC),
            },
            Frame::CkptSeal {
                generation,
                upto_seq,
                entries,
            } => mix64(generation, mix64(upto_seq, mix64(entries, SEAL_MAGIC))),
        }
    }
}

/// Encodes frames to sector tags and decodes tags back to frames.
///
/// Encoding registers the frame under its derived tag (the store wrote
/// those bytes, so it can parse them later); decoding an unknown tag
/// fails, modelling a sector whose content is not a well-formed frame.
/// Note the table is a pure content index: a *stale* sector still
/// decodes — staleness detection is the frame format's job, and
/// [`Frame::CkptValue`] deliberately cannot do it.
#[derive(Debug, Default)]
pub struct FrameCodec {
    table: HashMap<u64, Frame>,
}

impl FrameCodec {
    /// An empty codec.
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Derives the frame's payload tag (what the store hands the device)
    /// and registers the frame under its *on-media* tag for later
    /// decode: the device stores sector `i` of a write as
    /// `mix64(payload_tag, payload_offset + i)`, and every frame is a
    /// single sector at offset 0.
    pub fn encode(&mut self, frame: Frame) -> u64 {
        let payload = frame.tag();
        let media = FrameCodec::media_tag(payload);
        let prior = self.table.insert(media, frame);
        debug_assert!(
            prior.is_none() || prior == Some(frame),
            "tag collision between distinct frames"
        );
        payload
    }

    /// The tag a single-sector write of `payload` reads back as.
    pub fn media_tag(payload: u64) -> u64 {
        mix64(payload, 0)
    }

    /// Parses a sector's on-media tag back into the frame it encodes,
    /// if the store ever wrote such a frame.
    pub fn decode(&self, media_tag: u64) -> Option<Frame> {
        self.table.get(&media_tag).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_unknown_tags() {
        let mut codec = FrameCodec::new();
        let frames = [
            Frame::Record {
                seq: 7,
                op: KvOp::Put { key: 3, value: 99 },
            },
            Frame::Record {
                seq: 7,
                op: KvOp::Delete { key: 3 },
            },
            Frame::CkptValue {
                key: 3,
                value: Some(99),
            },
            Frame::CkptValue { key: 3, value: None },
            Frame::CkptSeal {
                generation: 2,
                upto_seq: 40,
                entries: 12,
            },
        ];
        let tags: Vec<u64> = frames.iter().map(|f| codec.encode(*f)).collect();
        let unique: std::collections::HashSet<&u64> = tags.iter().collect();
        assert_eq!(unique.len(), frames.len(), "distinct frames, distinct tags");
        for (frame, tag) in frames.iter().zip(&tags) {
            assert_eq!(codec.decode(FrameCodec::media_tag(*tag)), Some(*frame));
        }
        assert_eq!(codec.decode(0xDEAD_BEEF), None);
    }

    #[test]
    fn identical_checkpoint_values_share_a_tag_across_generations() {
        // The documented blindspot: an unchanged value compacts to the
        // same bytes every generation, so the frame alone cannot reveal
        // which generation a sector belongs to.
        let mut codec = FrameCodec::new();
        let a = codec.encode(Frame::CkptValue {
            key: 5,
            value: Some(42),
        });
        let b = codec.encode(Frame::CkptValue {
            key: 5,
            value: Some(42),
        });
        assert_eq!(a, b);
    }
}
