//! Production-shaped KV workloads, driven through `pfault-workload`.
//!
//! Each preset is an ordinary [`WorkloadSpec`] (so arrival pacing,
//! working-set skew and read/write mix reuse the paper's §IV machinery)
//! plus a mapping from generated [`DataPacket`]s to KV operations and a
//! per-preset store tuning (group-commit size and checkpoint cadence).

use pfault_sim::{DetRng, SimTime};
use pfault_workload::{
    AccessPattern, ArrivalModel, DataPacket, SizeSpec, WorkloadGenerator, WorkloadSpec,
};

use crate::config::KvConfig;
use crate::frame::KvOp;

/// One application-level operation from the workload stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppOp {
    /// A mutation (logged through the WAL).
    Op(KvOp),
    /// A point lookup (served from the memtable).
    Get {
        /// Target key.
        key: u64,
    },
}

/// The three production-shaped trace presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvWorkloadKind {
    /// Write-only burst: Poisson arrivals, uniform keys — long WAL runs
    /// between compactions, so cuts land in group-commit windows.
    WalBurst,
    /// Small commit groups and an aggressive compaction cadence —
    /// maximizes time inside the single-barrier checkpoint window.
    CheckpointStorm,
    /// Four tenants in partitioned key ranges, Zipf-hot within each,
    /// mixed reads and writes.
    MultiTenant,
}

impl KvWorkloadKind {
    /// All presets, in sweep order.
    pub fn all() -> [KvWorkloadKind; 3] {
        [
            KvWorkloadKind::WalBurst,
            KvWorkloadKind::CheckpointStorm,
            KvWorkloadKind::MultiTenant,
        ]
    }

    /// Stable label for reports and JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            KvWorkloadKind::WalBurst => "wal-burst",
            KvWorkloadKind::CheckpointStorm => "ckpt-storm",
            KvWorkloadKind::MultiTenant => "multi-tenant",
        }
    }

    /// Tenant partitions of the key space.
    fn tenants(&self) -> u64 {
        match self {
            KvWorkloadKind::MultiTenant => 4,
            _ => 1,
        }
    }

    /// The underlying block-workload shape.
    pub fn spec(&self) -> WorkloadSpec {
        match self {
            KvWorkloadKind::WalBurst => WorkloadSpec::builder()
                .wss_bytes(2 << 20)
                .write_fraction(1.0)
                .size(SizeSpec::FixedBytes(4096))
                .pattern(AccessPattern::UniformRandom)
                .arrival(ArrivalModel::OpenLoopPoisson { iops: 4000.0 })
                .build(),
            KvWorkloadKind::CheckpointStorm => WorkloadSpec::builder()
                .wss_bytes(1 << 20)
                .write_fraction(0.9)
                .size(SizeSpec::FixedBytes(4096))
                .pattern(AccessPattern::Zipf { theta: 0.9 })
                .arrival(ArrivalModel::OpenLoop { iops: 2500.0 })
                .build(),
            KvWorkloadKind::MultiTenant => WorkloadSpec::builder()
                .wss_bytes(8 << 20)
                .write_fraction(0.6)
                .size(SizeSpec::FixedBytes(4096))
                .pattern(AccessPattern::Zipf { theta: 0.8 })
                .arrival(ArrivalModel::OpenLoopPoisson { iops: 1500.0 })
                .build(),
        }
    }

    /// Store tuning that gives the preset its name. The key space is
    /// deliberately left at the base width for every preset: a wide
    /// checkpoint region takes many milliseconds to drain, which is
    /// what keeps the eager-seal commit window open long enough for a
    /// cut to land inside it.
    pub fn tune(&self, base: KvConfig) -> KvConfig {
        match self {
            KvWorkloadKind::WalBurst => KvConfig {
                group_commit_ops: 12,
                checkpoint_every_ops: 96,
                ..base
            },
            KvWorkloadKind::CheckpointStorm => KvConfig {
                group_commit_ops: 4,
                checkpoint_every_ops: 8,
                ..base
            },
            KvWorkloadKind::MultiTenant => KvConfig {
                group_commit_ops: 8,
                checkpoint_every_ops: 32,
                ..base
            },
        }
    }
}

/// Adapts a [`WorkloadGenerator`] packet stream into timed KV
/// operations.
pub struct KvOpStream {
    generator: WorkloadGenerator,
    key_space: u64,
    tenants: u64,
}

impl KvOpStream {
    /// A stream of `kind`-shaped operations over `0..key_space`.
    pub fn new(kind: KvWorkloadKind, key_space: u64, rng: DetRng) -> Self {
        KvOpStream {
            generator: WorkloadGenerator::new(kind.spec(), rng),
            key_space,
            tenants: kind.tenants().min(key_space.max(1)),
        }
    }

    fn key_of(&self, packet: &DataPacket) -> u64 {
        let per_tenant = (self.key_space / self.tenants).max(1);
        let tenant = packet.id % self.tenants;
        let base = packet.lba.index() % per_tenant;
        (tenant * per_tenant + base) % self.key_space
    }

    /// The next operation and its arrival instant.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> (SimTime, AppOp) {
        let packet = self.generator.next_packet();
        let key = self.key_of(&packet);
        let op = if !packet.is_write {
            AppOp::Get { key }
        } else if packet.payload_tag.is_multiple_of(13) {
            AppOp::Op(KvOp::Delete { key })
        } else {
            AppOp::Op(KvOp::Put {
                key,
                value: packet.payload_tag,
            })
        };
        (packet.arrival, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_in_range() {
        for kind in KvWorkloadKind::all() {
            let mut a = KvOpStream::new(kind, 48, DetRng::new(7));
            let mut b = KvOpStream::new(kind, 48, DetRng::new(7));
            for _ in 0..200 {
                let (ta, oa) = a.next();
                let (tb, ob) = b.next();
                assert_eq!((ta, oa), (tb, ob));
                let key = match oa {
                    AppOp::Get { key } => key,
                    AppOp::Op(op) => op.key(),
                };
                assert!(key < 48);
            }
        }
    }

    #[test]
    fn wal_burst_is_write_only_and_multi_tenant_mixes() {
        let mut burst = KvOpStream::new(KvWorkloadKind::WalBurst, 48, DetRng::new(3));
        assert!((0..200).all(|_| matches!(burst.next().1, AppOp::Op(_))));
        let mut mixed = KvOpStream::new(KvWorkloadKind::MultiTenant, 48, DetRng::new(3));
        let mut reads = 0;
        for _ in 0..200 {
            if matches!(mixed.next().1, AppOp::Get { .. }) {
                reads += 1;
            }
        }
        assert!(reads > 0, "multi-tenant mix must include reads");
    }
}
