//! KV store configuration and on-device layout.

use serde::{Deserialize, Serialize};

use pfault_sim::{Lba, SimDuration};

/// Tunables of the WAL'd KV store.
///
/// The store owns a fixed slice of the device's logical address space:
/// a circular WAL ring followed by two alternating checkpoint regions
/// (A/B). Every region is addressed in whole 4 KiB sectors — one
/// CRC-framed record per sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvConfig {
    /// Distinct keys the store accepts (`0..key_space`). The checkpoint
    /// regions are direct-mapped: key `k` always compacts into the same
    /// sector of a region, so an unreadable checkpoint sector still
    /// identifies which key it lost.
    pub key_space: u64,
    /// WAL ring capacity in records (one record per sector). When the
    /// ring would overflow records not yet covered by a checkpoint, the
    /// store forces a commit + compaction first.
    pub wal_slots: u64,
    /// Operations batched per group commit: the store appends WAL
    /// records device-ACK-fast, but acknowledges operations to the
    /// application only after a FLUSH barrier every this-many ops.
    pub group_commit_ops: u64,
    /// Checkpoint compaction cadence, in committed operations.
    pub checkpoint_every_ops: u64,
    /// Host-side bound on power-cycle retries against transient
    /// [`pfault_ssd::DeviceError::MountFailed`] /
    /// [`pfault_ssd::DeviceError::RecoveryInterrupted`] mounts.
    pub recover_retry_limit: u32,
    /// Initial backoff between mount retries; doubles per attempt.
    pub recover_backoff: SimDuration,
}

impl KvConfig {
    /// A small store sized for fault-injection trials: 48 keys, a
    /// 96-record ring, group commits of 8 and compaction every 48
    /// committed ops.
    pub fn small() -> Self {
        KvConfig {
            key_space: 48,
            wal_slots: 96,
            group_commit_ops: 8,
            checkpoint_every_ops: 48,
            recover_retry_limit: 8,
            recover_backoff: SimDuration::from_secs(1),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate layout (empty key space, ring smaller than
    /// one commit group, zero cadences).
    pub fn validate(&self) {
        assert!(self.key_space > 0, "key space must be non-empty");
        assert!(self.group_commit_ops > 0, "group commit needs a batch size");
        assert!(self.checkpoint_every_ops > 0, "checkpoint cadence must be positive");
        assert!(
            self.wal_slots > self.group_commit_ops,
            "WAL ring must hold more than one commit group"
        );
    }

    /// First WAL sector.
    pub fn wal_base(&self) -> Lba {
        Lba::new(0)
    }

    /// WAL sector holding the record with this sequence number.
    pub fn wal_lba(&self, seq: u64) -> Lba {
        Lba::new(seq % self.wal_slots)
    }

    /// Seal sector of checkpoint region 0 (A) or 1 (B). The seal sits at
    /// the region base, below the region's value sectors.
    pub fn seal_lba(&self, region: u64) -> Lba {
        Lba::new(self.wal_slots + region * (self.key_space + 1))
    }

    /// Value sector of `key` in checkpoint region 0 (A) or 1 (B).
    pub fn value_lba(&self, region: u64, key: u64) -> Lba {
        Lba::new(self.wal_slots + region * (self.key_space + 1) + 1 + key)
    }

    /// Which region (0 = A, 1 = B) a checkpoint generation writes into.
    /// Generations alternate; generation 0 means "no checkpoint yet".
    pub fn region_of(&self, generation: u64) -> u64 {
        generation % 2
    }

    /// Total device sectors the store's layout occupies.
    pub fn footprint_sectors(&self) -> u64 {
        self.wal_slots + 2 * (self.key_space + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_do_not_overlap() {
        let c = KvConfig::small();
        c.validate();
        let mut seen = std::collections::HashSet::new();
        for seq in 0..c.wal_slots {
            assert!(seen.insert(c.wal_lba(seq)));
        }
        for region in 0..2 {
            assert!(seen.insert(c.seal_lba(region)));
            for key in 0..c.key_space {
                assert!(seen.insert(c.value_lba(region, key)));
            }
        }
        assert_eq!(seen.len() as u64, c.footprint_sectors());
    }

    #[test]
    fn ring_wraps_and_generations_alternate() {
        let c = KvConfig::small();
        assert_eq!(c.wal_lba(1), c.wal_lba(1 + c.wal_slots));
        assert_ne!(c.region_of(1), c.region_of(2));
        assert_eq!(c.region_of(1), c.region_of(3));
    }
}
