//! One end-to-end KV fault-injection trial.
//!
//! Builds a store on a fresh device, drives a production-shaped
//! operation stream through it with the oracle shadowing every issue
//! and acknowledgment, pulls the plug mid-stream (the cut is armed on
//! the first checkpoint-bearing mutation at or after a phase-determined
//! operation index, jittered into that barrier's drain window so it
//! lands *inside* commit and checkpoint flush activity), recovers with
//! bounded retry, and lets the oracle classify the result as surfaced /
//! masked / silent poison.

use pfault_flash::FlashGeometry;
use pfault_obs::ProbeRecord;
use pfault_power::FaultInjector;
use pfault_sim::{DetRng, SimDuration};
use pfault_ssd::{CacheConfig, Ssd, SsdConfig, VendorPreset};

use crate::config::KvConfig;
use crate::oracle::KvOracle;
use crate::store::{KvReplayStats, KvStore};
use crate::workload::{AppOp, KvOpStream, KvWorkloadKind};

/// Configuration of one trial.
#[derive(Debug, Clone, Copy)]
pub struct KvTrialConfig {
    /// The device under the store.
    pub ssd: SsdConfig,
    /// Store tunables (layout, commit/compaction cadence, retry budget).
    pub kv: KvConfig,
    /// Which production-shaped stream drives the store.
    pub workload: KvWorkloadKind,
    /// Operations to issue (mutations and lookups combined).
    pub ops: u64,
    /// Whether to pull the plug mid-stream.
    pub inject_fault: bool,
    /// Where in the stream (‰ of `ops`) the cut is armed.
    pub cut_phase_permille: u64,
}

impl KvTrialConfig {
    /// A trial-sized device derived from a vendor preset: the vendor's
    /// cell/ECC/cache/supercap identity on a small geometry, with the
    /// paper's observed transient mount failures enabled.
    pub fn device_for(preset: VendorPreset, cache_enabled: bool, verify_batch_crc: bool) -> SsdConfig {
        let vendor = preset.config();
        let geometry = FlashGeometry::new(1 << 10, 64);
        let mut config = SsdConfig::consumer(geometry, vendor.cell_kind, vendor.ecc);
        config.supercap = vendor.supercap;
        if !cache_enabled {
            config = config.with_cache(CacheConfig::disabled());
        }
        config = config.with_mount_failures(0.3, 3);
        config.ftl.verify_batch_crc = verify_batch_crc;
        config
    }

    /// The standard trial: `preset`-derived device, `kind`-tuned small
    /// store, 220 ops, cut armed at `cut_phase_permille`.
    pub fn standard(
        preset: VendorPreset,
        cache_enabled: bool,
        verify_batch_crc: bool,
        kind: KvWorkloadKind,
        cut_phase_permille: u64,
    ) -> Self {
        KvTrialConfig {
            ssd: Self::device_for(preset, cache_enabled, verify_batch_crc),
            kv: kind.tune(KvConfig::small()),
            workload: kind,
            ops: 220,
            inject_fault: true,
            cut_phase_permille,
        }
    }
}

/// Everything one trial produced.
#[derive(Debug, Clone, Default)]
pub struct KvTrialOutcome {
    /// Oracle count of app-visible fault consequences.
    pub surfaced: u64,
    /// 1 if the injected fault was fully absorbed.
    pub masked: u64,
    /// Oracle count of acknowledged-data divergences with no error.
    pub silent_poison: u64,
    /// Operations acknowledged durable before the cut.
    pub acked_ops: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// Group commits completed.
    pub commits: u64,
    /// Checkpoints sealed.
    pub checkpoints: u64,
    /// WAL replay outcome of the post-fault recovery.
    pub replay: KvReplayStats,
    /// Host-side power-cycle retries during recovery.
    pub mount_retries: u64,
    /// Store ended read-only.
    pub read_only: bool,
    /// Store ended unrecoverable.
    pub failed: bool,
    /// Torn FTL journal batches the device discarded whole (CRC on).
    pub device_batches_discarded: u64,
    /// `(kept, full)` sector coverage of every torn journal page the
    /// device recorded at the cut — the raw material of the half-apply
    /// bug (a checkpoint-extent tear has `full` ≥ the region size).
    pub journal_torn: Vec<(u64, u64)>,
    /// Application-layer probe records emitted during the trial.
    pub probes: Vec<ProbeRecord>,
}

/// Runs one trial to completion. Deterministic in `(cfg, seed)`.
pub fn run_kv_trial(cfg: &KvTrialConfig, seed: u64) -> KvTrialOutcome {
    let rng = DetRng::new(seed);
    let ssd = Ssd::new(cfg.ssd, rng.fork("device"));
    let mut store = KvStore::new(ssd, cfg.kv);
    store.device_mut().enable_probes();
    let mut oracle = KvOracle::new(cfg.kv.key_space);
    let mut stream = KvOpStream::new(cfg.workload, cfg.kv.key_space, rng.fork("workload"));
    let mut cut_rng = rng.fork("cut");
    // The fast transistor cutter, not the ATX rig: the loaded ATX rail
    // gives oblivious firmware a >100 ms drain window between host loss
    // and flash death, and a trial-sized store's entire backlog lands in
    // that window — every outage would be absorbed. The microsecond-fall
    // cutter freezes the device mid-flight, which is the exposure the
    // application oracle is built to classify.
    let injector = FaultInjector::transistor();

    let cut_at = if cfg.ops == 0 {
        0
    } else {
        (cfg.ops * cfg.cut_phase_permille / 1000).min(cfg.ops - 1)
    };
    let mut timeline = None;
    // Trial-side mirrors of the store's group-commit and compaction
    // counters, used to spot the mutation whose flush barrier will also
    // run a checkpoint.
    let group = cfg.kv.group_commit_ops.max(1);
    let mut group_fill = 0u64;
    let mut committed_since_ckpt = 0u64;

    for i in 0..cfg.ops {
        if store.crashed() {
            break;
        }
        let (arrival, op) = stream.next();
        store.advance_to(arrival);
        if store.crashed() {
            break;
        }
        let is_mutation = matches!(op, AppOp::Op(_));
        let commits_now = is_mutation && group_fill + 1 >= group;
        let checkpoints_now =
            commits_now && committed_since_ckpt + group >= cfg.kv.checkpoint_every_ops;
        if cfg.inject_fault && timeline.is_none() && i >= cut_at && checkpoints_now {
            // Arm the cut on the first checkpoint-bearing mutation at or
            // after the phase point: this op's flush barrier drains the
            // pending WAL batch and then the whole checkpoint region —
            // roughly 12 ms of device time on the trial geometry. A
            // jitter spanning that window lands the commanded instant
            // anywhere inside the drain and its journal-commit programs
            // (the firmware's exposed phases, including the eager-seal
            // extent's own commit), instead of wasting most cuts on the
            // idle stretches between barriers.
            let delta = SimDuration::from_micros(6_000 + cut_rng.below(4_000));
            let tl = injector.timeline(store.now() + delta);
            store.arm_cut(tl);
            timeline = Some(tl);
        }
        match op {
            AppOp::Get { key } => {
                let _ = store.get(key);
            }
            AppOp::Op(op) => {
                oracle.stage(op);
                match store.apply_op(op) {
                    Ok(acked) => oracle.ack(acked),
                    Err(_) => break,
                }
            }
        }
        if is_mutation {
            group_fill = (group_fill + 1) % group;
            if commits_now {
                committed_since_ckpt += group;
                if committed_since_ckpt >= cfg.kv.checkpoint_every_ops {
                    committed_since_ckpt = 0;
                }
            }
        }
    }

    let mut outcome = KvTrialOutcome::default();

    if cfg.inject_fault {
        // If the stream drained before the armed instant, force the
        // outage now: every faulted trial must actually fault.
        let tl = timeline.unwrap_or_else(|| {
            let tl = injector.timeline(store.now() + SimDuration::from_micros(1));
            store.arm_cut(tl);
            tl
        });
        if !store.crashed() {
            store.advance_to(tl.discharged + SimDuration::from_micros(1));
        }
        oracle.crash();
        match store.recover(tl.discharged + SimDuration::from_secs(1)) {
            Ok(report) => {
                outcome.replay = report.replay;
                outcome.mount_retries = u64::from(report.retries);
                outcome.read_only = report.read_only;
                outcome.device_batches_discarded = report.device.batches_discarded;
            }
            Err(_) => outcome.failed = true,
        }
        let verdict = oracle.judge(&store, true);
        outcome.surfaced = verdict.surfaced;
        outcome.masked = verdict.masked;
        outcome.silent_poison = verdict.silent_poison;
        store.probe_outcome(verdict.surfaced, verdict.masked, verdict.silent_poison);
    } else {
        if let Ok(acked) = store.shutdown() {
            oracle.ack(acked);
        }
        oracle.crash();
        let verdict = oracle.judge(&store, false);
        outcome.surfaced = verdict.surfaced;
        outcome.masked = verdict.masked;
        outcome.silent_poison = verdict.silent_poison;
        store.probe_outcome(verdict.surfaced, verdict.masked, verdict.silent_poison);
    }

    let stats = store.stats();
    outcome.acked_ops = oracle.acked_ops;
    outcome.wal_appends = stats.wal_appends;
    outcome.commits = stats.commits;
    outcome.checkpoints = stats.checkpoints;
    outcome.journal_torn = store
        .device_mut()
        .take_probe_records()
        .iter()
        .filter_map(|r| match r.event {
            pfault_obs::ProbeEvent::JournalTorn { kept, full } => Some((kept, full)),
            _ => None,
        })
        .collect();
    outcome.probes = store.take_probe_records();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_ssd::VendorPreset;

    fn clean_config() -> KvTrialConfig {
        let mut cfg = KvTrialConfig::standard(
            VendorPreset::SsdA,
            true,
            true,
            KvWorkloadKind::MultiTenant,
            500,
        );
        cfg.inject_fault = false;
        cfg.ssd = cfg.ssd.with_mount_failures(0.0, 3);
        cfg
    }

    #[test]
    fn clean_trial_has_zero_divergences() {
        let outcome = run_kv_trial(&clean_config(), 11);
        assert_eq!(outcome.surfaced, 0);
        assert_eq!(outcome.masked, 0);
        assert_eq!(outcome.silent_poison, 0);
        assert!(outcome.acked_ops > 0);
        assert!(outcome.commits > 0);
    }

    #[test]
    fn trials_are_deterministic() {
        let cfg = KvTrialConfig::standard(
            VendorPreset::SsdB,
            true,
            false,
            KvWorkloadKind::CheckpointStorm,
            500,
        );
        let a = run_kv_trial(&cfg, 42);
        let b = run_kv_trial(&cfg, 42);
        assert_eq!(
            (a.surfaced, a.masked, a.silent_poison, a.acked_ops),
            (b.surfaced, b.masked, b.silent_poison, b.acked_ops)
        );
        assert_eq!(a.probes.len(), b.probes.len());
    }

    #[test]
    fn faulted_trials_checkpoint_and_commit() {
        let cfg = KvTrialConfig::standard(
            VendorPreset::SsdA,
            true,
            false,
            KvWorkloadKind::CheckpointStorm,
            850,
        );
        let outcome = run_kv_trial(&cfg, 5);
        assert!(outcome.commits > 0, "cut at 850‰ must land after commits");
        assert!(outcome.checkpoints > 0, "checkpoint storm must checkpoint");
    }

    /// The seeded silent-poison reproduction `make kv-smoke` pins: over
    /// a fixed seed range, the half-applying (`verify_batch_crc=false`)
    /// firmware must poison at least once, and strictly more often than
    /// the discard-whole firmware at the very same seeds.
    #[test]
    fn seeded_silent_poison_reproduces() {
        let mut poisoned = 0u64;
        let mut poisoned_crc = 0u64;
        for kind in [KvWorkloadKind::CheckpointStorm, KvWorkloadKind::WalBurst] {
            for seed in 0..24 {
                for phase in [250, 850] {
                    let loose =
                        KvTrialConfig::standard(VendorPreset::SsdA, true, false, kind, phase);
                    let strict =
                        KvTrialConfig::standard(VendorPreset::SsdA, true, true, kind, phase);
                    poisoned += run_kv_trial(&loose, seed).silent_poison;
                    poisoned_crc += run_kv_trial(&strict, seed).silent_poison;
                }
            }
        }
        assert!(
            poisoned > 0,
            "verify_batch_crc=false must produce silent poison in this seed range"
        );
        assert!(
            poisoned > poisoned_crc,
            "half-apply must poison strictly more than discard-whole \
             (false={poisoned}, true={poisoned_crc})"
        );
    }
}
