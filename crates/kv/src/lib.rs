//! Application-consistency layer above the device model.
//!
//! The paper's oracle stops at request-level checksums; this crate asks
//! the question users actually face — does a device-level false write
//! acknowledgment or torn FTL journal *surface* as application
//! corruption, get *masked* by application journaling, or *silently
//! poison* a later recovery?
//!
//! * [`store::KvStore`] — a minimal write-ahead-logged KV store
//!   (put/get/delete/scan) running on [`pfault_ssd::Ssd`]: group-commit
//!   WAL with per-record CRC framing, alternating checkpoint regions
//!   compacted behind a *single* flush barrier, and a resumable
//!   crash-recovery path with bounded retry/backoff that degrades to
//!   read-only when the device does.
//! * [`oracle::KvOracle`] — tracks the linearized history of
//!   acknowledged operations and classifies every post-outage
//!   divergence as **surfaced**, **masked**, or **silent poison**.
//! * [`workload`] — production-shaped trace presets (WAL burst,
//!   checkpoint storm, multi-tenant mix) driven through
//!   `pfault-workload`.
//! * [`trial`] — one end-to-end fault-injection trial, deterministic in
//!   `(config, seed)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod config;
pub mod frame;
pub mod oracle;
pub mod store;
pub mod trial;
pub mod workload;

pub use config::KvConfig;
pub use frame::{Frame, FrameCodec, KvOp};
pub use oracle::{KvOracle, KvVerdict};
pub use store::{KvError, KvHealth, KvRecoveryReport, KvReplayStats, KvStats, KvStore};
pub use trial::{run_kv_trial, KvTrialConfig, KvTrialOutcome};
pub use workload::{AppOp, KvOpStream, KvWorkloadKind};
