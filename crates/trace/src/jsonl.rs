//! Byte-stable JSONL export of block-layer trace events.
//!
//! `blkparse`'s column format ([`TraceEvent`]'s `Display`) is for eyes;
//! downstream tooling (`blkdump --obs`, notebook ingestion) wants one
//! self-describing JSON object per line. The renderer is hand-rolled with
//! a fixed key order so two same-seed trials produce byte-identical
//! files — the determinism contract the observability layer is built on.

use pfault_sim::{Lba, SectorCount, SimTime};
use serde_json::Value;

use crate::event::{TraceAction, TraceEvent};

/// Renders one trace event as a single JSON object (no trailing newline).
///
/// Key order is fixed: `t_us`, `action`, `rw`, `lba`, `sectors`, `req`,
/// `sub`.
pub fn render_trace_event(e: &TraceEvent) -> String {
    format!(
        "{{\"t_us\":{},\"action\":\"{}\",\"rw\":\"{}\",\"lba\":{},\"sectors\":{},\"req\":{},\"sub\":{}}}",
        e.time.as_micros(),
        e.action.code(),
        if e.is_write { 'W' } else { 'R' },
        e.lba.index(),
        e.sectors.get(),
        e.request_id,
        e.sub_id,
    )
}

/// Renders a whole trace as JSONL (one object per line, trailing newline
/// after every line, empty string for an empty trace).
pub fn render_trace_events(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&render_trace_event(e));
        out.push('\n');
    }
    out
}

/// Error parsing a JSONL trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceJsonError {
    /// What was wrong with the line.
    pub reason: String,
}

impl core::fmt::Display for ParseTraceJsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "bad trace JSONL line: {}", self.reason)
    }
}

impl std::error::Error for ParseTraceJsonError {}

fn err(reason: &str) -> ParseTraceJsonError {
    ParseTraceJsonError {
        reason: reason.to_string(),
    }
}

fn action_from_code(code: &str) -> Option<TraceAction> {
    match code {
        "Q" => Some(TraceAction::Queued),
        "X" => Some(TraceAction::Split),
        "D" => Some(TraceAction::Dispatched),
        "C" => Some(TraceAction::Completed),
        "E" => Some(TraceAction::Error),
        _ => None,
    }
}

/// Parses one line produced by [`render_trace_event`] back into a
/// [`TraceEvent`] (round-trip contract for `blkdump --obs`).
pub fn parse_trace_jsonl_line(line: &str) -> Result<TraceEvent, ParseTraceJsonError> {
    let value: Value =
        serde_json::parse_value_str(line).map_err(|e| err(&format!("not JSON: {e}")))?;
    let object = value.as_object().ok_or_else(|| err("not an object"))?;
    let field_u64 = |key: &str| {
        object
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| err(&format!("missing integer field `{key}`")))
    };
    let field_str = |key: &str| {
        object
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| err(&format!("missing string field `{key}`")))
    };
    let action =
        action_from_code(field_str("action")?).ok_or_else(|| err("unknown action code"))?;
    let rw = field_str("rw")?;
    Ok(TraceEvent {
        time: SimTime::from_micros(field_u64("t_us")?),
        action,
        request_id: field_u64("req")?,
        sub_id: u32::try_from(field_u64("sub")?).map_err(|_| err("sub id out of range"))?,
        lba: Lba::new(field_u64("lba")?),
        sectors: SectorCount::new(field_u64("sectors")?),
        is_write: rw == "W",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            time: SimTime::from_micros(1_500_000),
            action: TraceAction::Queued,
            request_id: 3,
            sub_id: 0,
            lba: Lba::new(2048),
            sectors: SectorCount::new(8),
            is_write: true,
        }
    }

    #[test]
    fn render_has_fixed_shape() {
        assert_eq!(
            render_trace_event(&sample()),
            "{\"t_us\":1500000,\"action\":\"Q\",\"rw\":\"W\",\"lba\":2048,\"sectors\":8,\"req\":3,\"sub\":0}"
        );
    }

    #[test]
    fn round_trip_preserves_event() {
        let e = sample();
        let parsed = parse_trace_jsonl_line(&render_trace_event(&e)).expect("round-trips");
        assert_eq!(parsed, e);
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(parse_trace_jsonl_line("not json").is_err());
        assert!(parse_trace_jsonl_line("{\"t_us\":1}").is_err());
        assert!(
            parse_trace_jsonl_line(
                "{\"t_us\":1,\"action\":\"Z\",\"rw\":\"W\",\"lba\":0,\"sectors\":1,\"req\":0,\"sub\":0}"
            )
            .is_err()
        );
    }

    #[test]
    fn multi_line_render_ends_each_line() {
        let out = render_trace_events(&[sample(), sample()]);
        assert_eq!(out.lines().count(), 2);
        assert!(out.ends_with('\n'));
        assert_eq!(render_trace_events(&[]), "");
    }
}
