//! Per-IO post-processing — the modified-`btt --per-io-dump` equivalent.
//!
//! Reassembles the event stream into per-request records, computes timing,
//! and applies the paper's completion rule (§III-B): *"a request would be
//! marked as completed when all its sub-requests are in the complete
//! state"*, with a 30-second timeout for delayed requests. The Analyzer
//! feeds these `completed` flags into the failure classification.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use pfault_sim::{Lba, SectorCount, SimDuration, SimTime};

use crate::event::{TraceAction, TraceEvent};

/// Per-request record, as the paper's per-IO dump produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerIo {
    /// Request identifier.
    pub request_id: u64,
    /// Starting sector of the whole request.
    pub lba: Lba,
    /// Total length of the whole request.
    pub sectors: SectorCount,
    /// Write or read.
    pub is_write: bool,
    /// When the request was queued.
    pub queued_at: SimTime,
    /// When the first fragment was dispatched, if any was.
    pub dispatched_at: Option<SimTime>,
    /// When the *last* fragment completed — the request's completion
    /// instant — if all fragments completed.
    pub completed_at: Option<SimTime>,
    /// Number of sub-requests the request was split into.
    pub sub_count: u32,
    /// Sub-requests that reached the complete state.
    pub subs_completed: u32,
    /// Sub-requests that reported a device error.
    pub subs_errored: u32,
    /// The §III-B flag: all sub-requests complete (within the timeout).
    pub completed: bool,
    /// The request exceeded the timeout without completing.
    pub timed_out: bool,
}

impl PerIo {
    /// Queue-to-completion latency, if the request completed.
    pub fn q2c(&self) -> Option<SimDuration> {
        self.completed_at.map(|c| c - self.queued_at)
    }
}

/// Result of analyzing one trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BttReport {
    ios: BTreeMap<u64, PerIo>,
}

impl BttReport {
    /// Record for `request_id`, if the request appears in the trace.
    pub fn io(&self, request_id: u64) -> Option<&PerIo> {
        self.ios.get(&request_id)
    }

    /// Iterates records in request-id order.
    pub fn iter(&self) -> impl Iterator<Item = &PerIo> + '_ {
        self.ios.values()
    }

    /// Number of traced requests.
    pub fn len(&self) -> usize {
        self.ios.len()
    }

    /// Whether the trace contained no requests.
    pub fn is_empty(&self) -> bool {
        self.ios.is_empty()
    }

    /// Requests that did not complete (power fault or timeout).
    pub fn incomplete(&self) -> impl Iterator<Item = &PerIo> + '_ {
        self.ios.values().filter(|io| !io.completed)
    }

    /// `(reads, writes)` request counts.
    pub fn by_type(&self) -> (u64, u64) {
        let writes = self.ios.values().filter(|io| io.is_write).count() as u64;
        (self.ios.len() as u64 - writes, writes)
    }
}

/// Latency summary over a trace — the headline numbers real `btt` prints
/// (request counts, Q2C and D2C latency distribution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BttSummary {
    /// Requests traced.
    pub requests: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests that timed out.
    pub timed_out: u64,
    /// Mean queue-to-completion latency, ms (completed requests).
    pub q2c_mean_ms: f64,
    /// Median queue-to-completion latency, ms.
    pub q2c_p50_ms: f64,
    /// 99th-percentile queue-to-completion latency, ms.
    pub q2c_p99_ms: f64,
    /// Mean dispatch-to-completion latency, ms (requests with both).
    pub d2c_mean_ms: f64,
}

impl BttReport {
    /// Computes the latency summary of this report.
    pub fn summary(&self) -> BttSummary {
        let mut q2c: Vec<f64> = Vec::new();
        let mut d2c: Vec<f64> = Vec::new();
        let mut completed = 0;
        let mut timed_out = 0;
        for io in self.iter() {
            if io.completed {
                completed += 1;
                if let Some(lat) = io.q2c() {
                    q2c.push(lat.as_millis_f64());
                }
                if let (Some(d), Some(c)) = (io.dispatched_at, io.completed_at) {
                    d2c.push((c - d).as_millis_f64());
                }
            }
            if io.timed_out {
                timed_out += 1;
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        BttSummary {
            requests: self.len() as u64,
            completed,
            timed_out,
            q2c_mean_ms: mean(&q2c),
            q2c_p50_ms: pfault_sim::stats::percentile(&q2c, 50.0).unwrap_or(0.0),
            q2c_p99_ms: pfault_sim::stats::percentile(&q2c, 99.0).unwrap_or(0.0),
            d2c_mean_ms: mean(&d2c),
        }
    }
}

impl BttReport {
    /// Renders the per-request dump the paper's modified
    /// `btt --per-io-dump` produces: one line per request with its
    /// geometry, timing, sub-request accounting, and completion flag.
    pub fn per_io_dump(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "#  req        lba  sectors  rw   queued(ms)  completed(ms)  subs  done  err  state\n",
        );
        for io in self.iter() {
            let completed = io
                .completed_at
                .map_or("-".to_string(), |t| format!("{:.3}", t.as_millis_f64()));
            let state = if io.completed {
                "complete"
            } else if io.timed_out {
                "timeout"
            } else {
                "incomplete"
            };
            out.push_str(&format!(
                "{:>6} {:>10} {:>8}   {}  {:>11.3}  {:>13}  {:>4}  {:>4}  {:>3}  {}\n",
                io.request_id,
                io.lba.index(),
                io.sectors.get(),
                if io.is_write { 'W' } else { 'R' },
                io.queued_at.as_millis_f64(),
                completed,
                io.sub_count,
                io.subs_completed,
                io.subs_errored,
                state,
            ));
        }
        out
    }
}

/// Analyzes an event stream.
///
/// `timeout` is the paper's 30-second delayed-request limit; `now` is the
/// analysis instant (requests still pending but younger than the timeout
/// are *also* marked incomplete — after a power fault nothing will ever
/// complete them, which is exactly the §III-B IO-error condition).
pub fn analyze(events: &[TraceEvent], timeout: SimDuration, now: SimTime) -> BttReport {
    let mut ios: BTreeMap<u64, PerIo> = BTreeMap::new();
    for e in events {
        match e.action {
            TraceAction::Queued => {
                ios.insert(
                    e.request_id,
                    PerIo {
                        request_id: e.request_id,
                        lba: e.lba,
                        sectors: e.sectors,
                        is_write: e.is_write,
                        queued_at: e.time,
                        dispatched_at: None,
                        completed_at: None,
                        sub_count: 1,
                        subs_completed: 0,
                        subs_errored: 0,
                        completed: false,
                        timed_out: false,
                    },
                );
            }
            TraceAction::Split => {
                if let Some(io) = ios.get_mut(&e.request_id) {
                    io.sub_count += 1;
                }
            }
            TraceAction::Dispatched => {
                if let Some(io) = ios.get_mut(&e.request_id) {
                    if io.dispatched_at.is_none() {
                        io.dispatched_at = Some(e.time);
                    }
                }
            }
            TraceAction::Completed => {
                if let Some(io) = ios.get_mut(&e.request_id) {
                    io.subs_completed += 1;
                    let latest = io.completed_at.map_or(e.time, |c| c.max(e.time));
                    io.completed_at = Some(latest);
                }
            }
            TraceAction::Error => {
                if let Some(io) = ios.get_mut(&e.request_id) {
                    io.subs_errored += 1;
                }
            }
        }
    }
    for io in ios.values_mut() {
        let all_complete = io.subs_completed >= io.sub_count;
        io.timed_out = !all_complete && now.saturating_since(io.queued_at) >= timeout;
        io.completed = all_complete;
        if !all_complete {
            io.completed_at = None;
        }
    }
    BttReport { ios }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::BlockTracer;

    const TIMEOUT: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn completed_request_has_timing() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(
            1,
            Lba::new(0),
            SectorCount::new(8),
            true,
            SimTime::from_millis(1),
        );
        t.dispatch(1, 0, SimTime::from_millis(2));
        t.complete(1, 0, SimTime::from_millis(5));
        let r = analyze(t.events(), TIMEOUT, SimTime::from_millis(10));
        let io = r.io(1).unwrap();
        assert!(io.completed);
        assert_eq!(io.q2c(), Some(SimDuration::from_millis(4)));
        assert_eq!(io.dispatched_at, Some(SimTime::from_millis(2)));
    }

    #[test]
    fn split_request_needs_all_fragments() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        let subs = t.queue_request(1, Lba::new(0), SectorCount::new(256), true, SimTime::ZERO);
        assert_eq!(subs.len(), 2);
        t.dispatch(1, 0, SimTime::from_millis(1));
        t.complete(1, 0, SimTime::from_millis(2));
        // Fragment 1 never completes (power fault).
        let r = analyze(t.events(), TIMEOUT, SimTime::from_millis(100));
        let io = r.io(1).unwrap();
        assert!(!io.completed);
        assert_eq!(io.subs_completed, 1);
        assert_eq!(io.sub_count, 2);
        assert_eq!(io.completed_at, None);
        assert_eq!(r.incomplete().count(), 1);
    }

    #[test]
    fn completion_instant_is_last_fragment() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(1, Lba::new(0), SectorCount::new(256), true, SimTime::ZERO);
        t.complete(1, 1, SimTime::from_millis(9));
        t.complete(1, 0, SimTime::from_millis(3));
        let r = analyze(t.events(), TIMEOUT, SimTime::from_millis(20));
        assert_eq!(r.io(1).unwrap().completed_at, Some(SimTime::from_millis(9)));
    }

    #[test]
    fn timeout_marks_delayed_requests() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(1, Lba::new(0), SectorCount::new(8), true, SimTime::ZERO);
        t.dispatch(1, 0, SimTime::from_millis(1));
        // Analyzed 31 s later with no completion.
        let r = analyze(t.events(), TIMEOUT, SimTime::from_secs(31));
        let io = r.io(1).unwrap();
        assert!(!io.completed);
        assert!(io.timed_out);
    }

    #[test]
    fn young_pending_request_is_incomplete_but_not_timed_out() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(1, Lba::new(0), SectorCount::new(8), true, SimTime::ZERO);
        let r = analyze(t.events(), TIMEOUT, SimTime::from_secs(1));
        let io = r.io(1).unwrap();
        assert!(!io.completed);
        assert!(!io.timed_out);
    }

    #[test]
    fn errors_are_counted() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(1, Lba::new(0), SectorCount::new(8), false, SimTime::ZERO);
        t.dispatch(1, 0, SimTime::from_millis(1));
        t.error(1, 0, SimTime::from_millis(2));
        let r = analyze(t.events(), TIMEOUT, SimTime::from_millis(5));
        let io = r.io(1).unwrap();
        assert_eq!(io.subs_errored, 1);
        assert!(!io.completed);
        assert!(!io.is_write);
    }

    #[test]
    fn report_iterates_in_id_order() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        for id in [5u64, 2, 9] {
            t.queue_request(id, Lba::new(id), SectorCount::new(1), true, SimTime::ZERO);
        }
        let r = analyze(t.events(), TIMEOUT, SimTime::from_secs(1));
        let ids: Vec<u64> = r.iter().map(|io| io.request_id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn summary_computes_latency_distribution() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        // Three completed requests with q2c of 2, 4, 10 ms.
        for (id, lat_ms) in [(1u64, 2u64), (2, 4), (3, 10)] {
            t.queue_request(id, Lba::new(id), SectorCount::new(1), true, SimTime::ZERO);
            t.dispatch(id, 0, SimTime::from_millis(1));
            t.complete(id, 0, SimTime::from_millis(lat_ms));
        }
        // One incomplete, timed out.
        t.queue_request(9, Lba::new(9), SectorCount::new(1), true, SimTime::ZERO);
        let r = analyze(t.events(), TIMEOUT, SimTime::from_secs(40));
        let s = r.summary();
        assert_eq!(s.requests, 4);
        assert_eq!(s.completed, 3);
        assert_eq!(s.timed_out, 1);
        assert!((s.q2c_mean_ms - 16.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.q2c_p50_ms, 4.0);
        assert_eq!(s.q2c_p99_ms, 10.0);
        assert!((s.d2c_mean_ms - (1.0 + 3.0 + 9.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = analyze(&[], TIMEOUT, SimTime::ZERO).summary();
        assert_eq!(s.requests, 0);
        assert_eq!(s.q2c_mean_ms, 0.0);
        assert_eq!(s.q2c_p99_ms, 0.0);
    }

    #[test]
    fn per_io_dump_lists_every_request_with_state() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(1, Lba::new(0), SectorCount::new(8), true, SimTime::ZERO);
        t.dispatch(1, 0, SimTime::from_millis(1));
        t.complete(1, 0, SimTime::from_millis(2));
        t.queue_request(2, Lba::new(64), SectorCount::new(8), false, SimTime::ZERO);
        let r = analyze(t.events(), TIMEOUT, SimTime::from_secs(60));
        let dump = r.per_io_dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 requests
        assert!(lines[1].contains("complete"), "{dump}");
        assert!(lines[2].contains("timeout"), "{dump}");
        assert!(lines[1].contains(" W "), "{dump}");
        assert!(lines[2].contains(" R "), "{dump}");
    }

    #[test]
    fn by_type_splits_reads_and_writes() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(1, Lba::new(0), SectorCount::new(1), true, SimTime::ZERO);
        t.queue_request(2, Lba::new(8), SectorCount::new(1), false, SimTime::ZERO);
        t.queue_request(3, Lba::new(16), SectorCount::new(1), false, SimTime::ZERO);
        let r = analyze(t.events(), TIMEOUT, SimTime::from_secs(1));
        assert_eq!(r.by_type(), (2, 1));
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let r = analyze(&[], TIMEOUT, SimTime::ZERO);
        assert!(r.is_empty());
        assert_eq!(r.io(1), None);
    }
}
