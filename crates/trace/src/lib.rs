//! Block-layer IO tracing — the `blktrace`/`blkparse`/`btt` equivalent.
//!
//! The paper's failure detection rests on knowing, for every request, its
//! exact block-layer life cycle: when it was queued, whether it was
//! dispatched, and whether *all of its sub-requests* completed before the
//! power fault (§III-B). The authors modified `btt`'s `--per-io-dump` to
//! extract this; this crate implements the same pipeline natively:
//!
//! * [`event`] — the block-layer action stream (`Q`, `X`, `D`, `C`, error),
//!   with a `blkparse`-style text rendering;
//! * [`tracer`] — [`tracer::BlockTracer`], which records events and splits
//!   large requests into sub-requests exactly as the kernel block layer
//!   does (the paper's modification targets precisely these split
//!   requests);
//! * [`btt`] — the per-IO post-processor: reassembles sub-requests,
//!   computes per-request timing, applies the paper's 30-second timeout,
//!   and labels each request `completed` or not.
//!
//! # Example
//!
//! ```
//! use pfault_trace::tracer::BlockTracer;
//! use pfault_trace::btt;
//! use pfault_sim::{Lba, SectorCount, SimTime, SimDuration};
//!
//! let mut tracer = BlockTracer::new(SectorCount::new(128));
//! let subs = tracer.queue_request(1, Lba::new(0), SectorCount::new(256), true,
//!                                 SimTime::ZERO);
//! assert_eq!(subs.len(), 2); // split at 128 sectors
//! for s in &subs {
//!     tracer.dispatch(1, s.sub_id, SimTime::from_millis(1));
//!     tracer.complete(1, s.sub_id, SimTime::from_millis(2));
//! }
//! let report = btt::analyze(tracer.events(), SimDuration::from_secs(30),
//!                           SimTime::from_millis(10));
//! assert!(report.io(1).expect("request 1 traced").completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btt;
pub mod event;
pub mod jsonl;
pub mod parse;
pub mod tracer;

pub use btt::{analyze, BttReport, BttSummary, PerIo};
pub use event::{TraceAction, TraceEvent};
pub use jsonl::{
    parse_trace_jsonl_line, render_trace_event, render_trace_events, ParseTraceJsonError,
};
pub use parse::{parse_event_line, parse_trace_text, ParseEventError};
pub use tracer::{BlockTracer, SubRequest};
