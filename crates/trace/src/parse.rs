//! Parsing the `blkparse`-style text format back into events.
//!
//! [`crate::tracer::BlockTracer::to_text`] renders a trace as text; this
//! module parses that text back, so traces can be stored, diffed, and
//! re-analyzed offline — the workflow the paper runs with `blktrace`
//! output files.

use core::fmt;

use pfault_sim::{Lba, SectorCount, SimTime};

use crate::event::{TraceAction, TraceEvent};

/// Error parsing a trace text line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace text line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseEventError {}

fn parse_action(code: &str) -> Option<TraceAction> {
    match code {
        "Q" => Some(TraceAction::Queued),
        "X" => Some(TraceAction::Split),
        "D" => Some(TraceAction::Dispatched),
        "C" => Some(TraceAction::Completed),
        "E" => Some(TraceAction::Error),
        _ => None,
    }
}

/// Parses one rendered event line
/// (`"   1.500000 Q W 2048 + 8 (3.0)"`).
///
/// # Errors
///
/// Returns [`ParseEventError`] (with `line` set to 1) on malformed input.
pub fn parse_event_line(text: &str) -> Result<TraceEvent, ParseEventError> {
    parse_line_at(text, 1)
}

fn parse_line_at(text: &str, line: usize) -> Result<TraceEvent, ParseEventError> {
    let err = |reason: &str| ParseEventError {
        line,
        reason: reason.to_string(),
    };
    let fields: Vec<&str> = text.split_whitespace().collect();
    // time action rw sector + len (req.sub)
    if fields.len() != 7 || fields[4] != "+" {
        return Err(err("expected 'time action rw sector + len (req.sub)'"));
    }
    let seconds: f64 = fields[0].parse().map_err(|_| err("bad timestamp"))?;
    let action = parse_action(fields[1]).ok_or_else(|| err("unknown action code"))?;
    let is_write = match fields[2] {
        "W" => true,
        "R" => false,
        _ => return Err(err("rw flag must be R or W")),
    };
    let sector: u64 = fields[3].parse().map_err(|_| err("bad sector"))?;
    let len: u64 = fields[5].parse().map_err(|_| err("bad length"))?;
    if len == 0 {
        return Err(err("length must be positive"));
    }
    let ids = fields[6]
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err("bad (req.sub) field"))?;
    let (req, sub) = ids
        .split_once('.')
        .ok_or_else(|| err("bad (req.sub) field"))?;
    let request_id: u64 = req.parse().map_err(|_| err("bad request id"))?;
    let sub_id: u32 = sub.parse().map_err(|_| err("bad sub id"))?;
    Ok(TraceEvent {
        time: SimTime::from_micros((seconds * 1_000_000.0).round() as u64),
        action,
        request_id,
        sub_id,
        lba: Lba::new(sector),
        sectors: SectorCount::new(len),
        is_write,
    })
}

/// Parses a whole rendered trace (one event per line; blank lines are
/// skipped).
///
/// # Errors
///
/// Returns the first line's [`ParseEventError`].
pub fn parse_trace_text(text: &str) -> Result<Vec<TraceEvent>, ParseEventError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        events.push(parse_line_at(raw, idx + 1)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::BlockTracer;

    #[test]
    fn round_trips_a_rendered_trace() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(
            3,
            Lba::new(2048),
            SectorCount::new(200),
            true,
            SimTime::from_millis(1),
        );
        t.dispatch(3, 0, SimTime::from_millis(2));
        t.complete(3, 0, SimTime::from_millis(3));
        t.dispatch(3, 1, SimTime::from_millis(2));
        t.error(3, 1, SimTime::from_millis(4));
        let text = t.to_text();
        let parsed = parse_trace_text(&text).expect("rendered text parses");
        assert_eq!(parsed.len(), t.events().len());
        for (a, b) in parsed.iter().zip(t.events()) {
            assert_eq!(a, b, "round trip mismatch");
        }
    }

    #[test]
    fn parses_a_single_line() {
        let e = parse_event_line("    1.500000 Q W 2048 + 8 (3.0)").expect("valid line");
        assert_eq!(e.time, SimTime::from_millis(1500));
        assert_eq!(e.action, TraceAction::Queued);
        assert!(e.is_write);
        assert_eq!(e.lba, Lba::new(2048));
        assert_eq!(e.sectors, SectorCount::new(8));
        assert_eq!((e.request_id, e.sub_id), (3, 0));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, needle) in [
            ("1.0 Q W 10 + 8", "expected"),
            ("x Q W 10 + 8 (1.0)", "bad timestamp"),
            ("1.0 Z W 10 + 8 (1.0)", "unknown action"),
            ("1.0 Q T 10 + 8 (1.0)", "rw flag"),
            ("1.0 Q W 10 + 0 (1.0)", "length must be positive"),
            ("1.0 Q W 10 + 8 (10)", "bad (req.sub)"),
        ] {
            let err = parse_event_line(text).expect_err(text);
            assert!(err.reason.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn whole_trace_reports_offending_line() {
        let err = parse_trace_text("1.0 Q W 10 + 8 (1.0)\ngarbage\n").expect_err("line 2 bad");
        assert_eq!(err.line, 2);
    }
}
