//! Block-layer trace events.

use core::fmt;

use serde::{Deserialize, Serialize};

use pfault_sim::{Lba, SectorCount, SimTime};

/// Block-layer actions, named after the `blktrace` action characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceAction {
    /// `Q` — request queued by the upper layer.
    Queued,
    /// `X` — request split into sub-requests at the segment limit.
    Split,
    /// `D` — sub-request dispatched to the device.
    Dispatched,
    /// `C` — sub-request completed by the device.
    Completed,
    /// Device reported an error for the sub-request (e.g. it vanished
    /// during the discharge).
    Error,
}

impl TraceAction {
    /// The single-character `blkparse` code.
    pub fn code(self) -> char {
        match self {
            TraceAction::Queued => 'Q',
            TraceAction::Split => 'X',
            TraceAction::Dispatched => 'D',
            TraceAction::Completed => 'C',
            TraceAction::Error => 'E',
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event timestamp.
    pub time: SimTime,
    /// Action recorded.
    pub action: TraceAction,
    /// Request this event belongs to.
    pub request_id: u64,
    /// Sub-request index within the request.
    pub sub_id: u32,
    /// Starting sector of the sub-request.
    pub lba: Lba,
    /// Length of the sub-request.
    pub sectors: SectorCount,
    /// Whether this is a write (`W`) or read (`R`).
    pub is_write: bool,
}

impl fmt::Display for TraceEvent {
    /// Renders in a `blkparse`-like column format:
    /// `time action rwbs sector + len (req.sub)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.6} {} {} {} + {} ({}.{})",
            self.time.as_millis_f64() / 1000.0,
            self.action.code(),
            if self.is_write { 'W' } else { 'R' },
            self.lba.index(),
            self.sectors.get(),
            self.request_id,
            self.sub_id,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_codes_match_blktrace() {
        assert_eq!(TraceAction::Queued.code(), 'Q');
        assert_eq!(TraceAction::Split.code(), 'X');
        assert_eq!(TraceAction::Dispatched.code(), 'D');
        assert_eq!(TraceAction::Completed.code(), 'C');
        assert_eq!(TraceAction::Error.code(), 'E');
    }

    #[test]
    fn display_is_blkparse_like() {
        let e = TraceEvent {
            time: SimTime::from_millis(1500),
            action: TraceAction::Queued,
            request_id: 3,
            sub_id: 0,
            lba: Lba::new(2048),
            sectors: SectorCount::new(8),
            is_write: true,
        };
        let s = e.to_string();
        assert!(s.contains("Q W 2048 + 8 (3.0)"), "got: {s}");
        assert!(s.contains("1.500000"));
    }
}
