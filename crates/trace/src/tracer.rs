//! The tracer: records block-layer events and splits large requests.
//!
//! The kernel block layer splits requests larger than the device's segment
//! limit into sub-requests; the paper modified `btt` specifically to trace
//! those ("the large size requests which are divided to more than one
//! request"). [`BlockTracer`] performs the same split at queue time and
//! records one event stream for the post-processor.

use pfault_sim::{Lba, SectorCount, SimTime};

use crate::event::{TraceAction, TraceEvent};

/// One sub-request produced by splitting at the segment limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubRequest {
    /// Parent request identifier.
    pub request_id: u64,
    /// Index of this fragment within the parent.
    pub sub_id: u32,
    /// Starting sector.
    pub lba: Lba,
    /// Fragment length.
    pub sectors: SectorCount,
    /// Write or read.
    pub is_write: bool,
}

/// Records block-layer events for later `btt`-style analysis.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct BlockTracer {
    max_segment: SectorCount,
    events: Vec<TraceEvent>,
}

impl BlockTracer {
    /// Creates a tracer with the device's segment limit (sub-request split
    /// size).
    ///
    /// # Panics
    ///
    /// Panics if `max_segment` is zero sectors.
    pub fn new(max_segment: SectorCount) -> Self {
        assert!(max_segment.get() > 0, "segment limit must be positive");
        BlockTracer {
            max_segment,
            events: Vec::new(),
        }
    }

    /// The configured segment limit.
    pub fn max_segment(&self) -> SectorCount {
        self.max_segment
    }

    /// Queues a request: records `Q`, performs the split, records `X` per
    /// extra fragment, and returns the sub-requests the device will see.
    pub fn queue_request(
        &mut self,
        request_id: u64,
        lba: Lba,
        sectors: SectorCount,
        is_write: bool,
        now: SimTime,
    ) -> Vec<SubRequest> {
        self.events.push(TraceEvent {
            time: now,
            action: TraceAction::Queued,
            request_id,
            sub_id: 0,
            lba,
            sectors,
            is_write,
        });
        let mut subs = Vec::new();
        let mut remaining = sectors.get();
        let mut cursor = lba;
        let mut sub_id = 0u32;
        while remaining > 0 {
            let take = remaining.min(self.max_segment.get());
            let sub = SubRequest {
                request_id,
                sub_id,
                lba: cursor,
                sectors: SectorCount::new(take),
                is_write,
            };
            if sub_id > 0 {
                self.events.push(TraceEvent {
                    time: now,
                    action: TraceAction::Split,
                    request_id,
                    sub_id,
                    lba: cursor,
                    sectors: SectorCount::new(take),
                    is_write,
                });
            }
            subs.push(sub);
            cursor += SectorCount::new(take);
            remaining -= take;
            sub_id += 1;
        }
        subs
    }

    fn find_sub(&self, request_id: u64, sub_id: u32) -> Option<TraceEvent> {
        // The queue event carries the request geometry; splits carry the
        // fragment geometry.
        self.events
            .iter()
            .rev()
            .find(|e| {
                e.request_id == request_id
                    && e.sub_id == sub_id
                    && matches!(e.action, TraceAction::Queued | TraceAction::Split)
            })
            .copied()
    }

    /// Records a dispatch (`D`) of one sub-request.
    ///
    /// # Panics
    ///
    /// Panics if the sub-request was never queued.
    pub fn dispatch(&mut self, request_id: u64, sub_id: u32, now: SimTime) {
        let origin = self
            .find_sub(request_id, sub_id)
            .expect("dispatch of unqueued sub-request");
        self.events.push(TraceEvent {
            time: now,
            action: TraceAction::Dispatched,
            ..origin
        });
    }

    /// Records a completion (`C`) of one sub-request.
    ///
    /// # Panics
    ///
    /// Panics if the sub-request was never queued.
    pub fn complete(&mut self, request_id: u64, sub_id: u32, now: SimTime) {
        let origin = self
            .find_sub(request_id, sub_id)
            .expect("completion of unqueued sub-request");
        self.events.push(TraceEvent {
            time: now,
            action: TraceAction::Completed,
            ..origin
        });
    }

    /// Records a device error for one sub-request (e.g. the device
    /// disappeared mid-discharge).
    ///
    /// # Panics
    ///
    /// Panics if the sub-request was never queued.
    pub fn error(&mut self, request_id: u64, sub_id: u32, now: SimTime) {
        let origin = self
            .find_sub(request_id, sub_id)
            .expect("error on unqueued sub-request");
        self.events.push(TraceEvent {
            time: now,
            action: TraceAction::Error,
            ..origin
        });
    }

    /// The recorded event stream, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders the whole trace in `blkparse`-like text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Drops all recorded events (new campaign trial).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfault_sim::SimDuration;

    #[test]
    fn small_request_is_single_sub() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        let subs = t.queue_request(1, Lba::new(10), SectorCount::new(8), true, SimTime::ZERO);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].lba, Lba::new(10));
        assert_eq!(subs[0].sectors, SectorCount::new(8));
        assert_eq!(t.events().len(), 1); // only Q
    }

    #[test]
    fn large_request_splits_at_segment_limit() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        // 1 MiB = 256 sectors → two fragments of 128.
        let subs = t.queue_request(2, Lba::new(0), SectorCount::new(256), true, SimTime::ZERO);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].lba, Lba::new(0));
        assert_eq!(subs[1].lba, Lba::new(128));
        assert_eq!(subs[1].sub_id, 1);
        // Q + one X event.
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn uneven_split_has_short_tail() {
        let mut t = BlockTracer::new(SectorCount::new(100));
        let subs = t.queue_request(3, Lba::new(0), SectorCount::new(250), false, SimTime::ZERO);
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[2].sectors, SectorCount::new(50));
        assert!(!subs[2].is_write);
    }

    #[test]
    fn lifecycle_events_recorded_in_order() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(1, Lba::new(0), SectorCount::new(4), true, SimTime::ZERO);
        t.dispatch(1, 0, SimTime::from_millis(1));
        t.complete(1, 0, SimTime::from_millis(2));
        let actions: Vec<TraceAction> = t.events().iter().map(|e| e.action).collect();
        assert_eq!(
            actions,
            vec![
                TraceAction::Queued,
                TraceAction::Dispatched,
                TraceAction::Completed
            ]
        );
    }

    #[test]
    #[should_panic(expected = "dispatch of unqueued sub-request")]
    fn dispatch_requires_queue() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.dispatch(9, 0, SimTime::ZERO);
    }

    #[test]
    fn error_events_supported() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(1, Lba::new(0), SectorCount::new(4), true, SimTime::ZERO);
        t.dispatch(1, 0, SimTime::from_millis(1));
        t.error(1, 0, SimTime::from_millis(2));
        assert_eq!(t.events().last().unwrap().action, TraceAction::Error);
    }

    #[test]
    fn text_render_and_clear() {
        let mut t = BlockTracer::new(SectorCount::new(128));
        t.queue_request(
            1,
            Lba::new(0),
            SectorCount::new(4),
            true,
            SimTime::ZERO + SimDuration::from_millis(1),
        );
        let text = t.to_text();
        assert!(text.contains("Q W 0 + 4"));
        t.clear();
        assert!(t.events().is_empty());
    }
}
